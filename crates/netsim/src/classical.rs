//! Classical control-message channels.
//!
//! The paper (§4.1 "Classical communication and link reliability")
//! requires that "all control messages are transmitted reliably and in
//! order", provided in practice by per-hop TCP/QUIC connections. This
//! module models that contract:
//!
//! * per-hop delay = fibre propagation + processing (+ the injectable
//!   extra delay of Fig 10c, + optional jitter);
//! * **in-order delivery per direction of each hop** even when jitter
//!   would reorder packets — exactly what a reliable byte stream gives:
//!   a delayed early message holds back later ones.

use qn_sim::{NodeId, SimDuration, SimRng, SimTime};
use std::collections::HashMap;

/// Delay model of one hop.
#[derive(Clone, Copy, Debug)]
pub struct ChannelModel {
    /// Fibre propagation delay.
    pub propagation: SimDuration,
    /// Fixed processing delay at the receiver.
    pub processing: SimDuration,
    /// Injected extra delay (the Fig 10c sweep knob).
    pub extra: SimDuration,
    /// Uniform jitter bound: each message gains `U[0, jitter)` of extra
    /// latency (the reliable stream still delivers in order).
    pub jitter: SimDuration,
}

impl ChannelModel {
    /// Sample the raw latency of one message.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        let base = self.propagation + self.processing + self.extra;
        if self.jitter == SimDuration::ZERO {
            base
        } else {
            base + SimDuration::from_ps(rng.below(self.jitter.as_ps().max(1)))
        }
    }
}

/// Enforces the reliable in-order contract across all directed node
/// pairs: delivery times per `(from, to)` are monotonically
/// non-decreasing, whatever the sampled latencies.
#[derive(Default)]
pub struct ReliableDelivery {
    last_delivery: HashMap<(NodeId, NodeId), SimTime>,
}

impl ReliableDelivery {
    /// New tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the delivery time of a message sent `from → to` at `now`
    /// with the given sampled latency, clamped so it never undercuts a
    /// previously scheduled delivery on the same directed hop (a reliable
    /// stream cannot reorder).
    pub fn schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        latency: SimDuration,
    ) -> SimTime {
        let natural = now + latency;
        let entry = self
            .last_delivery
            .entry((from, to))
            .or_insert(SimTime::ZERO);
        let at = natural.max(*entry);
        *entry = at;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(jitter_us: u64) -> ChannelModel {
        ChannelModel {
            propagation: SimDuration::from_nanos(10),
            processing: SimDuration::from_micros(5),
            extra: SimDuration::ZERO,
            jitter: SimDuration::from_micros(jitter_us),
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = model(0);
        let mut rng = SimRng::from_seed(1);
        let a = m.sample_latency(&mut rng);
        let b = m.sample_latency(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a, SimDuration::from_nanos(10) + SimDuration::from_micros(5));
    }

    #[test]
    fn jitter_varies_but_is_bounded() {
        let m = model(50);
        let mut rng = SimRng::from_seed(2);
        let base = SimDuration::from_nanos(10) + SimDuration::from_micros(5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let l = m.sample_latency(&mut rng);
            assert!(l >= base);
            assert!(l < base + SimDuration::from_micros(50));
            distinct.insert(l.as_ps());
        }
        assert!(distinct.len() > 10, "jitter should vary");
    }

    #[test]
    fn in_order_delivery_under_reordering_latencies() {
        let mut r = ReliableDelivery::new();
        let (a, b) = (NodeId(0), NodeId(1));
        // First message is slow; the second would naturally overtake it.
        let t1 = r.schedule(a, b, SimTime::from_ps(0), SimDuration::from_micros(100));
        let t2 = r.schedule(a, b, SimTime::from_ps(1), SimDuration::from_micros(1));
        assert!(t2 >= t1, "reliable stream must not reorder: {t2} < {t1}");
    }

    #[test]
    fn directions_and_hops_are_independent() {
        let mut r = ReliableDelivery::new();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let slow = r.schedule(a, b, SimTime::ZERO, SimDuration::from_millis(10));
        // Reverse direction is not held back.
        let rev = r.schedule(b, a, SimTime::ZERO, SimDuration::from_micros(1));
        assert!(rev < slow);
        // A different hop is not held back.
        let other = r.schedule(b, c, SimTime::ZERO, SimDuration::from_micros(1));
        assert!(other < slow);
    }

    #[test]
    fn monotone_across_many_messages() {
        let mut r = ReliableDelivery::new();
        let mut rng = SimRng::from_seed(3);
        let m = model(200);
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            now += SimDuration::from_micros(i % 7);
            let at = r.schedule(NodeId(0), NodeId(1), now, m.sample_latency(&mut rng));
            assert!(at >= last);
            last = at;
        }
    }
}
