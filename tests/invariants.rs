//! Randomized full-stack invariant checks: many seeds, mixed workloads,
//! and the properties that must hold in every run regardless of the
//! sampled noise.

use qnp::prelude::*;

fn request(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// Run a mixed two-circuit workload at a given seed and check every
/// universal invariant.
fn check_seed(seed: u64) {
    let (topology, d) = qnp::routing::dumbbell(
        HardwareParams::simulation().with_electron_t2(2.0),
        FibreParams::lab_2m(),
    );
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::long())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a1, d.b1, 0.8, CutoffPolicy::long())
        .unwrap();
    sim.submit_at(SimTime::ZERO, v1, request(1, d.a0, d.b0, 0.85, 6));
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_millis(50),
        v2,
        request(1, d.a1, d.b1, 0.8, 6),
    );
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_millis(200),
        v1,
        UserRequest {
            request_type: RequestType::Measure(Pauli::Z),
            ..request(2, d.a0, d.b0, 0.85, 4)
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(120));
    let app = sim.app();

    // 1. All requests complete.
    for (vc, id) in [(v1, 1u64), (v2, 1), (v1, 2)] {
        assert!(
            app.completed.contains_key(&(vc, RequestId(id))),
            "seed {seed}: {vc} request {id} incomplete"
        );
    }

    // 2. Deliveries at the two ends of each circuit are symmetric: every
    //    confirmed chain appears exactly once per end.
    for (vc, head, tail) in [(v1, d.a0, d.b0), (v2, d.a1, d.b1)] {
        let head_chains: Vec<_> = app
            .deliveries
            .iter()
            .filter(|r| r.circuit == vc && r.node == head)
            .filter_map(|r| r.chain)
            .collect();
        let tail_chains: Vec<_> = app
            .deliveries
            .iter()
            .filter(|r| r.circuit == vc && r.node == tail)
            .filter_map(|r| r.chain)
            .collect();
        for c in &head_chains {
            assert_eq!(
                head_chains.iter().filter(|x| *x == c).count(),
                1,
                "seed {seed}: duplicate chain at head"
            );
            assert!(
                tail_chains.contains(c),
                "seed {seed}: half-delivered chain {c:?}"
            );
        }
    }

    // 3. No quantum memory leaks once the network drains.
    sim.run_until(sim.now() + SimDuration::from_secs(10));
    assert_eq!(sim.live_pairs(), 0, "seed {seed}: leaked pairs");

    // 4. Bell-state bookkeeping is almost always consistent with the
    //    omniscient tracker (readout errors allow rare mismatches).
    if let Some(consistency) = sim.app().state_consistency() {
        assert!(
            consistency > 0.85,
            "seed {seed}: tracking consistency {consistency}"
        );
    }

    // 5. Fidelity annotations are physical.
    for rec in &sim.app().deliveries {
        if let Some(f) = rec.oracle_fidelity {
            assert!((0.0..=1.0).contains(&f), "seed {seed}: fidelity {f}");
        }
    }
}

#[test]
fn invariants_hold_across_seeds() {
    for seed in 100..110 {
        check_seed(seed);
    }
}

/// The deterministic-replay contract at full-stack scope.
#[test]
fn full_stack_determinism() {
    let fingerprint = |seed: u64| -> (u64, Vec<u64>) {
        let (topology, d) =
            qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut sim = NetworkBuilder::new(topology).seed(seed).build();
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, request(1, d.a0, d.b0, 0.85, 5));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        (
            sim.events_processed(),
            sim.app()
                .deliveries
                .iter()
                .map(|r| r.time.as_ps())
                .collect(),
        )
    };
    assert_eq!(fingerprint(555), fingerprint(555));
}
