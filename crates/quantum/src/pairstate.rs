//! Bell-diagonal fast-path pair states.
//!
//! Every pair the simulator touches — heralded link pairs, decaying
//! memory pairs, swap inputs and outputs, distillation inputs — is an
//! **X-state**: a two-qubit density matrix whose only non-zero entries
//! are the four computational populations and the two "anti-diagonal"
//! coherences,
//!
//! ```text
//!     ⎡ p00  ·   ·   u  ⎤
//!     ⎢  ·  p01  v   ·  ⎥        u, v real
//!     ⎢  ·   v  p10  ·  ⎥
//!     ⎣  u   ·   ·  p11 ⎦
//! ```
//!
//! In the Bell basis this is a Bell-diagonal state — coefficients
//! `Φ± = (p00+p11)/2 ± u`, `Ψ± = (p01+p10)/2 ± v` — plus two population
//! *asymmetries* `(p00−p11)/2` and `(p01−p10)/2` that textbook
//! Bell-diagonal states set to zero. [`BellDiagonal`] carries the
//! asymmetries so that **amplitude damping (T1) is exact**, not merely
//! twirled: damping pumps population towards `|00⟩` and a strict
//! four-coefficient representation would silently drop that, breaking
//! the representation-agreement guarantee this module is built around.
//!
//! Every update here is an exact closed form of the corresponding
//! dense-matrix operation (same channel, same parameters), so a
//! simulation run under `QNP_QSTATE=bell` follows the *same trajectory*
//! as `QNP_QSTATE=dm` — identical RNG draw order, identical outcomes —
//! with per-operation floating-point deviations at the 1e-15 level.
//! The property suites in `tests/prop_pairstate.rs` and
//! `qn_hardware/tests/prop_threeway.rs` pin the agreement at 1e-12
//! across random channel/swap/distill/measure sequences.
//!
//! Operations that leave the X-form (Hadamard before an X/Y-basis
//! readout, arbitrary caller-supplied mutations) demote a
//! [`PairState`] to the dense [`DensityMatrix`] representation, which
//! remains the general fallback.
//!
//! ## Swap and distillation: conditional-map tables
//!
//! The noisy entanglement-swap and BBPSSW circuits are *linear* in the
//! input product state, so their action on X-state inputs is captured
//! exactly by a finite table: feed each of the 6×6 X-basis products
//! through the dense circuit once, record the conditional (unnormalised)
//! reduced output and its weight for each pair of measurement outcomes,
//! and every future swap/distill becomes a 36-term contraction — no
//! 16×16 algebra on the hot path. [`CondTable::swap`] and
//! [`CondTable::distill`] build these tables (a few dense circuit
//! evaluations, cached by the pair store per noise parameter set) and
//! verify X-closure of the outputs at build time, falling back to the
//! dense path if the check ever fails.

use crate::bell::BellState;
use crate::channels;
use crate::complex::C64;
use crate::gates::{self, Pauli};
use crate::matrix::{embed_op, CMatrix};
use crate::measure;
use crate::state::DensityMatrix;

/// Off-X-form tolerance when converting a dense matrix to
/// [`BellDiagonal`] or checking table closure. States built by this
/// stack are X-form *exactly*; the tolerance only absorbs float dust.
const X_EPS: f64 = 1e-12;

// ---------------------------------------------------------------------
// Representation knob
// ---------------------------------------------------------------------

/// Which pair-state representation the simulation runs on
/// (`QNP_QSTATE` knob).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateRep {
    /// Bell-diagonal (X-state) closed forms, dense fallback on demand.
    /// The default: ~an order of magnitude less arithmetic per pair
    /// event.
    Bell,
    /// Dense density matrices everywhere (the seed behaviour;
    /// bit-identical to the committed baselines).
    Dm,
}

impl StateRep {
    /// Read the `QNP_QSTATE` environment knob: `bell` (default) or
    /// `dm`.
    ///
    /// # Panics
    /// On an unrecognised value — a mistyped knob should fail loudly,
    /// not silently simulate with the wrong engine.
    pub fn from_env() -> StateRep {
        match std::env::var("QNP_QSTATE") {
            Ok(v) => match v.as_str() {
                "bell" => StateRep::Bell,
                "dm" => StateRep::Dm,
                other => panic!("QNP_QSTATE must be \"bell\" or \"dm\", got {other:?}"),
            },
            Err(_) => StateRep::Bell,
        }
    }

    /// Knob value naming this representation.
    pub fn as_str(self) -> &'static str {
        match self {
            StateRep::Bell => "bell",
            StateRep::Dm => "dm",
        }
    }
}

// ---------------------------------------------------------------------
// BellDiagonal
// ---------------------------------------------------------------------

/// A two-qubit X-state: four computational populations plus the two
/// real anti-diagonal coherences (see the module docs). Eight-times
///-less state than a dense 4×4 complex matrix, and every simulator
/// operation on it is a handful of multiplies.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BellDiagonal {
    /// Populations `[p00, p01, p10, p11]` (qubit 0 is the MSB).
    pop: [f64; 4],
    /// Real coherence between `|00⟩` and `|11⟩` (splits `Φ⁺`/`Φ⁻`).
    u: f64,
    /// Real coherence between `|01⟩` and `|10⟩` (splits `Ψ⁺`/`Ψ⁻`).
    v: f64,
}

impl BellDiagonal {
    /// Construct from raw populations and coherences.
    pub fn from_parts(pop: [f64; 4], u: f64, v: f64) -> Self {
        BellDiagonal { pop, u, v }
    }

    /// The pure Bell state `b`.
    pub fn from_bell_state(b: BellState) -> Self {
        let s = if b.z { -0.5 } else { 0.5 };
        if b.x {
            BellDiagonal {
                pop: [0.0, 0.5, 0.5, 0.0],
                u: 0.0,
                v: s,
            }
        } else {
            BellDiagonal {
                pop: [0.5, 0.0, 0.0, 0.5],
                u: s,
                v: 0.0,
            }
        }
    }

    /// A textbook Bell-diagonal state from its four coefficients,
    /// indexed by [`BellState::index`] (asymmetries zero).
    pub fn from_bell_coeffs(c: [f64; 4]) -> Self {
        let phi = c[BellState::PHI_PLUS.index()] + c[BellState::PHI_MINUS.index()];
        let psi = c[BellState::PSI_PLUS.index()] + c[BellState::PSI_MINUS.index()];
        BellDiagonal {
            pop: [phi / 2.0, psi / 2.0, psi / 2.0, phi / 2.0],
            u: (c[BellState::PHI_PLUS.index()] - c[BellState::PHI_MINUS.index()]) / 2.0,
            v: (c[BellState::PSI_PLUS.index()] - c[BellState::PSI_MINUS.index()]) / 2.0,
        }
    }

    /// Extract from a dense matrix, or `None` when the state is not
    /// X-form (within [`X_EPS`]).
    pub fn from_density(rho: &DensityMatrix) -> Option<Self> {
        if rho.num_qubits() != 2 {
            return None;
        }
        x_decompose(rho.matrix()).map(BellDiagonal::from_coeffs)
    }

    /// The dense 4×4 density matrix of this state.
    pub fn to_density(&self) -> DensityMatrix {
        let mut m = CMatrix::zeros(4, 4);
        for (i, p) in self.pop.iter().enumerate() {
            m[(i, i)] = C64::real(*p);
        }
        m[(0, 3)] = C64::real(self.u);
        m[(3, 0)] = C64::real(self.u);
        m[(1, 2)] = C64::real(self.v);
        m[(2, 1)] = C64::real(self.v);
        DensityMatrix::from_matrix_unchecked(m)
    }

    /// Trace (≈1 for a valid state).
    pub fn trace(&self) -> f64 {
        self.pop.iter().sum()
    }

    /// Purity `Tr ρ²`.
    pub fn purity(&self) -> f64 {
        self.pop.iter().map(|p| p * p).sum::<f64>() + 2.0 * self.u * self.u + 2.0 * self.v * self.v
    }

    /// The Bell-diagonal coefficient `⟨b|ρ|b⟩` — the pair's fidelity to
    /// Bell state `b`.
    pub fn bell_coeff(&self, b: BellState) -> f64 {
        let val = if b.x {
            (self.pop[1] + self.pop[2]) / 2.0 + if b.z { -self.v } else { self.v }
        } else {
            (self.pop[0] + self.pop[3]) / 2.0 + if b.z { -self.u } else { self.u }
        };
        val.clamp(0.0, 1.0)
    }

    /// Probability that a Z-measurement of `end` (0 or 1) yields 1.
    pub fn prob_one(&self, end: usize) -> f64 {
        let p = match end {
            0 => self.pop[2] + self.pop[3],
            1 => self.pop[1] + self.pop[3],
            _ => panic!("pair has ends 0 and 1"),
        };
        p.clamp(0.0, 1.0)
    }

    /// Apply a (perfect) Pauli to one end: a permutation/sign-flip of
    /// the six parameters.
    pub fn apply_pauli(&mut self, end: usize, pauli: Pauli) {
        assert!(end < 2, "pair has ends 0 and 1");
        match pauli {
            Pauli::I => {}
            Pauli::Z => {
                self.u = -self.u;
                self.v = -self.v;
            }
            Pauli::X | Pauli::Y => {
                if end == 0 {
                    self.pop.swap(0, 2);
                    self.pop.swap(1, 3);
                } else {
                    self.pop.swap(0, 1);
                    self.pop.swap(2, 3);
                }
                let (u, v) = (self.u, self.v);
                if pauli == Pauli::X {
                    self.u = v;
                    self.v = u;
                } else {
                    self.u = -v;
                    self.v = -u;
                }
            }
        }
    }

    /// Dephasing (phase flip with probability `p`, clamped to
    /// `[0, 1/2]` like [`channels::dephasing`]) on either end: the
    /// coherences shrink by `1−2p`, the populations are untouched.
    pub fn dephase(&mut self, p: f64) {
        let f = 1.0 - 2.0 * p.clamp(0.0, 0.5);
        self.u *= f;
        self.v *= f;
    }

    /// Bit flip (X with probability `p`) on `end`.
    pub fn bit_flip(&mut self, end: usize, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let mut flipped = *self;
        flipped.apply_pauli(end, Pauli::X);
        self.mix_from(&flipped, p);
    }

    /// Single-qubit depolarizing channel on `end`: the affected qubit's
    /// marginal moves towards `I/2`, both coherences shrink by `1−p`.
    pub fn depolarize(&mut self, end: usize, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let s = 1.0 - p;
        let [p00, p01, p10, p11] = self.pop;
        self.pop = if end == 0 {
            [
                s * p00 + p * (p00 + p10) / 2.0,
                s * p01 + p * (p01 + p11) / 2.0,
                s * p10 + p * (p00 + p10) / 2.0,
                s * p11 + p * (p01 + p11) / 2.0,
            ]
        } else {
            [
                s * p00 + p * (p00 + p01) / 2.0,
                s * p01 + p * (p00 + p01) / 2.0,
                s * p10 + p * (p10 + p11) / 2.0,
                s * p11 + p * (p10 + p11) / 2.0,
            ]
        };
        self.u *= s;
        self.v *= s;
    }

    /// Two-qubit depolarizing channel: `(1−p)ρ + p·(I/4)·Tr ρ`.
    pub fn depolarize_2q(&mut self, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let s = 1.0 - p;
        let fill = 0.25 * p * self.trace();
        for q in &mut self.pop {
            *q = s * *q + fill;
        }
        self.u *= s;
        self.v *= s;
    }

    /// Amplitude damping (relaxation towards `|0⟩` with probability
    /// `gamma`) on `end` — **exact**, thanks to the tracked population
    /// asymmetries: `|x1⟩` population flows to `|x0⟩` and the
    /// coherences shrink by `√(1−γ)`.
    pub fn amplitude_damp(&mut self, end: usize, gamma: f64) {
        let g = gamma.clamp(0.0, 1.0);
        let keep = 1.0 - g;
        if end == 0 {
            self.pop[0] += g * self.pop[2];
            self.pop[1] += g * self.pop[3];
            self.pop[2] *= keep;
            self.pop[3] *= keep;
        } else {
            self.pop[0] += g * self.pop[1];
            self.pop[2] += g * self.pop[3];
            self.pop[1] *= keep;
            self.pop[3] *= keep;
        }
        let s = keep.sqrt();
        self.u *= s;
        self.v *= s;
    }

    /// Project `end` onto the Z eigenstate `outcome` and renormalise.
    /// Both coherences connect states that differ on *both* qubits, so
    /// they vanish under any single-qubit Z projection.
    pub fn project_z(&mut self, end: usize, outcome: bool) {
        let keep_one = usize::from(outcome);
        for (i, p) in self.pop.iter_mut().enumerate() {
            let bit = if end == 0 { i >> 1 } else { i } & 1;
            if bit != keep_one {
                *p = 0.0;
            }
        }
        self.u = 0.0;
        self.v = 0.0;
        let t: f64 = self.pop.iter().sum();
        debug_assert!(t > 1e-12, "projecting onto zero-probability outcome");
        let inv = 1.0 / t.max(1e-300);
        for p in &mut self.pop {
            *p *= inv;
        }
    }

    /// Measure `end` in the Z basis using uniform sample `u ∈ [0,1)`.
    pub fn measure_z(&mut self, end: usize, u: f64) -> bool {
        let p1 = self.prob_one(end);
        let outcome = u < p1;
        self.project_z(end, outcome);
        outcome
    }

    /// `self ← (1−p)·self + p·other`.
    fn mix_from(&mut self, other: &BellDiagonal, p: f64) {
        let s = 1.0 - p;
        for (a, b) in self.pop.iter_mut().zip(other.pop) {
            *a = s * *a + p * b;
        }
        self.u = s * self.u + p * other.u;
        self.v = s * self.v + p * other.v;
    }

    /// X-basis coefficient vector `[p00, p01, p10, p11, u, v]` (the
    /// contraction input for [`CondTable`]).
    fn coeffs(&self) -> [f64; 6] {
        [
            self.pop[0],
            self.pop[1],
            self.pop[2],
            self.pop[3],
            self.u,
            self.v,
        ]
    }

    fn from_coeffs(c: [f64; 6]) -> Self {
        BellDiagonal {
            pop: [c[0], c[1], c[2], c[3]],
            u: c[4],
            v: c[5],
        }
    }
}

// ---------------------------------------------------------------------
// PairState
// ---------------------------------------------------------------------

/// The dual-representation state of one entangled pair: the
/// Bell-diagonal fast path while the state is X-form, the dense
/// density matrix as the general fallback. Operations demote
/// automatically when they would leave the X family.
#[derive(Clone, Debug)]
pub enum PairState {
    /// Closed-form X-state representation.
    Bell(BellDiagonal),
    /// Dense 4×4 density matrix.
    Dm(DensityMatrix),
}

impl PairState {
    /// Wrap a dense state, using the fast representation when `rep`
    /// asks for it and the state is X-form.
    pub fn from_density(rho: DensityMatrix, rep: StateRep) -> Self {
        match rep {
            StateRep::Bell => match BellDiagonal::from_density(&rho) {
                Some(b) => PairState::Bell(b),
                None => PairState::Dm(rho),
            },
            StateRep::Dm => PairState::Dm(rho),
        }
    }

    /// Whether the fast representation is active.
    pub fn is_bell(&self) -> bool {
        matches!(self, PairState::Bell(_))
    }

    /// The fast representation, if active.
    pub fn as_bell(&self) -> Option<&BellDiagonal> {
        match self {
            PairState::Bell(b) => Some(b),
            PairState::Dm(_) => None,
        }
    }

    /// A dense copy of the state (cheap conversion for oracles/tests).
    pub fn to_density(&self) -> DensityMatrix {
        match self {
            PairState::Bell(b) => b.to_density(),
            PairState::Dm(d) => d.clone(),
        }
    }

    /// Demote to the dense representation in place and return it.
    pub fn dm_mut(&mut self) -> &mut DensityMatrix {
        if let PairState::Bell(b) = self {
            *self = PairState::Dm(b.to_density());
        }
        match self {
            PairState::Dm(d) => d,
            PairState::Bell(_) => unreachable!(),
        }
    }

    /// Trace (≈1 for a valid state).
    pub fn trace(&self) -> f64 {
        match self {
            PairState::Bell(b) => b.trace(),
            PairState::Dm(d) => d.trace(),
        }
    }

    /// Purity `Tr ρ²`.
    pub fn purity(&self) -> f64 {
        match self {
            PairState::Bell(b) => b.purity(),
            PairState::Dm(d) => d.purity(),
        }
    }

    /// Fidelity to the Bell state `b`.
    pub fn fidelity_bell(&self, b: BellState) -> f64 {
        match self {
            PairState::Bell(s) => s.bell_coeff(b),
            PairState::Dm(d) => d.fidelity_pure(&b.amplitudes()),
        }
    }

    /// Probability that a Z-measurement of `end` yields 1.
    pub fn prob_one(&self, end: usize) -> f64 {
        match self {
            PairState::Bell(b) => b.prob_one(end),
            PairState::Dm(d) => d.prob_one(end),
        }
    }

    /// Apply a perfect Pauli to one end.
    pub fn apply_pauli(&mut self, end: usize, pauli: Pauli) {
        match self {
            PairState::Bell(b) => b.apply_pauli(end, pauli),
            PairState::Dm(d) => d.apply_unitary(&pauli.matrix(), &[end]),
        }
    }

    /// Dephasing with phase-flip probability `p` on `end`.
    pub fn dephase(&mut self, end: usize, p: f64) {
        match self {
            PairState::Bell(b) => b.dephase(p),
            PairState::Dm(d) => d.apply_kraus(&channels::dephasing(p), &[end]),
        }
    }

    /// Single-qubit depolarizing with probability `p` on `end`.
    pub fn depolarize(&mut self, end: usize, p: f64) {
        match self {
            PairState::Bell(b) => b.depolarize(end, p),
            PairState::Dm(d) => d.apply_kraus(&channels::depolarizing(p), &[end]),
        }
    }

    /// Amplitude damping with decay probability `gamma` on `end`.
    pub fn amplitude_damp(&mut self, end: usize, gamma: f64) {
        match self {
            PairState::Bell(b) => b.amplitude_damp(end, gamma),
            PairState::Dm(d) => d.apply_kraus(&channels::amplitude_damping(gamma), &[end]),
        }
    }

    /// Two-qubit depolarizing with probability `p` on both ends.
    pub fn depolarize_2q(&mut self, p: f64) {
        match self {
            PairState::Bell(b) => b.depolarize_2q(p),
            PairState::Dm(d) => d.apply_kraus(&channels::depolarizing_2q(p), &[0, 1]),
        }
    }

    /// Measure `end` in a Pauli basis with uniform sample `u`. Z stays
    /// in the fast representation; X/Y demote first (the basis-change
    /// rotation leaves the X family).
    pub fn measure_pauli(&mut self, end: usize, basis: Pauli, u: f64) -> bool {
        match self {
            PairState::Bell(b) if basis == Pauli::Z => b.measure_z(end, u),
            PairState::Bell(_) => measure::measure_pauli(self.dm_mut(), end, basis, u),
            PairState::Dm(d) => measure::measure_pauli(d, end, basis, u),
        }
    }
}

// ---------------------------------------------------------------------
// Conditional-map tables for swap / distillation circuits
// ---------------------------------------------------------------------

/// One gate-or-channel step of a measured two-pair circuit.
enum CircuitOp {
    Unitary(CMatrix, Vec<usize>),
    Kraus(Vec<CMatrix>, Vec<usize>),
}

/// The exact conditional action of a measured two-pair circuit on
/// X-state inputs: for each pair of Z outcomes `(m1, m2)` on the two
/// measured qubits, the weight (probability contribution) and the
/// unnormalised reduced output state of each of the 36 X-basis input
/// products. See the module docs.
pub struct CondTable {
    /// `w[m1][m2][a][b]` — outcome weight of basis product `(a, b)`.
    w: [[[[f64; 6]; 6]; 2]; 2],
    /// `out[m1][m2][a][b]` — X-coefficients of the unnormalised
    /// conditional reduced state.
    out: [[[[[f64; 6]; 6]; 6]; 2]; 2],
}

/// The 6 X-basis elements as dense 4×4 matrices.
fn x_basis() -> [CMatrix; 6] {
    let mut basis: [CMatrix; 6] = std::array::from_fn(|_| CMatrix::zeros(4, 4));
    for (i, b) in basis.iter_mut().enumerate().take(4) {
        b[(i, i)] = C64::ONE;
    }
    basis[4][(0, 3)] = C64::ONE;
    basis[4][(3, 0)] = C64::ONE;
    basis[5][(1, 2)] = C64::ONE;
    basis[5][(2, 1)] = C64::ONE;
    basis
}

/// Partial trace of an `n`-qubit matrix keeping the listed qubits (the
/// same index math as `DensityMatrix::partial_trace_keep`, usable on
/// unnormalised matrices).
fn partial_trace_raw(m: &CMatrix, n: usize, keep: &[usize]) -> CMatrix {
    let k = keep.len();
    let rest: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
    let kdim = 1usize << k;
    let rdim = 1usize << rest.len();
    let mut out = CMatrix::zeros(kdim, kdim);
    let compose = |a: usize, r: usize| -> usize {
        let mut idx = 0usize;
        for (pos, q) in keep.iter().enumerate() {
            let bit = (a >> (k - 1 - pos)) & 1;
            idx |= bit << (n - 1 - q);
        }
        for (pos, q) in rest.iter().enumerate() {
            let bit = (r >> (rest.len() - 1 - pos)) & 1;
            idx |= bit << (n - 1 - q);
        }
        idx
    };
    for a in 0..kdim {
        for b in 0..kdim {
            let mut sum = C64::ZERO;
            for r in 0..rdim {
                sum += m[(compose(a, r), compose(b, r))];
            }
            out[(a, b)] = sum;
        }
    }
    out
}

/// Extract `[p00, p01, p10, p11, u, v]` from a (possibly unnormalised)
/// 4×4 hermitian matrix, or `None` when it is not X-form: every entry
/// outside the X pattern, and every imaginary part on it, must vanish
/// within [`X_EPS`].
fn x_decompose(m: &CMatrix) -> Option<[f64; 6]> {
    let off = [
        (0, 1),
        (0, 2),
        (1, 0),
        (2, 0),
        (1, 3),
        (3, 1),
        (2, 3),
        (3, 2),
    ];
    for (i, j) in off {
        if m[(i, j)].abs() > X_EPS {
            return None;
        }
    }
    for (i, j) in [
        (0, 0),
        (1, 1),
        (2, 2),
        (3, 3),
        (0, 3),
        (3, 0),
        (1, 2),
        (2, 1),
    ] {
        if m[(i, j)].im.abs() > X_EPS {
            return None;
        }
    }
    Some([
        m[(0, 0)].re,
        m[(1, 1)].re,
        m[(2, 2)].re,
        m[(3, 3)].re,
        m[(0, 3)].re,
        m[(1, 2)].re,
    ])
}

impl CondTable {
    /// Build the table for an arbitrary measured two-pair circuit: the
    /// four-qubit register is `[a0, a1, b0, b1]`; `ops` run in order,
    /// qubits `m1` then `m2` are Z-measured, and `keep` (two qubits)
    /// survive. Returns `None` if any conditional output leaves the
    /// X family — the callers then use the dense path.
    fn build(ops: &[CircuitOp], m1: usize, m2: usize, keep: [usize; 2]) -> Option<CondTable> {
        let basis = x_basis();
        let mut w = [[[[0.0f64; 6]; 6]; 2]; 2];
        let mut out = [[[[[0.0f64; 6]; 6]; 6]; 2]; 2];
        let bit = |i: usize, q: usize| (i >> (3 - q)) & 1;
        for a in 0..6 {
            for b in 0..6 {
                let mut m = basis[a].kron(&basis[b]);
                for op in ops {
                    m = match op {
                        CircuitOp::Unitary(u, targets) => {
                            let full = embed_op(4, u, targets);
                            &(&full * &m) * &full.dagger()
                        }
                        CircuitOp::Kraus(set, targets) => {
                            let mut acc = CMatrix::zeros(16, 16);
                            for k in set {
                                let full = embed_op(4, k, targets);
                                acc = &acc + &(&(&full * &m) * &full.dagger());
                            }
                            acc
                        }
                    };
                }
                for o1 in 0..2usize {
                    for o2 in 0..2usize {
                        // Mask = conjugation by the two diagonal
                        // projectors: keep entries whose row *and*
                        // column agree with both outcomes.
                        let mut masked = CMatrix::zeros(16, 16);
                        for i in 0..16 {
                            if bit(i, m1) != o1 || bit(i, m2) != o2 {
                                continue;
                            }
                            for j in 0..16 {
                                if bit(j, m1) != o1 || bit(j, m2) != o2 {
                                    continue;
                                }
                                masked[(i, j)] = m[(i, j)];
                            }
                        }
                        let reduced = partial_trace_raw(&masked, 4, &keep);
                        let coeffs = x_decompose(&reduced)?;
                        w[o1][o2][a][b] = coeffs[0] + coeffs[1] + coeffs[2] + coeffs[3];
                        out[o1][o2][a][b] = coeffs;
                    }
                }
            }
        }
        Some(CondTable { w, out })
    }

    /// Table for the noisy entanglement-swap circuit of
    /// `qn_hardware::pairs::PairStore::swap`: CNOT(qa→qb), two-qubit
    /// depolarizing `p_two`, H(qa), single-qubit depolarizing
    /// `p_single`, Z-measure qa then qb. `ia`/`ib` locate each pair's
    /// qubit at the swapping node (register `[a0, a1, b0, b1]`; the
    /// outer ends `[1−ia, 2+(1−ib)]` survive, A's outer first).
    pub fn swap(p_two: f64, p_single: f64, ia: usize, ib: usize) -> Option<CondTable> {
        assert!(ia < 2 && ib < 2);
        let qa = ia;
        let qb = 2 + ib;
        let ops = vec![
            CircuitOp::Unitary(gates::cnot(), vec![qa, qb]),
            CircuitOp::Kraus(channels::depolarizing_2q(p_two), vec![qa, qb]),
            CircuitOp::Unitary(gates::h(), vec![qa]),
            CircuitOp::Kraus(channels::depolarizing(p_single), vec![qa]),
        ];
        CondTable::build(&ops, qa, qb, [1 - ia, 2 + (1 - ib)])
    }

    /// Table for the BBPSSW distillation circuit of
    /// `qn_hardware::pairs::PairStore::distill`: bilateral CNOTs from
    /// the kept pair `[a0, a1]` onto the sacrificed pair, each followed
    /// by two-qubit depolarizing `p_two`; Z-measure the sacrificed
    /// qubits (the one co-located with `a0` first); keep `[a0, a1]`.
    /// `b0_at_na` gives the sacrificed pair's orientation.
    pub fn distill(p_two: f64, b0_at_na: bool) -> Option<CondTable> {
        let (b_na, b_nb) = if b0_at_na { (2, 3) } else { (3, 2) };
        let ops = vec![
            CircuitOp::Unitary(gates::cnot(), vec![0, b_na]),
            CircuitOp::Kraus(channels::depolarizing_2q(p_two), vec![0, b_na]),
            CircuitOp::Unitary(gates::cnot(), vec![1, b_nb]),
            CircuitOp::Kraus(channels::depolarizing_2q(p_two), vec![1, b_nb]),
        ];
        CondTable::build(&ops, b_na, b_nb, [0, 1])
    }

    /// Run the circuit on two X-state inputs, sampling the measurement
    /// outcomes with `u1`, `u2` exactly as the dense path samples them
    /// (first measurement from the unnormalised marginal, second from
    /// the renormalised conditional). Returns the outcomes and the
    /// normalised surviving pair state.
    pub fn apply(
        &self,
        a: &BellDiagonal,
        b: &BellDiagonal,
        u1: f64,
        u2: f64,
    ) -> (bool, bool, BellDiagonal) {
        let x = a.coeffs();
        let y = b.coeffs();
        let mut s = [[0.0f64; 6]; 6];
        let mut wsum = [[0.0f64; 2]; 2];
        for i in 0..6 {
            for j in 0..6 {
                let p = x[i] * y[j];
                s[i][j] = p;
                wsum[0][0] += p * self.w[0][0][i][j];
                wsum[0][1] += p * self.w[0][1][i][j];
                wsum[1][0] += p * self.w[1][0][i][j];
                wsum[1][1] += p * self.w[1][1][i][j];
            }
        }
        // First outcome: unnormalised probability of reading 1 (the
        // dense path's `prob_one` on a trace-1 state).
        let p1 = (wsum[1][0] + wsum[1][1]).clamp(0.0, 1.0);
        let m1 = u1 < p1;
        let row = usize::from(m1);
        // Second outcome: conditional probability after renormalising.
        let denom = (wsum[row][0] + wsum[row][1]).max(1e-300);
        let p2 = (wsum[row][1] / denom).clamp(0.0, 1.0);
        let m2 = u2 < p2;
        let col = usize::from(m2);

        let table = &self.out[row][col];
        let mut z = [0.0f64; 6];
        for i in 0..6 {
            for j in 0..6 {
                let p = s[i][j];
                if p == 0.0 {
                    continue;
                }
                let o = &table[i][j];
                for (zk, ok) in z.iter_mut().zip(o) {
                    *zk += p * ok;
                }
            }
        }
        let t = (z[0] + z[1] + z[2] + z[3]).max(1e-300);
        let inv = 1.0 / t;
        for zk in &mut z {
            *zk *= inv;
        }
        (m1, m2, BellDiagonal::from_coeffs(z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn werner(f: f64) -> BellDiagonal {
        let g = (1.0 - f) / 3.0;
        let mut c = [g; 4];
        c[BellState::PHI_PLUS.index()] = f;
        BellDiagonal::from_bell_coeffs(c)
    }

    fn assert_close(a: &BellDiagonal, d: &DensityMatrix, eps: f64, what: &str) {
        for b in BellState::ALL {
            let fb = a.bell_coeff(b);
            let fd = d.fidelity_pure(&b.amplitudes());
            assert!(
                (fb - fd).abs() < eps,
                "{what}: {b} coeff {fb} vs dense {fd}"
            );
        }
        for end in 0..2 {
            let pb = a.prob_one(end);
            let pd = d.prob_one(end);
            assert!(
                (pb - pd).abs() < eps,
                "{what}: prob_one({end}) {pb} vs {pd}"
            );
        }
        assert!((a.trace() - d.trace()).abs() < eps, "{what}: trace");
        assert!((a.purity() - d.purity()).abs() < eps, "{what}: purity");
    }

    #[test]
    fn bell_states_round_trip() {
        for b in BellState::ALL {
            let bd = BellDiagonal::from_bell_state(b);
            assert!((bd.bell_coeff(b) - 1.0).abs() < 1e-12);
            let dm = bd.to_density();
            assert!(dm.matrix().approx_eq(b.density().matrix(), 1e-12));
            let back = BellDiagonal::from_density(&dm).expect("X-form");
            assert_eq!(back, bd);
        }
    }

    #[test]
    fn closed_form_channels_match_dense() {
        for b in BellState::ALL {
            let mut bd = werner(0.83);
            // Rotate the Werner state into frame b like the stack does.
            bd.apply_pauli(1, BellState::PHI_PLUS.correction_to(b));
            let mut dm = bd.to_density();
            let steps: Vec<(&str, Box<dyn Fn(&mut BellDiagonal, &mut DensityMatrix)>)> = vec![
                (
                    "dephase0",
                    Box::new(|x, d| {
                        x.dephase(0.07);
                        d.apply_kraus(&channels::dephasing(0.07), &[0]);
                    }),
                ),
                (
                    "damp0",
                    Box::new(|x, d| {
                        x.amplitude_damp(0, 0.13);
                        d.apply_kraus(&channels::amplitude_damping(0.13), &[0]);
                    }),
                ),
                (
                    "depol1",
                    Box::new(|x, d| {
                        x.depolarize(1, 0.21);
                        d.apply_kraus(&channels::depolarizing(0.21), &[1]);
                    }),
                ),
                (
                    "damp1",
                    Box::new(|x, d| {
                        x.amplitude_damp(1, 0.4);
                        d.apply_kraus(&channels::amplitude_damping(0.4), &[1]);
                    }),
                ),
                (
                    "flip0",
                    Box::new(|x, d| {
                        x.bit_flip(0, 0.3);
                        d.apply_kraus(&channels::bit_flip(0.3), &[0]);
                    }),
                ),
                (
                    "pauli_y1",
                    Box::new(|x, d| {
                        x.apply_pauli(1, Pauli::Y);
                        d.apply_unitary(&gates::y(), &[1]);
                    }),
                ),
                (
                    "depol2q",
                    Box::new(|x, d| {
                        x.depolarize_2q(0.11);
                        d.apply_kraus(&channels::depolarizing_2q(0.11), &[0, 1]);
                    }),
                ),
            ];
            for (what, step) in steps {
                step(&mut bd, &mut dm);
                assert_close(&bd, &dm, 1e-12, what);
                // The dense state must still be X-form (closure).
                let x = BellDiagonal::from_density(&dm).expect("X closure");
                assert_close(&x, &bd.to_density(), 1e-12, what);
            }
        }
    }

    #[test]
    fn measurement_matches_dense() {
        for u in [0.05, 0.45, 0.55, 0.95] {
            let mut bd = werner(0.71);
            bd.amplitude_damp(0, 0.2); // asymmetric populations
            let mut dm = bd.to_density();
            let ob = bd.measure_z(0, u);
            let od = dm.measure_z(0, u);
            assert_eq!(ob, od, "u={u}");
            assert_close(&bd, &dm, 1e-12, "post first Z");
            let ob2 = bd.measure_z(1, 0.5);
            let od2 = dm.measure_z(1, 0.5);
            assert_eq!(ob2, od2, "second Z, u={u}");
        }
    }

    #[test]
    fn swap_table_matches_dense_circuit() {
        let p_two = channels::depolarizing_param_for_fidelity(0.98, 4);
        let p_single = channels::depolarizing_param_for_fidelity(0.99, 2);
        for (ia, ib) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let table = CondTable::swap(p_two, p_single, ia, ib).expect("X closure");
            let mut a = werner(0.87);
            a.amplitude_damp(0, 0.15);
            let mut b = werner(0.92);
            b.apply_pauli(1, Pauli::X);
            b.amplitude_damp(1, 0.05);
            for (u1, u2) in [(0.2, 0.7), (0.8, 0.3), (0.49, 0.51)] {
                // Dense reference: the exact sequence of PairStore::swap.
                let mut joint = a.to_density().tensor(&b.to_density());
                let (qa, qb) = (ia, 2 + ib);
                joint.apply_unitary(&gates::cnot(), &[qa, qb]);
                joint.apply_kraus(&channels::depolarizing_2q(p_two), &[qa, qb]);
                joint.apply_unitary(&gates::h(), &[qa]);
                joint.apply_kraus(&channels::depolarizing(p_single), &[qa]);
                let m1d = joint.measure_z(qa, u1);
                let m2d = joint.measure_z(qb, u2);
                let post_d = joint.partial_trace_keep(&[1 - ia, 2 + (1 - ib)]);

                let (m1, m2, post) = table.apply(&a, &b, u1, u2);
                assert_eq!((m1, m2), (m1d, m2d), "orientation ({ia},{ib})");
                assert!(
                    post.to_density().matrix().approx_eq(post_d.matrix(), 1e-12),
                    "post-swap state, orientation ({ia},{ib})"
                );
            }
        }
    }

    #[test]
    fn distill_table_matches_dense_circuit() {
        let p_two = channels::depolarizing_param_for_fidelity(0.995, 4);
        for b0_at_na in [true, false] {
            let table = CondTable::distill(p_two, b0_at_na).expect("X closure");
            let a = werner(0.8);
            let mut b = werner(0.86);
            b.amplitude_damp(0, 0.1);
            for (u1, u2) in [(0.1, 0.9), (0.6, 0.2), (0.35, 0.65)] {
                let mut joint = a.to_density().tensor(&b.to_density());
                let (b_na, b_nb) = if b0_at_na { (2, 3) } else { (3, 2) };
                for (ctrl, tgt) in [(0usize, b_na), (1usize, b_nb)] {
                    joint.apply_unitary(&gates::cnot(), &[ctrl, tgt]);
                    joint.apply_kraus(&channels::depolarizing_2q(p_two), &[ctrl, tgt]);
                }
                let m1d = joint.measure_z(b_na, u1);
                let m2d = joint.measure_z(b_nb, u2);
                let post_d = joint.partial_trace_keep(&[0, 1]);

                let (m1, m2, post) = table.apply(&a, &b, u1, u2);
                assert_eq!((m1, m2), (m1d, m2d), "orientation {b0_at_na}");
                assert!(
                    post.to_density().matrix().approx_eq(post_d.matrix(), 1e-12),
                    "post-distill state, orientation {b0_at_na}"
                );
            }
        }
    }

    #[test]
    fn state_rep_parses_env_values() {
        assert_eq!(StateRep::Bell.as_str(), "bell");
        assert_eq!(StateRep::Dm.as_str(), "dm");
    }

    #[test]
    fn pair_state_demotes_on_xy_measurement() {
        let mut s = PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS));
        assert!(s.is_bell());
        let _ = s.measure_pauli(0, Pauli::X, 0.3);
        assert!(!s.is_bell(), "X-basis readout must demote");
        // Z-basis readout keeps the fast representation.
        let mut z = PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS));
        let _ = z.measure_pauli(0, Pauli::Z, 0.3);
        assert!(z.is_bell());
    }
}
