//! **Ablation** — the cutoff design choice (DESIGN.md: "Cutoff time",
//! paper §4.1).
//!
//! Sweeps the cutoff timeout at a fixed memory lifetime (T2* = 1.6 s)
//! and reports the throughput/fidelity trade-off that motivates the
//! routing protocol's choice:
//!
//! * too tight a cutoff: pairs rarely meet a partner in time —
//!   throughput collapses, fidelity is pristine;
//! * too loose: pairs idle and decohere — throughput of *useful* pairs
//!   collapses from the other side;
//! * the 1.5 %-loss rule sits near the knee.
//!
//! Run: `cargo bench --bench ablation_cutoff` (knob: `QNP_RUNS`).

use qn_bench::{keep_request, runs};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::budget::cutoff_for_fidelity_loss;
use qn_routing::{dumbbell, CircuitPlan, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

fn main() {
    let n_runs = runs(3);
    let t2 = 1.6;
    let fidelity = 0.85;
    let params = HardwareParams::simulation().with_electron_t2(t2);
    let reference = cutoff_for_fidelity_loss(&params, fidelity, 0.015);
    println!("# Ablation — cutoff sweep at T2* = {t2} s, target F = {fidelity}");
    println!(
        "# routing's 1.5%-loss cutoff for reference: {:.1} ms",
        reference.as_millis_f64()
    );
    println!("# cutoff_ms   throughput_pairs_per_s   mean_fidelity   discards");

    // Use a fixed-fidelity plan so only the cutoff varies.
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let base_plan = {
        let controller = qn_routing::Controller::new(&topology, CutoffPolicy::Manual(reference));
        controller.plan(d.a0, d.b0, fidelity).expect("feasible")
    };

    for factor in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let cutoff = reference.mul_f64(factor);
        let mut thr = 0.0;
        let mut fid = 0.0;
        let mut fid_runs = 0usize;
        let mut discards = 0u64;
        for seed in 0..n_runs {
            let (topology, _) = dumbbell(
                HardwareParams::simulation().with_electron_t2(t2),
                FibreParams::lab_2m(),
            );
            let mut sim = NetworkBuilder::new(topology).seed(5000 + seed).build();
            let plan = CircuitPlan {
                cutoff,
                ..base_plan.clone()
            };
            let vc = sim.install_plan(plan);
            sim.submit_at(
                SimTime::ZERO,
                vc,
                keep_request(1, d.a0, d.b0, fidelity, u64::MAX / 2),
            );
            let horizon = SimDuration::from_secs(10);
            sim.run_until(SimTime::ZERO + horizon);
            let app = sim.app();
            thr += app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX) as f64
                / horizon.as_secs_f64();
            if let Some(f) = app.mean_fidelity(vc, d.a0) {
                fid += f;
                fid_runs += 1;
            }
            discards += sim.discarded_pairs();
        }
        thr /= n_runs as f64;
        let fid = if fid_runs > 0 {
            fid / fid_runs as f64
        } else {
            f64::NAN
        };
        println!(
            "{:10.1}   {thr:22.2}   {fid:13.4}   {}",
            cutoff.as_millis_f64(),
            discards / n_runs
        );
    }
    println!("#\n# expected shape: throughput rises then saturates with the cutoff;");
    println!("# fidelity monotonically falls; the 1.5% rule sits near the knee.");
}
