//! Meta-tests of the shrinking engine: deliberately-failing properties
//! whose *minimised* counterexample is known exactly. These pin down
//! the two guarantees the workspace relies on — local minimality (no
//! single shrink step keeps the property failing) and bit-for-bit
//! reproducibility across runs.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::{run_property, Config, PropertyFailure, TestCaseError};

fn fail_if(cond: bool, msg: &str) -> Result<(), TestCaseError> {
    if cond {
        Err(TestCaseError::Fail(msg.to_string()))
    } else {
        Ok(())
    }
}

/// A `vec` property violated at length >= 3 must shrink to *exactly* 3
/// elements, each individually minimal.
#[test]
fn vec_length_shrinks_to_exact_boundary() {
    let failure = run_property(
        "meta_vec_len",
        &Config::with_cases(64),
        &vec(0u64..100, 0..40),
        |v| fail_if(v.len() >= 3, "too long"),
    )
    .expect_err("property fails for most vectors");
    assert_eq!(
        failure.minimal.len(),
        3,
        "locally minimal length for `len >= 3` is exactly 3: {:?}",
        failure.minimal
    );
    assert_eq!(
        failure.minimal,
        vec![0, 0, 0],
        "elements must shrink to the range minimum too"
    );
    assert!(failure.original.len() >= 3);
    assert!(failure.stats.accepted > 0);
}

/// An integer property violated at a threshold shrinks to the
/// threshold itself.
#[test]
fn integer_shrinks_to_threshold() {
    let failure = run_property(
        "meta_int_threshold",
        &Config::with_cases(64),
        &(0u32..10_000,),
        |(x,)| fail_if(x >= 137, "over the line"),
    )
    .expect_err("property fails for large values");
    assert_eq!(failure.minimal.0, 137);
}

/// `prop_map` shrinks through the mapping: the *source* value is
/// minimised and re-mapped, so even non-invertible maps shrink.
#[test]
fn mapped_strategies_shrink_through_the_map() {
    let failure = run_property(
        "meta_map_shrink",
        &Config::with_cases(64),
        &((0u32..10_000).prop_map(|x| x * 2),),
        |(v,)| fail_if(v >= 100, "over"),
    )
    .expect_err("property fails for large values");
    assert_eq!(failure.minimal.0, 100, "minimal even value >= 100 is 100");
}

/// Tuples shrink component-wise to a joint local minimum: for
/// `a + b >= 100`, no single component can decrease further.
#[test]
fn tuple_components_shrink_to_joint_boundary() {
    let failure = run_property(
        "meta_tuple_boundary",
        &Config::with_cases(64),
        &(0u32..100, 0u32..100),
        |(a, b)| fail_if(a + b >= 100, "sum too large"),
    )
    .expect_err("property fails often");
    let (a, b) = (failure.minimal.0, failure.minimal.1);
    assert_eq!(
        a + b,
        100,
        "at a local minimum, decrementing either component passes"
    );
}

/// `prop_filter` constrains shrinking too: no candidate outside the
/// filtered domain is ever proposed.
#[test]
fn filtered_strategies_shrink_within_the_filter() {
    let failure = run_property(
        "meta_filter_shrink",
        &Config::with_cases(64),
        &((0u32..10_000).prop_filter("multiples of 3", |v| v % 3 == 0),),
        |(v,)| fail_if(v >= 30, "over"),
    )
    .expect_err("property fails for large values");
    assert_eq!(failure.minimal.0 % 3, 0, "shrinks stay in the domain");
    assert_eq!(failure.minimal.0, 30, "minimal multiple of 3 that is >= 30");
}

/// Shrinking is deterministic: two runs of the same failing property
/// produce identical counterexamples, messages and statistics.
#[test]
fn shrinking_is_reproducible_across_runs() {
    let run = || -> Box<PropertyFailure<(Vec<u64>,)>> {
        run_property(
            "meta_reproducible",
            &Config::with_cases(64),
            &(vec(0u64..1_000, 0..60),),
            |(v,)| fail_if(v.iter().sum::<u64>() >= 50, "sum too large"),
        )
        .expect_err("property fails for most vectors")
    };
    let first = run();
    let second = run();
    assert_eq!(first.minimal, second.minimal);
    assert_eq!(first.original, second.original);
    assert_eq!(first.case, second.case);
    assert_eq!(first.minimal_message, second.minimal_message);
    assert_eq!(first.stats.executions, second.stats.executions);
    assert_eq!(first.stats.accepted, second.stats.accepted);
    // And the minimum for `sum >= 50` is a single element of exactly 50
    // (removing it passes; decrementing it passes).
    assert_eq!(first.minimal.0, vec![50]);
}

/// `prop_assume!`-style rejections during shrinking end that branch of
/// the descent instead of being treated as failures.
#[test]
fn rejected_candidates_stop_the_descent_branch() {
    let failure = run_property(
        "meta_reject_during_shrink",
        &Config::with_cases(64),
        &(0u32..10_000,),
        |(x,)| {
            if x < 10 {
                // The region below the boundary is "rejected" — the
                // minimum must sit at the boundary, not inside it.
                Err(TestCaseError::Reject("too small".to_string()))
            } else {
                fail_if(x >= 10, "fails whenever not rejected")
            }
        },
    )
    .expect_err("property fails for every accepted value");
    assert_eq!(failure.minimal.0, 10);
}

/// The `PROPTEST_CASES_MULTIPLIER` knob scales any config's case count
/// (the CI nightly-style job runs the suites at 4x this way), and
/// `PROPTEST_CASES` overrides the default count only.
#[test]
fn env_knobs_scale_case_counts() {
    // The CI property-deep job exports a multiplier for the whole test
    // run — save and restore whatever is already set.
    let ambient = std::env::var("PROPTEST_CASES_MULTIPLIER").ok();
    std::env::remove_var("PROPTEST_CASES_MULTIPLIER");
    assert_eq!(Config::with_cases(8).resolved_cases(), 8);
    std::env::set_var("PROPTEST_CASES_MULTIPLIER", "3");
    assert_eq!(Config::with_cases(8).resolved_cases(), 24);
    match ambient {
        Some(v) => std::env::set_var("PROPTEST_CASES_MULTIPLIER", v),
        None => std::env::remove_var("PROPTEST_CASES_MULTIPLIER"),
    }
}
