//! Inputs and outputs of the QNP node state machine.
//!
//! The node core is sans-IO: it consumes [`NetInput`]s and emits
//! [`NetOutput`] effects. The simulation runtime (or a unit test) is
//! responsible for turning effects into scheduled events, physical
//! operations and message transmissions.

use crate::ids::{Address, CircuitId, Correlator, PairHandle, PairRef, RequestId};
use crate::messages::Message;
use crate::request::UserRequest;
use crate::routing_table::{LinkSide, RoutingEntry};
use qn_link::LinkLabel;
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::SimDuration;

/// A link-layer pair as seen by the network layer at one node.
#[derive(Clone, Copy, Debug)]
pub struct PairInfo {
    /// Correlator + runtime handle.
    pub pair: PairRef,
    /// The Bell state announced by the link layer.
    pub announced: BellState,
}

/// Everything that can happen to a QNP node.
#[derive(Clone, Debug)]
pub enum NetInput {
    /// Signalling installed a circuit through this node.
    InstallCircuit {
        /// The routing entry to install.
        entry: RoutingEntry,
    },
    /// Signalling tore the circuit down (e.g. transport liveness failed).
    TeardownCircuit {
        /// The circuit to remove.
        circuit: CircuitId,
    },
    /// An application submitted a request (head-end only; the paper has
    /// the tail-end forward user requests to the head-end).
    UserRequest {
        /// Circuit to serve the request.
        circuit: CircuitId,
        /// The request.
        request: UserRequest,
    },
    /// An application cancelled a (typically rate-based) request.
    CancelRequest {
        /// The circuit carrying the request.
        circuit: CircuitId,
        /// The request to cancel.
        request: RequestId,
    },
    /// The link layer delivered a pair for this circuit.
    LinkPair {
        /// The circuit the pair's label maps to.
        circuit: CircuitId,
        /// Which of the node's links produced it.
        side: LinkSide,
        /// The pair.
        info: PairInfo,
    },
    /// A control message arrived from an adjacent node on the circuit.
    Message {
        /// True when the sender is the upstream neighbour.
        from_upstream: bool,
        /// The message.
        msg: Message,
    },
    /// The runtime finished a swap this node requested via
    /// [`NetOutput::StartSwap`].
    SwapCompleted {
        /// The circuit of the swap.
        circuit: CircuitId,
        /// Correlator of the consumed upstream pair.
        up: Correlator,
        /// Correlator of the consumed downstream pair.
        down: Correlator,
        /// The announced two-bit outcome.
        outcome: BellState,
        /// Handle of the newly joined pair.
        new_handle: PairHandle,
    },
    /// The runtime finished a measurement requested via
    /// [`NetOutput::MeasureNow`].
    MeasureCompleted {
        /// The circuit of the measured pair.
        circuit: CircuitId,
        /// Correlator of the measured pair.
        correlator: Correlator,
        /// The (readout-noisy) outcome.
        outcome: bool,
    },
    /// A runtime-armed expiry fired for a pair an end-node is still
    /// holding unconfirmed (no TRACK/EXPIRE arrived). Only armed when
    /// the classical plane is faulty — on a reliable plane every chain
    /// resolves via TRACK or EXPIRE and end-nodes never need timers
    /// (§4.1 "Cutoff time").
    TrackTimeout {
        /// The circuit of the unconfirmed pair.
        circuit: CircuitId,
        /// The pair's correlator at this end-node.
        correlator: Correlator,
    },
    /// The runtime reclaimed a link qubit whose pair announcement never
    /// arrived (a PAIR_READY lost on a faulty wire): the correlator will
    /// never be delivered at this node. The QNP marks it expired so any
    /// held or future TRACK referencing it bounces an EXPIRE back to the
    /// chain's origin instead of waiting for the origin's own timeout.
    LinkOrphaned {
        /// The circuit the lost pair belonged to.
        circuit: CircuitId,
        /// Which of the node's links produced it.
        side: LinkSide,
        /// The never-announced pair's correlator.
        correlator: Correlator,
    },
    /// A cutoff timer set via [`NetOutput::SetCutoff`] fired.
    CutoffExpired {
        /// The circuit of the expired pair.
        circuit: CircuitId,
        /// Which link the pair belongs to.
        side: LinkSide,
        /// The expired pair's correlator.
        correlator: Correlator,
    },
}

impl NetInput {
    /// The circuit this input concerns.
    pub fn circuit(&self) -> CircuitId {
        match self {
            NetInput::InstallCircuit { entry } => entry.circuit,
            NetInput::TeardownCircuit { circuit }
            | NetInput::UserRequest { circuit, .. }
            | NetInput::CancelRequest { circuit, .. }
            | NetInput::LinkPair { circuit, .. }
            | NetInput::SwapCompleted { circuit, .. }
            | NetInput::MeasureCompleted { circuit, .. }
            | NetInput::TrackTimeout { circuit, .. }
            | NetInput::LinkOrphaned { circuit, .. }
            | NetInput::CutoffExpired { circuit, .. } => *circuit,
            NetInput::Message { msg, .. } => msg.circuit(),
        }
    }
}

/// What a delivery hands to the application.
#[derive(Clone, Copy, Debug)]
pub enum DeliveryKind {
    /// A live qubit confirmed by tracking (KEEP requests).
    Qubit {
        /// The delivered pair end.
        pair: PairRef,
        /// The pair's Bell state (post-correction for final-state
        /// requests).
        state: BellState,
    },
    /// A live qubit delivered before tracking confirmation (EARLY
    /// requests); the application owns error handling from here on.
    EarlyQubit {
        /// The delivered pair end.
        pair: PairRef,
        /// The link-level announced state at delivery time (the
        /// end-to-end state arrives later as [`DeliveryKind::EarlyTracking`]).
        state: BellState,
    },
    /// Tracking information for a qubit already delivered early.
    EarlyTracking {
        /// The previously delivered pair.
        pair: PairRef,
        /// The confirmed Bell state.
        state: BellState,
    },
    /// A measurement outcome (MEASURE requests), withheld until tracking
    /// confirmed the pair.
    Measurement {
        /// The reported outcome bit.
        outcome: bool,
        /// The measurement basis.
        basis: Pauli,
        /// The pair's tracked Bell state (needed to interpret outcomes).
        state: BellState,
    },
}

/// The network's *entangled pair identifier* (paper §3.2): the pair of
/// origin correlators of the two tracking messages that confirmed the
/// chain. Both end-nodes compute the identical value — the head knows its
/// own link-pair correlator plus the tail's from the received TRACK, and
/// vice versa — so applications can match deliveries across the network
/// without any extra coordination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChainId {
    /// The head-end's link-pair correlator for this chain.
    pub head: Correlator,
    /// The tail-end's link-pair correlator for this chain.
    pub tail: Correlator,
}

/// A delivery to a local application end-point.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// The request being served.
    pub request: RequestId,
    /// Delivery sequence number within the request (per end).
    pub sequence: u64,
    /// The end-to-end entangled pair identifier (equal at both ends).
    /// `None` only for unconfirmed EARLY qubit deliveries, whose tracking
    /// information has not arrived yet.
    pub chain: Option<ChainId>,
    /// The local end-point address.
    pub address: Address,
    /// The payload.
    pub kind: DeliveryKind,
}

/// Application-visible request lifecycle notifications.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AppEvent {
    /// The request was admitted.
    RequestAccepted(RequestId),
    /// The request was delayed by the shaper.
    RequestShaped(RequestId),
    /// The request was rejected by policing.
    RequestRejected(RequestId, &'static str),
    /// All pairs of the request have been delivered (head-end view).
    RequestCompleted(RequestId),
    /// An early-delivered pair turned out to be broken; the application
    /// owns the qubit and must handle it (paper §4.1 "Early delivery").
    EarlyPairExpired {
        /// The affected request.
        request: RequestId,
        /// The affected pair.
        pair: PairRef,
    },
    /// The circuit was torn down; outstanding requests aborted.
    CircuitDown(CircuitId),
}

/// Effects the node asks the runtime to perform.
#[derive(Clone, Debug)]
pub enum NetOutput {
    /// Send a message to the upstream neighbour on the circuit.
    SendUpstream(Message),
    /// Send a message to the downstream neighbour on the circuit.
    SendDownstream(Message),
    /// Submit a continuous link-layer request on one of this node's links.
    LinkSubmit {
        /// Which link.
        side: LinkSide,
        /// The circuit's label on that link.
        label: LinkLabel,
        /// Minimum link fidelity from the routing entry.
        min_fidelity: f64,
        /// Scheduling weight (LPR share).
        weight: f64,
    },
    /// Update the scheduling weight of the circuit's link request.
    LinkSetWeight {
        /// Which link.
        side: LinkSide,
        /// The label whose weight changes.
        label: LinkLabel,
        /// New weight.
        weight: f64,
    },
    /// Stop the circuit's link request.
    LinkStop {
        /// Which link.
        side: LinkSide,
        /// The label to stop.
        label: LinkLabel,
    },
    /// Perform an entanglement swap of the two pairs (report back with
    /// [`NetInput::SwapCompleted`]).
    StartSwap {
        /// The upstream-link pair.
        up: PairRef,
        /// The downstream-link pair.
        down: PairRef,
    },
    /// Arm a cutoff timer for a pair held at this node.
    SetCutoff {
        /// The pair to watch.
        pair: PairRef,
        /// Which link it belongs to.
        side: LinkSide,
        /// Fire after this long.
        after: SimDuration,
    },
    /// Disarm the pair's cutoff timer (it is about to be consumed).
    CancelCutoff {
        /// The pair whose timer to cancel.
        pair: PairRef,
    },
    /// Free the pair's qubits (cutoff discard, cross-check failure,
    /// expiry notification).
    DiscardPair {
        /// The pair to discard.
        pair: PairRef,
    },
    /// Measure the local end of the pair now (MEASURE requests); report
    /// back with [`NetInput::MeasureCompleted`].
    MeasureNow {
        /// The pair to measure.
        pair: PairRef,
        /// Measurement basis.
        basis: Pauli,
    },
    /// Apply a Pauli correction to the local end of the pair (final-state
    /// requests at the head-end).
    ApplyCorrection {
        /// The pair to correct.
        pair: PairRef,
        /// The Pauli to apply.
        pauli: Pauli,
    },
    /// Hand a delivery to the local application.
    Deliver(Delivery),
    /// Notify the application of a request lifecycle event.
    Notify(AppEvent),
    /// A TRACK_ACK for a chain this end-node originated reached it: the
    /// runtime may disarm any retransmit timer keyed on `origin`.
    /// Emitted only on retransmitting runtimes; a stray ack (corrupted
    /// or already-satisfied) is a silent no-op.
    TrackAcked {
        /// Correlator of the origin link-pair from the acknowledged TRACK.
        origin: Correlator,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::NodeId;

    #[test]
    fn input_circuit_accessor() {
        let input = NetInput::CutoffExpired {
            circuit: CircuitId(7),
            side: LinkSide::Upstream,
            correlator: Correlator {
                node_a: NodeId(0),
                node_b: NodeId(1),
                seq: 0,
            },
        };
        assert_eq!(input.circuit(), CircuitId(7));
    }
}
