//! Ready-made [`crate::ModelSpec`] implementations for the subsystems
//! the QNP's correctness argument leans on: the simulator's event queue
//! (`qn_sim`), the generational pair slab (`qn_hardware`), the
//! link-layer protocol state machine (`qn_link`), the network layer's
//! demultiplexer and routing table (`qn_net`), and the end-to-end
//! netsim runtime (`qn_netsim`).

pub mod demux;
pub mod link;
pub mod netsim;
pub mod queue;
pub mod routing;
pub mod slab;
