//! Ready-made [`crate::ModelSpec`] implementations for the subsystems
//! the QNP's correctness argument leans on: the simulator's event queue
//! (`qn_sim`), the link-layer protocol state machine (`qn_link`), and
//! the network layer's demultiplexer and routing table (`qn_net`).

pub mod demux;
pub mod link;
pub mod queue;
pub mod routing;
