//! Cross-validation of the QNP's *lazy entanglement tracking* algebra
//! against the full density-matrix simulation.
//!
//! The protocol's correctness hinges on one algebraic fact: XOR-combining
//! swap outcomes along a chain predicts the Bell state of the end-to-end
//! pair, regardless of swap order. These tests verify that exhaustively
//! for all 16 input-state combinations and with property-based random
//! chains of up to 3 swaps (4 links — a 5-node circuit).

use proptest::prelude::*;
use qn_quantum::bell::BellState;
use qn_quantum::measure::bell_measure_ideal;
use qn_quantum::DensityMatrix;

/// Exhaustive: every pair of input Bell states, every sampled branch.
#[test]
fn exhaustive_two_link_tracking() {
    for a in BellState::ALL {
        for b in BellState::ALL {
            // Sample all four measurement branches via stratified u.
            for u in [0.05, 0.3, 0.55, 0.8, 0.999] {
                let joint = a.density().tensor(&b.density());
                let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, u);
                let rest = rest.unwrap();
                let predicted = a.combine(b, outcome);
                let f = rest.fidelity_pure(&predicted.amplitudes());
                assert!(
                    (f - 1.0).abs() < 1e-9,
                    "links ({a},{b}), outcome {outcome}: predicted {predicted}, fidelity {f}"
                );
            }
        }
    }
}

/// Swap a chain of `links` ideal Bell pairs sequentially (left to right),
/// tracking with XOR; verify the final state matches the prediction.
fn run_chain(states: &[BellState], us: &[f64]) -> (BellState, DensityMatrix) {
    assert!(!states.is_empty());
    let mut current = states[0].density(); // pair spanning (end A, right)
    let mut tracked = states[0];
    for (i, s) in states.iter().enumerate().skip(1) {
        let joint = current.tensor(&s.density());
        // Qubits: 0 = A end, 1 = right end of current, 2 = left end of next,
        // 3 = new right end. Swap measures (1, 2).
        let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, us[i - 1]);
        tracked = tracked.combine(*s, outcome);
        current = rest.unwrap();
    }
    (tracked, current)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random chains of 2–4 links: lazy tracking always predicts the final
    /// Bell state exactly (fidelity 1 with ideal operations).
    #[test]
    fn random_chain_tracking(
        idxs in proptest::collection::vec(0usize..4, 2..=4),
        us in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let states: Vec<BellState> = idxs.iter().map(|i| BellState::from_index(*i)).collect();
        let (tracked, rho) = run_chain(&states, &us);
        let f = rho.fidelity_pure(&tracked.amplitudes());
        prop_assert!((f - 1.0).abs() < 1e-9, "tracked {tracked} fidelity {f}");
    }

    /// Swap order does not matter: swapping middle-first or ends-first on a
    /// 3-link chain yields the same tracked state for the same outcomes,
    /// and both match the simulation.
    #[test]
    fn swap_order_independence(
        idxs in proptest::collection::vec(0usize..4, 3),
        us in proptest::collection::vec(0.0f64..1.0, 2),
    ) {
        let s: Vec<BellState> = idxs.iter().map(|i| BellState::from_index(*i)).collect();

        // Order 1: swap (link0, link1) then (result, link2).
        let (t1, rho1) = run_chain(&s, &us);
        let f1 = rho1.fidelity_pure(&t1.amplitudes());
        prop_assert!((f1 - 1.0).abs() < 1e-9);

        // Order 2: swap (link1, link2) first, then (link0, result).
        let joint_right = s[1].density().tensor(&s[2].density());
        let (o_r, right) = bell_measure_ideal(&joint_right, 1, 2, us[0]);
        let right_state = s[1].combine(s[2], o_r);
        let joint_all = s[0].density().tensor(&right.unwrap());
        let (o_l, fin) = bell_measure_ideal(&joint_all, 1, 2, us[1]);
        let t2 = s[0].combine(right_state, o_l);
        let f2 = fin.unwrap().fidelity_pure(&t2.amplitudes());
        prop_assert!((f2 - 1.0).abs() < 1e-9);
    }

    /// Werner-noise chains: the tracked Bell state remains the *dominant*
    /// component (fidelity above the classical 0.5 bound) when links carry
    /// realistic noise.
    #[test]
    fn noisy_chain_tracking_keeps_dominant_state(
        f_link in 0.9f64..1.0,
        u in 0.0f64..1.0,
    ) {
        use qn_quantum::formulas::werner_param;
        let w = werner_param(f_link);
        let phi = BellState::PHI_PLUS.density();
        let mixed = DensityMatrix::maximally_mixed(2);
        let noisy = DensityMatrix::from_matrix(
            &phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w),
        );
        let joint = noisy.tensor(&noisy);
        let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, u);
        let predicted = BellState::PHI_PLUS.combine(BellState::PHI_PLUS, outcome);
        let f = rest.unwrap().fidelity_pure(&predicted.amplitudes());
        let expected = qn_quantum::formulas::swap_fidelity(f_link, f_link);
        prop_assert!((f - expected).abs() < 1e-6, "sim {f} vs formula {expected}");
        prop_assert!(f > 0.5);
    }
}
