//! **Figure 5** — CDF of the time to generate a link-pair of fidelity
//! 0.95 over a 2 m fibre with the simulation hardware parameters.
//!
//! Paper anchor: "on average we have to wait 10 ms and … 95 % of
//! link-pairs are generated within 30 ms."
//!
//! Run: `cargo bench --bench fig5_link_cdf` (knobs: `QNP_RUNS` samples,
//! default 5000; `QNP_THREADS` sweep workers; `QNP_QSTATE` pair-state
//! representation — each sample also drives the quantum kernel:
//! heralded-state construction, memory decay and the fidelity oracle).

use qn_bench::{env_u64, fig5_sweep, Baseline, Direction};
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_hardware::StateRep;
use qn_sim::Samples;

fn main() {
    let wall_start = std::time::Instant::now();
    let samples_n = env_u64("QNP_RUNS", 5_000);
    let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
    let fidelity = 0.95;
    let alpha = physics
        .alpha_for_fidelity(fidelity)
        .expect("0.95 attainable in the lab configuration");
    let p = physics.success_prob(alpha);
    let cycle = physics.cycle_time();

    println!("# Figure 5 — link-pair generation time CDF");
    println!("# fidelity {fidelity}, 2 m fibre, simulation parameters");
    println!(
        "# alpha = {alpha:.5}, p_succ/attempt = {p:.3e}, cycle = {:.3} us",
        cycle.as_micros_f64()
    );

    // Chunked sweep: each chunk draws its samples from its own RNG
    // substream, so the sample set is thread-count independent.
    let mut samples = Samples::new();
    let mut fid_sum = 0.0;
    let mut count = 0u64;
    for chunk_samples in fig5_sweep(250, samples_n, fidelity) {
        for s in chunk_samples {
            samples.push(s.time_ms);
            fid_sum += s.fidelity;
            count += 1;
        }
    }
    let mean_fidelity = fid_sum / count.max(1) as f64;

    println!("#\n# time_ms   fraction_generated");
    for (t, q) in samples.cdf_points(40) {
        println!("{t:9.3}   {q:.4}");
    }
    let mean = samples.mean().unwrap();
    let p95 = samples.percentile(0.95).unwrap();
    let p50 = samples.median().unwrap();
    println!("#\n# mean   = {mean:7.2} ms   (paper: ≈10 ms)");
    println!("# median = {p50:7.2} ms");
    println!("# p95    = {p95:7.2} ms   (paper: ≈30 ms)");
    println!("# mean pair fidelity after one generation wait = {mean_fidelity:.6}");

    assert!(
        (5.0..20.0).contains(&mean),
        "mean drifted outside the Fig 5 anchor window"
    );
    assert!(
        (15.0..60.0).contains(&p95),
        "p95 drifted outside the Fig 5 anchor window"
    );
    println!("# shape check: PASS (geometric CDF, mean and p95 in anchor windows)");

    assert!(
        (0.9..0.96).contains(&mean_fidelity),
        "pairs idling one generation period must stay near F=0.95: {mean_fidelity}"
    );

    let wall_clock_s = wall_start.elapsed().as_secs_f64();
    let mut baseline = Baseline::new("fig5_link_cdf")
        .config_num("samples", samples.len() as f64)
        .config_num("fidelity", fidelity)
        .direction("mean_ms", Direction::LowerIsBetter)
        .direction("median_ms", Direction::LowerIsBetter)
        .direction("p95_ms", Direction::LowerIsBetter)
        .direction("mean_fidelity", Direction::HigherIsBetter)
        .meta_str("qnp_qstate", StateRep::from_env().as_str())
        .meta_num("wall_clock_s", wall_clock_s);
    baseline.point(
        "link_generation_time",
        &[("mean_ms", mean), ("median_ms", p50), ("p95_ms", p95)],
    );
    baseline.point("link_pair_fidelity", &[("mean_fidelity", mean_fidelity)]);
    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, QNP_QSTATE={}, wall-clock {wall_clock_s:.2} s)",
        path.display(),
        qn_exec::threads(),
        StateRep::from_env().as_str(),
    );
}
