//! **Figure 8** — average request latency on the A0-B0 circuit when 1–8
//! simultaneous requests (each for `QNP_PAIRS` pairs) are issued across
//! 1, 2 or 4 circuits sharing the dumbbell bottleneck, under the long
//! (a–c) and short (d–f) cutoff policies.
//!
//! Paper shapes to reproduce:
//! * (a,b,d,e): latency grows **linearly** with the number of requests;
//! * (c): 4 circuits + long cutoff ⇒ "quantum congestion collapse"
//!   (latency blows up / requests stall);
//! * (f): the short cutoff restores linear scaling with 4 circuits;
//! * short cutoff lowers latency overall (relaxed link fidelities).
//!
//! Run: `cargo bench --bench fig8_multiplexing`
//! (knobs: `QNP_RUNS` default 3, `QNP_PAIRS` default 40 — the paper uses
//! 100 runs × 100 pairs; reduced defaults preserve the shapes —
//! `QNP_THREADS` sweep workers).

use qn_bench::{fig8_sweep, mean_finite, pairs, runs, seed_block, Baseline, Direction};
use qn_routing::CutoffPolicy;
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let n_pairs = pairs(40);
    let horizon = SimDuration::from_secs(240);
    let fidelities = [0.9, 0.8];
    let seeds = seed_block(1000, n_runs);

    println!("# Figure 8 — circuit multiplexing latency (runs={n_runs}, pairs/request={n_pairs})");
    let panels: [(&str, usize, CutoffPolicy); 6] = [
        ("a: 1 circuit,  long cutoff", 1, CutoffPolicy::long()),
        ("b: 2 circuits, long cutoff", 2, CutoffPolicy::long()),
        ("c: 4 circuits, long cutoff", 4, CutoffPolicy::long()),
        ("d: 1 circuit,  short cutoff", 1, CutoffPolicy::short()),
        ("e: 2 circuits, short cutoff", 2, CutoffPolicy::short()),
        ("f: 4 circuits, short cutoff", 4, CutoffPolicy::short()),
    ];

    let mut baseline = Baseline::new("fig8_multiplexing")
        .config_num("runs", n_runs as f64)
        .config_num("pairs_per_request", n_pairs as f64)
        .config_num("horizon_s", horizon.as_secs_f64())
        .direction("mean_latency_s_f09", Direction::LowerIsBetter)
        .direction("mean_latency_s_f08", Direction::LowerIsBetter)
        .direction("completed", Direction::HigherIsBetter)
        .direction("issued", Direction::Informational);

    // For the linearity check on panels a/b/d/e.
    let mut panel_latencies: Vec<Vec<f64>> = Vec::new();

    for (label, n_circuits, cutoff) in panels {
        println!("#\n# panel {label}");
        println!("# requests   mean_latency_s(F=0.9)   mean_latency_s(F=0.8)   completed");
        let panel_key = &label[..1];
        let mut lat_f09 = Vec::new();
        for n_requests in 1..=8usize {
            let mut row = Vec::new();
            let mut completed = (0usize, 0usize);
            for f in fidelities {
                let points =
                    fig8_sweep(&seeds, n_circuits, n_requests, n_pairs, f, cutoff, horizon);
                let mean = mean_finite(points.iter().map(|p| p.mean_latency));
                row.push(mean);
                completed = (
                    points.iter().map(|p| p.completed).sum(),
                    points.iter().map(|p| p.issued).sum(),
                );
            }
            println!(
                "{n_requests:9}   {:>21.3}   {:>21.3}   {}/{}",
                row[0], row[1], completed.0, completed.1
            );
            baseline.point(
                format!("panel={panel_key}/requests={n_requests}"),
                &[
                    ("mean_latency_s_f09", row[0]),
                    ("mean_latency_s_f08", row[1]),
                    ("completed", completed.0 as f64),
                    ("issued", completed.1 as f64),
                ],
            );
            lat_f09.push(row[0]);
        }
        panel_latencies.push(lat_f09);
    }

    // Shape checks.
    println!("#\n# shape checks");
    // Linearity on panels a (idx 0) and d (idx 3): latency(8) ≈ 8×latency(1).
    for (panel, idx) in [("a", 0usize), ("d", 3)] {
        let l1 = panel_latencies[idx][0];
        let l8 = panel_latencies[idx][7];
        let ratio = l8 / l1;
        let ok = (4.0..14.0).contains(&ratio);
        println!(
            "# panel {panel}: latency(8 req)/latency(1 req) = {ratio:.1} (expect ≈8, linear) {}",
            if ok { "PASS" } else { "WARN" }
        );
    }
    // Short cutoff beats long cutoff for the single-circuit case.
    let faster = panel_latencies[3][7] < panel_latencies[0][7];
    println!(
        "# short cutoff lowers latency (panel d vs a at 8 requests): {}",
        if faster { "PASS" } else { "WARN" }
    );
    // Congestion: panel c's latency at 8 requests exceeds panel f's.
    let c8 = panel_latencies[2][7];
    let f8 = panel_latencies[5][7];
    let collapse = !c8.is_finite() || c8 > 1.5 * f8;
    println!(
        "# 4-circuit congestion (panel c {c8:.1}s vs f {f8:.1}s at 8 requests): {}",
        if collapse { "PASS" } else { "WARN" }
    );

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
