//! TRACK retransmission and wire-signalling recovery: the bounded,
//! deterministically-backed-off retransmit machinery that makes the
//! QNP's confirmation plane survive a lossy classical network, and the
//! pins proving it costs nothing when switched off.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_netsim::{ClassicalFaults, RetransmitConfig};
use qn_routing::{chain, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

fn trajectory(sim: &NetSim) -> Vec<(u64, u32, u64, u64)> {
    sim.app()
        .deliveries
        .iter()
        .map(|d| (d.time.as_ps(), d.node.0, d.request.0, d.sequence))
        .collect()
}

fn wired_run(
    seed: u64,
    faults: ClassicalFaults,
    retransmit: Option<RetransmitConfig>,
    n: u64,
) -> NetSim {
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut b = NetworkBuilder::new(topology)
        .seed(seed)
        .signalling_on_wire()
        .classical_faults(faults)
        .track_timeout(SimDuration::from_secs(2));
    if let Some(r) = retransmit {
        b = b.retransmit(r);
    }
    let mut sim = b.build();
    let (head, tail) = (NodeId(0), NodeId(3));
    let vc = sim
        .open_circuit(head, tail, 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, head, tail, 0.8, n));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    sim
}

#[test]
fn backoff_schedule_is_deterministic_per_seed() {
    // The retransmit backoff is a pure doubling of the configured base
    // — no RNG draw anywhere in the timer path — so under identical
    // drop faults the full retransmission schedule, and with it every
    // downstream delivery, replays bit-for-bit from the seed alone.
    let faults = ClassicalFaults {
        drop: 0.15,
        ..ClassicalFaults::OFF
    };
    let a = wired_run(501, faults, None, 5);
    let b = wired_run(501, faults, None, 5);
    assert!(
        a.classical_stats().track_retransmits + a.classical_stats().signal_retransmits > 0,
        "no retransmissions sampled: {:?}",
        a.classical_stats()
    );
    assert_eq!(trajectory(&a), trajectory(&b));
    assert_eq!(a.classical_stats(), b.classical_stats());
    assert_eq!(a.node_stats(), b.node_stats());
    assert_eq!(a.events_processed(), b.events_processed());
    // A different seed samples different drops and a different
    // retransmission history.
    let c = wired_run(502, faults, None, 5);
    assert_ne!(trajectory(&a), trajectory(&c));
}

#[test]
fn duplicate_tracks_are_absorbed_and_reacked() {
    // 50% duplication on the wire: TRACKs (and their retransmissions)
    // arrive multiply at the far end. The receiver must absorb the
    // copies — a bounded request still confirms exactly n pairs per
    // end — while re-acking each duplicate so a sender whose ack was
    // the lost frame still converges.
    let faults = ClassicalFaults {
        duplicate: 0.5,
        reorder_window: SimDuration::from_millis(1),
        ..ClassicalFaults::OFF
    };
    let sim = wired_run(601, faults, None, 4);
    let s = sim.classical_stats();
    assert!(s.duplicated > 0, "no duplicates sampled");
    let app = sim.app();
    assert!(app
        .completed
        .contains_key(&(qn_net::CircuitId(1), RequestId(1))));
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(qn_net::CircuitId(1), node, SimTime::ZERO, SimTime::MAX),
            4,
            "{node}: duplicated TRACKs changed the confirmed count"
        );
    }
    // Every endpoint TRACK copy drew an ack: with duplication the plane
    // acked more often than the minimum one-per-pair.
    assert!(
        s.track_acks > 8,
        "duplicate TRACKs must be re-acked, got {} acks",
        s.track_acks
    );
    let ns = sim.node_stats();
    assert!(
        ns.total() > 0,
        "duplication should surface as absorbed anomalies: {ns:?}"
    );
}

#[test]
fn retransmit_bounds_are_configurable_and_exhaustion_is_counted() {
    // A hostile plane (60% drops) with a deliberately tight retry
    // budget: some retransmit chains must exhaust their attempts and be
    // abandoned — counted, never looping forever — while the run stays
    // deterministic and panic-free.
    let faults = ClassicalFaults {
        drop: 0.6,
        ..ClassicalFaults::OFF
    };
    let tight = RetransmitConfig {
        max_retries: 1,
        base: SimDuration::from_millis(5),
    };
    let a = wired_run(701, faults, Some(tight), 4);
    let b = wired_run(701, faults, Some(tight), 4);
    assert_eq!(trajectory(&a), trajectory(&b));
    assert_eq!(a.classical_stats(), b.classical_stats());
    let s = a.classical_stats();
    assert!(
        s.retransmits_abandoned > 0,
        "60% drops with one retry must abandon some chains: {s:?}"
    );
    // Exactly-once still holds for whatever was confirmed.
    for node in [NodeId(0), NodeId(3)] {
        let confirmed =
            a.app()
                .confirmed_deliveries(qn_net::CircuitId(1), node, SimTime::ZERO, SimTime::MAX);
        assert!(confirmed <= 4, "{node}: over-delivery under exhaustion");
    }
}

#[test]
fn retransmit_config_without_the_knob_changes_nothing() {
    // Pin: `retransmit(..)` alone — without `signalling_on_wire` — must
    // not perturb a single RNG draw, event or delivery. This is the
    // bit-identity guarantee the committed baselines rely on.
    let run = |configure: bool| {
        let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
        let mut b = NetworkBuilder::new(topology).seed(4242);
        if configure {
            b = b.retransmit(RetransmitConfig {
                max_retries: 3,
                base: SimDuration::from_millis(1),
            });
        }
        let mut sim = b.build();
        let vc = sim
            .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(3), 0.8, 6));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(45));
        sim
    };
    let base = run(false);
    let cfgd = run(true);
    assert_eq!(trajectory(&base), trajectory(&cfgd));
    assert_eq!(base.events_processed(), cfgd.events_processed());
    assert_eq!(base.classical_stats(), cfgd.classical_stats());
    let s = cfgd.classical_stats();
    assert_eq!(
        s.track_retransmits
            + s.signal_retransmits
            + s.request_retransmits
            + s.track_acks
            + s.signal_acks,
        0,
        "wire machinery ran with the knob off"
    );
}
