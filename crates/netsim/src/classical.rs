//! The classical control plane: delay models, the reliable in-order
//! contract, and seeded fault injection.
//!
//! The paper (§4.1 "Classical communication and link reliability")
//! requires that "all control messages are transmitted reliably and in
//! order", provided in practice by per-hop TCP/QUIC connections. This
//! module models that contract — and, behind [`ClassicalFaults`], its
//! *violation*, so the protocol's behaviour on a degraded plane can be
//! stress-tested (the robustness question early-network designs pose):
//!
//! * per-hop delay = fibre propagation + processing (+ the injectable
//!   extra delay of Fig 10c, + optional jitter);
//! * **in-order delivery per direction of each hop** even when jitter
//!   would reorder packets — exactly what a reliable byte stream gives:
//!   a delayed early message holds back later ones;
//! * [`ClassicalPlane`]: every message travels as *encoded bytes*
//!   (`qn_net::wire`) and can be dropped, duplicated, reordered or
//!   bit-corrupted with seeded, per-run-deterministic probabilities.
//!   With faults off ([`ClassicalFaults::OFF`], the default) the plane
//!   is a bit-identical pass-through of the reliable contract: no extra
//!   RNG draws, no extra latency, byte-equal payloads.
//!
//! The plane **batches**: frames crossing the same directed hop in the
//! same lane toward the same delivery tick coalesce into one
//! length-prefixed BATCH frame (`qn_net::wire::batch_begin`). Each
//! [`transmit`] call reports at most the *newly opened* batches
//! ([`BatchOpen`]) — the runtime schedules exactly one delivery event
//! per batch and drains it with [`take_batch`], so a burst of
//! same-tick signalling costs one event and one demux pass instead of
//! one per message. Frame order within a batch is append order and
//! batch delivery times come from the same clamp as before, so
//! delivery order and fault semantics are preserved exactly.
//!
//! [`transmit`]: ClassicalPlane::transmit
//! [`take_batch`]: ClassicalPlane::take_batch

use qn_net::wire::{batch_append, batch_begin};
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};
use std::collections::HashMap;

/// Delay model of one hop.
#[derive(Clone, Copy, Debug)]
pub struct ChannelModel {
    /// Fibre propagation delay.
    pub propagation: SimDuration,
    /// Fixed processing delay at the receiver.
    pub processing: SimDuration,
    /// Injected extra delay (the Fig 10c sweep knob).
    pub extra: SimDuration,
    /// Uniform jitter bound: each message gains `U[0, jitter)` of extra
    /// latency (the reliable stream still delivers in order).
    pub jitter: SimDuration,
}

impl ChannelModel {
    /// Sample the raw latency of one message.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        let base = self.propagation + self.processing + self.extra;
        if self.jitter == SimDuration::ZERO {
            base
        } else {
            base + SimDuration::from_ps(rng.below(self.jitter.as_ps().max(1)))
        }
    }
}

/// Enforces the reliable in-order contract across all directed node
/// pairs: delivery times per `(from, to)` are monotonically
/// non-decreasing, whatever the sampled latencies.
#[derive(Default)]
pub struct ReliableDelivery {
    last_delivery: HashMap<(NodeId, NodeId), SimTime>,
}

impl ReliableDelivery {
    /// New tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the delivery time of a message sent `from → to` at `now`
    /// with the given sampled latency, clamped so it never undercuts a
    /// previously scheduled delivery on the same directed hop (a reliable
    /// stream cannot reorder).
    pub fn schedule(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        latency: SimDuration,
    ) -> SimTime {
        let natural = now + latency;
        let entry = self
            .last_delivery
            .entry((from, to))
            .or_insert(SimTime::ZERO);
        let at = natural.max(*entry);
        *entry = at;
        at
    }
}

/// Fault-injection knobs for the classical plane. All probabilities are
/// per message; the default ([`ClassicalFaults::OFF`]) disables every
/// fault, making the plane a bit-identical pass-through.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassicalFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a second, byte-identical copy is delivered (after an
    /// extra `U[0, reorder_window)` of latency).
    pub duplicate: f64,
    /// Probability a message bypasses the in-order clamp and gains an
    /// extra `U[0, reorder_window)` of latency — a datagram overtaken
    /// by its successors.
    pub reorder: f64,
    /// Extra-latency bound for duplicated and reordered copies.
    pub reorder_window: SimDuration,
    /// Probability one uniformly-chosen bit of the encoded frame is
    /// flipped. Corrupted frames may fail to decode (counted and
    /// dropped at the receiver) or decode into a *different valid
    /// message* the protocol must absorb.
    pub corrupt: f64,
}

impl ClassicalFaults {
    /// No faults: the reliable in-order plane of the paper.
    pub const OFF: ClassicalFaults = ClassicalFaults {
        drop: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_window: SimDuration::ZERO,
        corrupt: 0.0,
    };

    /// Whether any fault class is active.
    pub fn enabled(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.reorder > 0.0 || self.corrupt > 0.0
    }

    /// Check all probabilities are in `[0, 1]`, and that fault classes
    /// needing a latency window actually have one: `duplicate` or
    /// `reorder` above zero with `reorder_window == 0` would silently
    /// degenerate (duplicates coalesce with their primary, reordered
    /// frames gain no latency and stay in order).
    pub fn validate(&self) -> Result<(), &'static str> {
        for p in [self.drop, self.duplicate, self.reorder, self.corrupt] {
            if !(0.0..=1.0).contains(&p) {
                return Err("fault probabilities must be within [0, 1]");
            }
        }
        if (self.duplicate > 0.0 || self.reorder > 0.0) && self.reorder_window == SimDuration::ZERO
        {
            return Err(
                "duplicate/reorder faults require a non-zero reorder_window \
                 (a zero window silently degenerates to in-order, coalesced delivery)",
            );
        }
        Ok(())
    }
}

impl Default for ClassicalFaults {
    fn default() -> Self {
        ClassicalFaults::OFF
    }
}

/// Counters describing what the classical plane did to the traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassicalStats {
    /// Frames submitted for transmission.
    pub sent: u64,
    /// Delivery events scheduled (≥ sent − dropped; duplicates add).
    pub delivered: u64,
    /// Frames silently lost.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Frames exempted from the in-order clamp.
    pub reordered: u64,
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Delivered frames the receiver could not decode (dropped there;
    /// incremented by the runtime, not by [`ClassicalPlane`]).
    pub decode_failures: u64,
    /// [`ClassicalStats::decode_failures`] broken down by the *observed*
    /// kind byte of the undecodable frame: indices 0..=4 are the data
    /// kinds FORWARD, COMPLETE, TRACK, EXPIRE, TRACK_ACK
    /// (`qn_net::wire::KIND_FORWARD..=KIND_TRACK_ACK`); index 5 collects
    /// frames whose kind byte itself was corrupted (or missing). Sums to
    /// the total.
    pub decode_failures_by_kind: [u64; 6],
    /// Link-plane (PAIR_READY/REQUEST_DONE/REJECTED) frames the receiver
    /// could not decode (runtime-incremented, `signalling_on_wire` only).
    pub link_decode_failures: u64,
    /// [`ClassicalStats::link_decode_failures`] by observed kind:
    /// indices 0..=2 are PAIR_READY, REQUEST_DONE, REJECTED
    /// (`qn_net::wire::KIND_LINK_PAIR_READY..=KIND_LINK_REJECTED`);
    /// index 3 collects anything else. Sums to the total.
    pub link_decode_failures_by_kind: [u64; 4],
    /// Routing-plane (INSTALL/TEARDOWN and acks) frames the receiver
    /// could not decode (runtime-incremented, `signalling_on_wire` only).
    pub signal_decode_failures: u64,
    /// TRACKs re-sent by the origin end-node's retransmit timer.
    pub track_retransmits: u64,
    /// TRACK_ACKs emitted by consuming end-nodes.
    pub track_acks: u64,
    /// INSTALL/TEARDOWN frames re-sent by a hop's retransmit timer.
    pub signal_retransmits: u64,
    /// INSTALL_ACK/TEARDOWN_ACK frames emitted by receiving hops.
    pub signal_acks: u64,
    /// Redundant copies of request-level messages (FORWARD/COMPLETE)
    /// sent over a lossy wire: the fan-out is one-shot in the protocol,
    /// so on a plane that can lose frames the runtime re-sends these
    /// idempotent messages on a bounded deterministic backoff instead
    /// of adding an ack channel the paper doesn't have.
    pub request_retransmits: u64,
    /// Retransmission timers abandoned after exhausting their retry
    /// budget (the chain is left to the track-timeout / a later replan).
    pub retransmits_abandoned: u64,
    /// Total encoded payload bytes submitted.
    pub wire_bytes: u64,
    /// Batch frames opened (= delivery events scheduled).
    pub batches: u64,
    /// Payload bytes that rode along in an already-open batch — traffic
    /// that did not cost its own delivery event.
    pub bytes_coalesced: u64,
}

impl ClassicalStats {
    /// Mean frames per batch delivery event.
    pub fn frames_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.delivered as f64 / self.batches as f64
        }
    }

    /// Count one undecodable data-plane frame, bucketed by its observed
    /// kind byte (`None` when the frame was too short to carry one).
    pub fn count_decode_failure(&mut self, kind: Option<u8>) {
        self.decode_failures += 1;
        let i = match kind {
            Some(k) if (qn_net::wire::KIND_FORWARD..=qn_net::wire::KIND_TRACK_ACK).contains(&k) => {
                (k - qn_net::wire::KIND_FORWARD) as usize
            }
            _ => 5,
        };
        self.decode_failures_by_kind[i] += 1;
    }

    /// Count one undecodable link-plane frame, bucketed by its observed
    /// kind byte.
    pub fn count_link_decode_failure(&mut self, kind: Option<u8>) {
        self.link_decode_failures += 1;
        let i = match kind {
            Some(k)
                if (qn_net::wire::KIND_LINK_PAIR_READY..=qn_net::wire::KIND_LINK_REJECTED)
                    .contains(&k) =>
            {
                (k - qn_net::wire::KIND_LINK_PAIR_READY) as usize
            }
            _ => 3,
        };
        self.link_decode_failures_by_kind[i] += 1;
    }
}

/// Handle of an open (scheduled but not yet drained) batch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BatchId(pub u64);

/// A batch newly opened by a [`ClassicalPlane::transmit`] call: the
/// runtime schedules exactly one delivery event per `BatchOpen` and
/// drains it with [`ClassicalPlane::take_batch`] when the event fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchOpen {
    /// The batch to drain.
    pub id: BatchId,
    /// When its frames arrive at the receiver.
    pub at: SimTime,
}

struct OpenBatch {
    key: (NodeId, NodeId, bool, SimTime),
    buf: Vec<u8>,
}

/// The classical plane: the reliable in-order transport plus optional
/// seeded fault injection, operating on encoded frames and coalescing
/// them into per-(hop, lane, tick) batches.
///
/// Fault sampling uses its **own** RNG substream, so enabling faults
/// never perturbs the latency/jitter draws — and the faults-off path
/// makes *zero* fault draws, keeping default runs bit-identical to the
/// plain reliable transport.
pub struct ClassicalPlane {
    transport: ReliableDelivery,
    faults: ClassicalFaults,
    rng_faults: SimRng,
    /// Traffic counters.
    pub stats: ClassicalStats,
    open_by_key: HashMap<(NodeId, NodeId, bool, SimTime), u64>,
    open: HashMap<u64, OpenBatch>,
    next_batch: u64,
    /// Drained batch buffers waiting for reuse.
    pool: Vec<Vec<u8>>,
    /// Copy-on-corrupt buffer (the caller's frame may live in a shared
    /// encode scratch and must not be mutated in place).
    fault_scratch: Vec<u8>,
}

impl ClassicalPlane {
    /// A plane with the given fault config, drawing fault decisions from
    /// the dedicated `"classical-faults"` substream of `seed`.
    pub fn new(seed: u64, faults: ClassicalFaults) -> Self {
        ClassicalPlane {
            transport: ReliableDelivery::new(),
            faults,
            rng_faults: SimRng::substream(seed, "classical-faults"),
            stats: ClassicalStats::default(),
            open_by_key: HashMap::new(),
            open: HashMap::new(),
            next_batch: 0,
            pool: Vec::new(),
            fault_scratch: Vec::new(),
        }
    }

    /// The active fault config.
    pub fn faults(&self) -> &ClassicalFaults {
        &self.faults
    }

    /// Transmit one encoded frame `from → to` at `now` over `channel`,
    /// sampling latency from `rng_latency` (the caller's message RNG, so
    /// the draw sequence matches the pre-fault-plane runtime exactly).
    ///
    /// `lane` discriminates independent sub-streams of the same directed
    /// hop (the runtime uses the upstream/downstream orientation), so a
    /// whole batch can be demuxed with one flag at the receiver.
    ///
    /// The frame is appended to the open batch for its `(hop, lane,
    /// delivery tick)` or a new batch is opened; the return value lists
    /// the batches *opened by this call* (primary and, under faults, a
    /// duplicate landing on a different tick) — zero entries means the
    /// frame was dropped or coalesced into already-scheduled batches.
    pub fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        lane: bool,
        now: SimTime,
        channel: &ChannelModel,
        rng_latency: &mut SimRng,
        frame: &[u8],
    ) -> [Option<BatchOpen>; 2] {
        let faults = self.faults;
        self.transmit_with(faults, from, to, lane, now, channel, rng_latency, frame)
    }

    /// [`ClassicalPlane::transmit`] with an explicit fault model for
    /// this frame's hop (per-link fault overrides). Draws come from the
    /// same single `classical-faults` substream in the same order, so
    /// passing the plane's own config is exactly `transmit`.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit_with(
        &mut self,
        faults: ClassicalFaults,
        from: NodeId,
        to: NodeId,
        lane: bool,
        now: SimTime,
        channel: &ChannelModel,
        rng_latency: &mut SimRng,
        frame: &[u8],
    ) -> [Option<BatchOpen>; 2] {
        self.stats.sent += 1;
        self.stats.wire_bytes += frame.len() as u64;
        let latency = channel.sample_latency(rng_latency);
        if !faults.enabled() {
            // Pass-through: identical draws, clamping and timing as the
            // plain reliable transport.
            let at = self.transport.schedule(from, to, now, latency);
            self.stats.delivered += 1;
            return [self.append(from, to, lane, at, frame), None];
        }

        // Fault draws in a fixed order (drop, corrupt, reorder,
        // duplicate) so a run is a pure function of (seed, config).
        if faults.drop > 0.0 && self.rng_faults.bernoulli(faults.drop) {
            self.stats.dropped += 1;
            return [None, None];
        }
        let mut work = std::mem::take(&mut self.fault_scratch);
        work.clear();
        work.extend_from_slice(frame);
        if faults.corrupt > 0.0 && self.rng_faults.bernoulli(faults.corrupt) {
            if !work.is_empty() {
                let bit = self.rng_faults.below(work.len() as u64 * 8);
                work[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.stats.corrupted += 1;
            }
        }
        let reordered = faults.reorder > 0.0 && self.rng_faults.bernoulli(faults.reorder);
        let primary_at = if reordered {
            // A datagram that escaped the stream: it neither respects
            // nor advances the in-order clamp, and gains extra latency
            // so later sends can overtake it.
            self.stats.reordered += 1;
            now + latency + self.extra_delay(faults.reorder_window)
        } else {
            self.transport.schedule(from, to, now, latency)
        };
        let first = self.append(from, to, lane, primary_at, &work);
        self.stats.delivered += 1;
        let mut second = None;
        if faults.duplicate > 0.0 && self.rng_faults.bernoulli(faults.duplicate) {
            self.stats.duplicated += 1;
            let dup_at = primary_at + self.extra_delay(faults.reorder_window);
            second = self.append(from, to, lane, dup_at, &work);
            self.stats.delivered += 1;
        }
        self.fault_scratch = work;
        [first, second]
    }

    /// Remove an open batch and hand its encoded bytes to the receiver.
    /// The id is single-use: later frames toward the same `(hop, lane,
    /// tick)` open a fresh batch, so a drained batch can never grow.
    pub fn take_batch(&mut self, id: BatchId) -> Option<Vec<u8>> {
        let open = self.open.remove(&id.0)?;
        self.open_by_key.remove(&open.key);
        Some(open.buf)
    }

    /// Return a drained batch buffer for reuse by later batches.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.pool.len() < 32 {
            buf.clear();
            self.pool.push(buf);
        }
    }

    fn append(
        &mut self,
        from: NodeId,
        to: NodeId,
        lane: bool,
        at: SimTime,
        frame: &[u8],
    ) -> Option<BatchOpen> {
        let key = (from, to, lane, at);
        if let Some(&id) = self.open_by_key.get(&key) {
            let open = self.open.get_mut(&id).expect("open batch for key");
            batch_append(&mut open.buf, frame);
            self.stats.bytes_coalesced += frame.len() as u64;
            None
        } else {
            let id = self.next_batch;
            self.next_batch += 1;
            let mut buf = self.pool.pop().unwrap_or_default();
            batch_begin(&mut buf);
            batch_append(&mut buf, frame);
            self.open_by_key.insert(key, id);
            self.open.insert(id, OpenBatch { key, buf });
            self.stats.batches += 1;
            Some(BatchOpen {
                id: BatchId(id),
                at,
            })
        }
    }

    fn extra_delay(&mut self, reorder_window: SimDuration) -> SimDuration {
        let window = reorder_window.as_ps();
        if window == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.rng_faults.below(window))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(jitter_us: u64) -> ChannelModel {
        ChannelModel {
            propagation: SimDuration::from_nanos(10),
            processing: SimDuration::from_micros(5),
            extra: SimDuration::ZERO,
            jitter: SimDuration::from_micros(jitter_us),
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = model(0);
        let mut rng = SimRng::from_seed(1);
        let a = m.sample_latency(&mut rng);
        let b = m.sample_latency(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a, SimDuration::from_nanos(10) + SimDuration::from_micros(5));
    }

    #[test]
    fn jitter_varies_but_is_bounded() {
        let m = model(50);
        let mut rng = SimRng::from_seed(2);
        let base = SimDuration::from_nanos(10) + SimDuration::from_micros(5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let l = m.sample_latency(&mut rng);
            assert!(l >= base);
            assert!(l < base + SimDuration::from_micros(50));
            distinct.insert(l.as_ps());
        }
        assert!(distinct.len() > 10, "jitter should vary");
    }

    #[test]
    fn in_order_delivery_under_reordering_latencies() {
        let mut r = ReliableDelivery::new();
        let (a, b) = (NodeId(0), NodeId(1));
        // First message is slow; the second would naturally overtake it.
        let t1 = r.schedule(a, b, SimTime::from_ps(0), SimDuration::from_micros(100));
        let t2 = r.schedule(a, b, SimTime::from_ps(1), SimDuration::from_micros(1));
        assert!(t2 >= t1, "reliable stream must not reorder: {t2} < {t1}");
    }

    #[test]
    fn directions_and_hops_are_independent() {
        let mut r = ReliableDelivery::new();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let slow = r.schedule(a, b, SimTime::ZERO, SimDuration::from_millis(10));
        // Reverse direction is not held back.
        let rev = r.schedule(b, a, SimTime::ZERO, SimDuration::from_micros(1));
        assert!(rev < slow);
        // A different hop is not held back.
        let other = r.schedule(b, c, SimTime::ZERO, SimDuration::from_micros(1));
        assert!(other < slow);
    }

    /// Drain every batch opened by one transmit call, returning each as
    /// `(delivery time, inner frames)`.
    fn drain(
        plane: &mut ClassicalPlane,
        opened: [Option<BatchOpen>; 2],
    ) -> Vec<(SimTime, Vec<Vec<u8>>)> {
        let mut out = Vec::new();
        for b in opened.into_iter().flatten() {
            let buf = plane.take_batch(b.id).expect("opened batch");
            out.push((
                b.at,
                qn_net::wire::decode_batch(&buf).expect("plane-built batch"),
            ));
            plane.recycle(buf);
        }
        out
    }

    #[test]
    fn faults_off_is_a_pass_through() {
        // Same seed, same channel: the plane with faults off must
        // schedule byte-identical deliveries at identical times to the
        // bare ReliableDelivery, from the same latency RNG stream.
        let m = model(50);
        let (a, b) = (NodeId(0), NodeId(1));
        let mut bare = ReliableDelivery::new();
        let mut bare_rng = SimRng::from_seed(9);
        let mut plane = ClassicalPlane::new(123, ClassicalFaults::OFF);
        let mut plane_rng = SimRng::from_seed(9);
        for i in 0..200u64 {
            let now = SimTime::from_ps(i * 1000);
            let expect = bare.schedule(a, b, now, m.sample_latency(&mut bare_rng));
            let opened = plane.transmit(a, b, false, now, &m, &mut plane_rng, &[i as u8]);
            let got = drain(&mut plane, opened);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, expect);
            assert_eq!(got[0].1, vec![vec![i as u8]]);
        }
        assert_eq!(plane.stats.sent, 200);
        assert_eq!(plane.stats.delivered, 200);
        assert_eq!(plane.stats.batches, 200);
        assert_eq!(plane.stats.bytes_coalesced, 0);
        assert_eq!(plane.stats.dropped + plane.stats.corrupted, 0);
    }

    #[test]
    fn same_tick_frames_coalesce_into_one_batch() {
        let m = model(0); // deterministic latency: same tick per send time
        let (a, b) = (NodeId(0), NodeId(1));
        let mut plane = ClassicalPlane::new(1, ClassicalFaults::OFF);
        let mut rng = SimRng::from_seed(1);
        let now = SimTime::ZERO;
        let open =
            plane.transmit(a, b, false, now, &m, &mut rng, b"one")[0].expect("first send opens");
        for f in [b"two".as_slice(), b"three"] {
            assert_eq!(
                plane.transmit(a, b, false, now, &m, &mut rng, f),
                [None, None],
                "same (hop, lane, tick) must coalesce"
            );
        }
        // A different lane or hop opens its own batch.
        assert!(plane.transmit(a, b, true, now, &m, &mut rng, b"x")[0].is_some());
        assert!(plane.transmit(b, a, false, now, &m, &mut rng, b"y")[0].is_some());
        let buf = plane.take_batch(open.id).unwrap();
        assert_eq!(
            qn_net::wire::decode_batch(&buf).unwrap(),
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()],
            "append order is delivery order"
        );
        plane.recycle(buf);
        assert_eq!(plane.stats.batches, 3);
        assert_eq!(plane.stats.bytes_coalesced, 8); // "two" + "three"
                                                    // A drained id is single-use; the tick re-opens afterwards.
        assert!(plane.take_batch(open.id).is_none());
        assert!(plane.transmit(a, b, false, now, &m, &mut rng, b"z")[0].is_some());
    }

    #[test]
    fn duplicate_in_zero_window_coalesces_with_primary() {
        let faults = ClassicalFaults {
            duplicate: 1.0,
            ..ClassicalFaults::OFF
        };
        let m = model(0);
        let mut plane = ClassicalPlane::new(3, faults);
        let mut rng = SimRng::from_seed(3);
        let opened = plane.transmit(
            NodeId(0),
            NodeId(1),
            false,
            SimTime::ZERO,
            &m,
            &mut rng,
            b"dup",
        );
        // Zero reorder window: the copy lands on the same tick, hence in
        // the same batch.
        assert!(opened[0].is_some() && opened[1].is_none());
        let got = drain(&mut plane, opened);
        assert_eq!(got[0].1, vec![b"dup".to_vec(), b"dup".to_vec()]);
        assert_eq!(plane.stats.duplicated, 1);
        assert_eq!(plane.stats.delivered, 2);
        assert_eq!(plane.stats.frames_per_batch(), 2.0);
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let faults = ClassicalFaults {
            drop: 0.2,
            duplicate: 0.2,
            reorder: 0.3,
            reorder_window: SimDuration::from_micros(80),
            corrupt: 0.2,
        };
        let run = |seed: u64| {
            let m = model(0);
            let mut plane = ClassicalPlane::new(seed, faults);
            let mut rng = SimRng::from_seed(5);
            let mut log = Vec::new();
            for i in 0..300u64 {
                let now = SimTime::from_ps(i * 777);
                let opened = plane.transmit(
                    NodeId(0),
                    NodeId(1),
                    false,
                    now,
                    &m,
                    &mut rng,
                    &[i as u8, (i >> 8) as u8, 0xAB],
                );
                log.push(drain(&mut plane, opened));
            }
            (log, plane.stats)
        };
        let (l1, s1) = run(42);
        let (l2, s2) = run(42);
        assert_eq!(l1, l2);
        assert_eq!(s1, s2);
        let (l3, _) = run(43);
        assert_ne!(l1, l3, "different seeds should fault differently");
        assert!(s1.dropped > 0 && s1.duplicated > 0 && s1.corrupted > 0 && s1.reordered > 0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let faults = ClassicalFaults {
            corrupt: 1.0,
            ..ClassicalFaults::OFF
        };
        let m = model(0);
        let mut plane = ClassicalPlane::new(7, faults);
        let mut rng = SimRng::from_seed(7);
        let original = vec![0u8; 16];
        for _ in 0..50 {
            let opened = plane.transmit(
                NodeId(0),
                NodeId(1),
                false,
                SimTime::ZERO,
                &m,
                &mut rng,
                &original,
            );
            let got = drain(&mut plane, opened);
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].1.len(), 1);
            let flipped: u32 = got[0].1[0]
                .iter()
                .zip(&original)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1);
            // Corruption copies into a scratch; the caller's frame (a
            // shared encode buffer in the runtime) is untouched.
            assert!(original.iter().all(|&byte| byte == 0));
        }
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut f = ClassicalFaults::OFF;
        assert!(f.validate().is_ok());
        assert!(!f.enabled());
        f.drop = 1.5;
        assert!(f.validate().is_err());
        f.drop = 0.5;
        assert!(f.validate().is_ok());
        assert!(f.enabled());
    }

    #[test]
    fn validate_rejects_window_dependent_faults_without_a_window() {
        // duplicate/reorder with a zero window silently degenerate (the
        // copies coalesce / stay in order) — validate must reject them.
        for f in [
            ClassicalFaults {
                duplicate: 0.1,
                ..ClassicalFaults::OFF
            },
            ClassicalFaults {
                reorder: 0.1,
                ..ClassicalFaults::OFF
            },
        ] {
            let err = f.validate().unwrap_err();
            assert!(err.contains("reorder_window"), "undescriptive error: {err}");
            // The same knobs with a window are fine.
            assert!(ClassicalFaults {
                reorder_window: SimDuration::from_micros(10),
                ..f
            }
            .validate()
            .is_ok());
        }
        // drop/corrupt alone need no window.
        assert!(ClassicalFaults {
            drop: 0.3,
            corrupt: 0.2,
            ..ClassicalFaults::OFF
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn monotone_across_many_messages() {
        let mut r = ReliableDelivery::new();
        let mut rng = SimRng::from_seed(3);
        let m = model(200);
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            now += SimDuration::from_micros(i % 7);
            let at = r.schedule(NodeId(0), NodeId(1), now, m.sample_latency(&mut rng));
            assert!(at >= last);
            last = at;
        }
    }
}
