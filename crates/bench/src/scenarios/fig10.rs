//! Fig 10 — robustness against decoherence.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::CircuitId;
use qn_netsim::build::NetworkBuilder;
use qn_routing::{dumbbell, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

/// Which Fig 10 protocol variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig10Variant {
    /// The QNP with its cutoff mechanism.
    Cutoff,
    /// The "simpler protocol": no cutoffs in the network; end-to-end
    /// pairs below the fidelity threshold are discarded using the
    /// simulation oracle (physically impossible outside a simulator).
    OracleBaseline,
}

/// Result of one Fig 10a,b configuration: per-circuit throughput.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Point {
    /// Throughput of the F=0.9 circuit (pairs/s counted at the head).
    pub thr_f09: f64,
    /// Throughput of the F=0.8 circuit.
    pub thr_f08: f64,
}

/// Fig 10a,b: two circuits (A0-B0 at F=0.9, A1-B1 at F=0.8) with
/// long-running requests sharing the bottleneck; run 20 s of simulated
/// time at the given memory lifetime and report throughput.
///
/// For the cutoff variant every confirmed delivery counts (the cutoff is
/// the fidelity guarantee); the oracle baseline counts only deliveries
/// whose true fidelity clears the circuit threshold.
pub fn fig10ab_scenario(seed: u64, t2: f64, variant: Fig10Variant) -> Fig10Point {
    let params = HardwareParams::simulation().with_electron_t2(t2);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut builder = NetworkBuilder::new(topology).seed(seed);
    if variant == Fig10Variant::OracleBaseline {
        builder = builder.disable_cutoff();
    }
    let mut sim = builder.build();
    let horizon = SimDuration::from_secs(20);
    let mut thr = [0.0f64; 2];
    let configs = [(d.a0, d.b0, 0.9), (d.a1, d.b1, 0.8)];
    let mut vcs = Vec::new();
    for (i, (h, t, f)) in configs.iter().enumerate() {
        match sim.open_circuit(*h, *t, *f, CutoffPolicy::long()) {
            Ok(vc) => {
                sim.submit_at(
                    SimTime::ZERO,
                    vc,
                    keep_request(i as u64 + 1, *h, *t, *f, u64::MAX / 2),
                );
                vcs.push(Some(vc));
            }
            Err(_) => vcs.push(None), // unattainable at this T2: zero throughput
        }
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    for (i, (_, _, f)) in configs.iter().enumerate() {
        if let Some(vc) = vcs[i] {
            let head = configs[i].0;
            let count = match variant {
                Fig10Variant::Cutoff => {
                    app.confirmed_deliveries(vc, head, SimTime::ZERO, SimTime::MAX)
                }
                Fig10Variant::OracleBaseline => {
                    app.good_deliveries(vc, head, *f, SimTime::ZERO, SimTime::MAX)
                }
            };
            thr[i] = count as f64 / horizon.as_secs_f64();
        }
    }
    Fig10Point {
        thr_f09: thr[0],
        thr_f08: thr[1],
    }
}

/// Result of one Fig 10c configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig10cPoint {
    /// Raw delivered throughput of the two circuits (F=0.9, F=0.8).
    pub raw: [f64; 2],
    /// Above-threshold ("useful") throughput of the two circuits.
    pub good: [f64; 2],
    /// The cutoff the routing assigned (the dashed line of Fig 10c).
    pub cutoff_s: f64,
}

/// Fig 10c: throughput vs injected classical message delay at
/// T2* ≈ 1.6 s.
pub fn fig10c_scenario(seed: u64, extra_delay: SimDuration) -> Fig10cPoint {
    let params = HardwareParams::simulation().with_electron_t2(1.6);
    let (topology, d) = dumbbell(params, FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .extra_message_delay(extra_delay)
        .build();
    let horizon = SimDuration::from_secs(20);
    let configs = [(d.a0, d.b0, 0.9), (d.a1, d.b1, 0.8)];
    let mut raw = [0.0; 2];
    let mut good = [0.0; 2];
    let mut cutoff_s = f64::NAN;
    // Keep the ids `open_circuit` actually hands back — reconstructing
    // them by assumption would silently read the wrong circuit's stats
    // if id allocation ever changed.
    let mut vcs: Vec<Option<CircuitId>> = Vec::new();
    for (i, (h, t, f)) in configs.iter().enumerate() {
        match sim.open_circuit(*h, *t, *f, CutoffPolicy::long()) {
            Ok(vc) => {
                cutoff_s = sim
                    .installed(vc)
                    .map(|inst| inst.plan.cutoff.as_secs_f64())
                    .unwrap_or(f64::NAN);
                sim.submit_at(
                    SimTime::ZERO,
                    vc,
                    keep_request(i as u64 + 1, *h, *t, *f, u64::MAX / 2),
                );
                vcs.push(Some(vc));
            }
            Err(_) => vcs.push(None), // infeasible: zero throughput
        }
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    for (i, (h, _, f)) in configs.iter().enumerate() {
        if let Some(vc) = vcs[i] {
            raw[i] = app.confirmed_deliveries(vc, *h, SimTime::ZERO, SimTime::MAX) as f64
                / horizon.as_secs_f64();
            good[i] = app.good_deliveries(vc, *h, *f, SimTime::ZERO, SimTime::MAX) as f64
                / horizon.as_secs_f64();
        }
    }
    Fig10cPoint {
        raw,
        good,
        cutoff_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_point_produces_throughput() {
        let p = fig10ab_scenario(1, 60.0, Fig10Variant::Cutoff);
        assert!(p.thr_f09 > 0.0);
        assert!(p.thr_f08 > p.thr_f09, "lower fidelity circuit is faster");
    }

    #[test]
    fn fig10c_zero_delay_has_useful_throughput() {
        let p = fig10c_scenario(1, SimDuration::ZERO);
        assert!(p.cutoff_s.is_finite() && p.cutoff_s > 0.0);
        assert!(p.raw[0] > 0.0, "F=0.9 circuit must deliver at zero delay");
        assert!(p.good[0] <= p.raw[0], "useful cannot exceed raw");
    }
}
