//! Open-world workload engine: sustained, randomised traffic over a
//! configurable topology, as opposed to the figures' closed scripted
//! scenarios.
//!
//! Circuits *arrive* (Poisson or diurnally-modulated Poisson), live a
//! heavy-tailed (Pareto) lifetime, carry a heavy-tailed-sized KEEP
//! request, and are torn down — the steady-state churn regime the
//! slab-backed [`qn_hardware::PairStore`] and the runtime's dense
//! per-node/per-link tables are built for. Runs use the periodic
//! decoherence checkpoint ([`CheckpointPolicy::Interval`]) so the
//! whole-store `advance_all` sweep is part of the measured hot path.
//!
//! Like every scenario, [`openworld_scenario`] is a pure function of
//! `(seed, config)`: the workload schedule is precomputed from its own
//! RNG substream before the simulation starts, so the reported
//! simulation-domain metrics (events per *simulated* second, requests
//! per simulated second) are bit-identical across repeats, thread
//! counts and machines — they are gated at `--tolerance 0` in CI.
//! Wall-clock throughput is reported separately by the bench target as
//! non-diffed metadata.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::app::Payload;
use qn_netsim::build::NetworkBuilder;
use qn_netsim::CheckpointPolicy;
use qn_routing::{chain, grid, wide_dumbbell, CutoffPolicy, Topology};
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};

/// Topology the open-world traffic runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwTopology {
    /// A linear chain of `n` nodes.
    Chain {
        /// Node count (≥ 2).
        n: usize,
    },
    /// A widened Fig 7 dumbbell: `width` end-nodes per side sharing the
    /// MA–MB bottleneck.
    WideDumbbell {
        /// End-nodes per side (≥ 1).
        width: usize,
    },
    /// A `w × h` grid (row-major dense node ids).
    Grid {
        /// Grid width.
        w: usize,
        /// Grid height.
        h: usize,
    },
}

/// The circuit arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OwArrivals {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Mean arrival rate (circuits per simulated second).
        rate_hz: f64,
    },
    /// Diurnally modulated Poisson: instantaneous rate
    /// `rate_hz * (1 + depth * sin(2πt / period))`, sampled by
    /// thinning against the peak rate. `depth` in `[0, 1)`.
    Diurnal {
        /// Mean arrival rate (circuits per simulated second).
        rate_hz: f64,
        /// Modulation depth in `[0, 1)`.
        depth: f64,
        /// Modulation period.
        period: SimDuration,
    },
}

/// Full configuration of one open-world run.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenWorldConfig {
    /// Topology to run over.
    pub topology: OwTopology,
    /// Circuit arrival process.
    pub arrivals: OwArrivals,
    /// Hard cap on admitted arrivals (the arrival budget; CI smoke runs
    /// use a small fixed budget).
    pub max_arrivals: usize,
    /// Mean circuit lifetime; actual lifetimes are Pareto(α = 1.5)
    /// with this mean (heavy-tailed: a few circuits live very long).
    pub mean_lifetime: SimDuration,
    /// Cap on pairs per request; sizes are Pareto(α = 1.5) floored to
    /// an integer and clamped to `[1, max_pairs]`.
    pub max_pairs: u64,
    /// End-to-end fidelity target for every circuit.
    pub fidelity: f64,
    /// Simulated horizon; the run always ends here.
    pub horizon: SimDuration,
    /// Periodic decoherence checkpoint interval (`None` = the lazy
    /// on-touch default).
    pub checkpoint: Option<SimDuration>,
}

impl OpenWorldConfig {
    /// A small fixed-budget configuration suitable for CI smoke runs:
    /// 60 simulated seconds, at most `budget` arrivals, checkpoint
    /// sweep every 250 ms.
    pub fn smoke(topology: OwTopology, arrivals: OwArrivals, budget: usize) -> Self {
        OpenWorldConfig {
            topology,
            arrivals,
            max_arrivals: budget,
            mean_lifetime: SimDuration::from_secs(12),
            max_pairs: 6,
            fidelity: 0.8,
            horizon: SimDuration::from_secs(60),
            checkpoint: Some(SimDuration::from_millis(250)),
        }
    }
}

/// Deterministic results of one open-world run. Every field is a pure
/// function of `(seed, config)` — no wall-clock anywhere.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenWorldPoint {
    /// Circuits admitted (planned and installed).
    pub circuits_admitted: usize,
    /// Arrivals the controller could not plan at the fidelity target.
    pub plan_failures: usize,
    /// Requests that completed before the horizon.
    pub requests_completed: usize,
    /// Confirmed end-to-end pairs delivered (both ends confirmed).
    pub pairs_delivered: usize,
    /// Simulation events processed.
    pub events_processed: u64,
    /// Events per *simulated* second (deterministic).
    pub events_per_sim_sec: f64,
    /// Completed requests per simulated second (deterministic).
    pub requests_per_sim_sec: f64,
    /// Confirmed pairs per simulated second (deterministic).
    pub pairs_per_sim_sec: f64,
}

/// One precomputed circuit arrival.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    at: SimTime,
    head: NodeId,
    tail: NodeId,
    n_pairs: u64,
    lifetime: SimDuration,
}

/// Pareto(α) sample with scale `xm` (support `[xm, ∞)`). For α > 1 the
/// mean is `xm · α / (α − 1)`.
fn pareto(rng: &mut SimRng, xm: f64, alpha: f64) -> f64 {
    xm / (1.0 - rng.f64()).powf(1.0 / alpha)
}

/// The deterministic candidate endpoint pairs for a topology: a small
/// set mixing path lengths, so concurrent circuits contend for shared
/// links.
fn endpoint_candidates(topology: OwTopology) -> Vec<(NodeId, NodeId)> {
    match topology {
        OwTopology::Chain { n } => {
            let last = (n - 1) as u32;
            let mid = last / 2;
            let mut c = vec![(NodeId(0), NodeId(last))];
            if mid > 0 && mid < last {
                c.push((NodeId(0), NodeId(mid)));
                c.push((NodeId(mid), NodeId(last)));
            }
            c
        }
        OwTopology::WideDumbbell { width } => {
            let w = width as u32;
            // Straight-across pairs (Ai, Bi): every circuit crosses the
            // MA-MB bottleneck.
            (0..w).map(|i| (NodeId(i), NodeId(w + 2 + i))).collect()
        }
        OwTopology::Grid { w, h } => {
            let (w, h) = (w as u32, h as u32);
            let id = |x: u32, y: u32| NodeId(y * w + x);
            vec![
                // The two diagonals plus a horizontal mid-row crossing:
                // all route through the grid interior.
                (id(0, 0), id(w - 1, h - 1)),
                (id(w - 1, 0), id(0, h - 1)),
                (id(0, h / 2), id(w - 1, h / 2)),
            ]
        }
    }
}

/// Build the topology for a config.
fn build_topology(topology: OwTopology) -> Topology {
    let (p, f) = (HardwareParams::simulation(), FibreParams::lab_2m());
    match topology {
        OwTopology::Chain { n } => chain(n, p, f),
        OwTopology::WideDumbbell { width } => wide_dumbbell(width, p, f).0,
        OwTopology::Grid { w, h } => grid(w, h, p, f),
    }
}

/// Precompute the whole arrival schedule from the workload's own RNG
/// substream. Doing this before the simulation starts keeps the
/// workload independent of the simulation's internal draws, so the
/// schedule — and therefore every simulation-domain metric — is a pure
/// function of `(seed, config)`.
fn arrival_schedule(seed: u64, cfg: &OpenWorldConfig) -> Vec<Arrival> {
    let candidates = endpoint_candidates(cfg.topology);
    let mut rng = SimRng::substream_indexed(seed, "openworld", 0);
    let horizon_s = cfg.horizon.as_secs_f64();
    // α = 1.5 ⇒ mean = 3·xm, so xm = mean / 3.
    let lifetime_xm = cfg.mean_lifetime.as_secs_f64() / 3.0;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    while out.len() < cfg.max_arrivals {
        match cfg.arrivals {
            OwArrivals::Poisson { rate_hz } => t += rng.exponential(rate_hz),
            OwArrivals::Diurnal {
                rate_hz,
                depth,
                period,
            } => {
                // Thinning: candidate events at the peak rate, accepted
                // with probability λ(t)/λ_peak.
                let peak = rate_hz * (1.0 + depth);
                loop {
                    t += rng.exponential(peak);
                    let phase = t / period.as_secs_f64() * std::f64::consts::TAU;
                    let lambda = rate_hz * (1.0 + depth * phase.sin());
                    if t >= horizon_s || rng.f64() < lambda / peak {
                        break;
                    }
                }
            }
        }
        if t >= horizon_s {
            break;
        }
        let (head, tail) = candidates[rng.below(candidates.len() as u64) as usize];
        let n_pairs = (pareto(&mut rng, 1.0, 1.5).floor() as u64).clamp(1, cfg.max_pairs);
        let lifetime = pareto(&mut rng, lifetime_xm, 1.5);
        out.push(Arrival {
            at: SimTime::ZERO + SimDuration::from_secs_f64(t),
            head,
            tail,
            n_pairs,
            lifetime: SimDuration::from_secs_f64(lifetime),
        });
    }
    out
}

/// One open-world run: install circuits as they arrive, submit their
/// requests, tear them down when their lifetime expires, stop at the
/// horizon.
pub fn openworld_scenario(seed: u64, cfg: &OpenWorldConfig) -> OpenWorldPoint {
    let schedule = arrival_schedule(seed, cfg);
    let mut builder = NetworkBuilder::new(build_topology(cfg.topology)).seed(seed);
    if let Some(dt) = cfg.checkpoint {
        builder = builder.checkpoint(CheckpointPolicy::Interval(dt));
    }
    let mut sim = builder.build();
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut admitted = 0usize;
    let mut failures = 0usize;
    let mut next_request = 1u64;
    for a in &schedule {
        // Advance to the arrival so the circuit is installed at its
        // arrival time (installation is immediate; only the protocol
        // runs through events).
        sim.run_until(a.at);
        match sim.open_circuit(a.head, a.tail, cfg.fidelity, CutoffPolicy::short()) {
            Ok(vc) => {
                admitted += 1;
                sim.submit_at(
                    a.at,
                    vc,
                    keep_request(next_request, a.head, a.tail, cfg.fidelity, a.n_pairs),
                );
                next_request += 1;
                let close = a.at + a.lifetime;
                if close < horizon {
                    sim.close_circuit_at(close, vc);
                }
            }
            Err(_) => failures += 1,
        }
    }
    sim.run_until(horizon);

    let app = sim.app();
    let requests_completed = app.completed.len();
    // A confirmed pair produces one confirmed delivery at each end
    // (Qubit directly, or EarlyQubit later confirmed by EarlyTracking).
    let confirmed_ends = app
        .deliveries
        .iter()
        .filter(|d| {
            matches!(
                d.payload,
                Payload::Qubit { .. } | Payload::EarlyTracking { .. }
            )
        })
        .count();
    let sim_secs = cfg.horizon.as_secs_f64();
    let events_processed = sim.events_processed();
    OpenWorldPoint {
        circuits_admitted: admitted,
        plan_failures: failures,
        requests_completed,
        pairs_delivered: confirmed_ends / 2,
        events_processed,
        events_per_sim_sec: events_processed as f64 / sim_secs,
        requests_per_sim_sec: requests_completed as f64 / sim_secs,
        pairs_per_sim_sec: (confirmed_ends / 2) as f64 / sim_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> OpenWorldConfig {
        OpenWorldConfig::smoke(
            OwTopology::Chain { n: 3 },
            OwArrivals::Poisson { rate_hz: 0.3 },
            8,
        )
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let cfg = smoke_cfg();
        let a = arrival_schedule(42, &cfg);
        let b = arrival_schedule(42, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!((x.head, x.tail), (y.head, y.tail));
            assert_eq!(x.n_pairs, y.n_pairs);
            assert_eq!(x.lifetime, y.lifetime);
        }
        assert!(a.len() <= cfg.max_arrivals);
        let horizon = SimTime::ZERO + cfg.horizon;
        for x in &a {
            assert!(x.at < horizon);
            assert!(x.n_pairs >= 1 && x.n_pairs <= cfg.max_pairs);
        }
    }

    #[test]
    fn diurnal_schedule_respects_budget_and_horizon() {
        let cfg = OpenWorldConfig::smoke(
            OwTopology::Chain { n: 3 },
            OwArrivals::Diurnal {
                rate_hz: 0.5,
                depth: 0.8,
                period: SimDuration::from_secs(20),
            },
            10,
        );
        let a = arrival_schedule(7, &cfg);
        assert!(a.len() <= 10);
        for w in a.windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals must be time-ordered");
        }
    }

    #[test]
    fn scenario_runs_and_delivers() {
        let cfg = smoke_cfg();
        let p = openworld_scenario(42, &cfg);
        assert!(p.circuits_admitted > 0, "workload must admit circuits");
        assert!(p.events_processed > 0);
        assert!(
            p.requests_completed > 0,
            "some request must complete: {p:?}"
        );
        assert!(p.pairs_delivered >= p.requests_completed);
    }

    #[test]
    fn scenario_is_deterministic() {
        let cfg = OpenWorldConfig::smoke(
            OwTopology::Grid { w: 3, h: 2 },
            OwArrivals::Poisson { rate_hz: 0.3 },
            6,
        );
        assert_eq!(openworld_scenario(9, &cfg), openworld_scenario(9, &cfg));
    }

    #[test]
    fn candidates_cover_all_topologies() {
        assert_eq!(endpoint_candidates(OwTopology::Chain { n: 2 }).len(), 1);
        assert_eq!(endpoint_candidates(OwTopology::Chain { n: 5 }).len(), 3);
        assert_eq!(
            endpoint_candidates(OwTopology::WideDumbbell { width: 3 }).len(),
            3
        );
        let g = endpoint_candidates(OwTopology::Grid { w: 3, h: 3 });
        assert_eq!(g.len(), 3);
        for (a, b) in g {
            assert_ne!(a, b);
        }
    }
}
