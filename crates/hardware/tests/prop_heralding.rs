//! Property tests for the single-click heralding model and the pair
//! store's physical invariants.

use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::pairs::{PairStore, SwapNoise};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};

fn lab() -> LinkPhysics {
    LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rate–fidelity trade-off is a genuine trade-off: on the
    /// operating branch, raising alpha raises the success probability
    /// and lowers the fidelity, monotonically.
    #[test]
    fn alpha_tradeoff_is_monotone(a in 0.01f64..0.45, delta in 0.01f64..0.05) {
        let physics = lab();
        let (_, alpha_peak) = physics.max_fidelity();
        prop_assume!(a >= alpha_peak);
        let b = (a + delta).min(0.5);
        prop_assert!(physics.success_prob(b) > physics.success_prob(a));
        prop_assert!(physics.fidelity(b) <= physics.fidelity(a) + 1e-12);
    }

    /// `alpha_for_fidelity` is a right inverse of `fidelity` wherever it
    /// succeeds, and it always returns the *fastest* compliant alpha
    /// (any higher alpha violates the target).
    #[test]
    fn alpha_for_fidelity_is_tight(target in 0.75f64..0.97) {
        let physics = lab();
        if let Some(alpha) = physics.alpha_for_fidelity(target) {
            prop_assert!(physics.fidelity(alpha) >= target - 1e-6);
            if alpha < 0.5 {
                let above = (alpha * 1.05).min(0.5);
                prop_assert!(
                    physics.fidelity(above) < target + 1e-6,
                    "a faster alpha also satisfies the target — not tight"
                );
            }
        }
    }

    /// Heralded states are valid density matrices for any alpha, and
    /// their fidelity matches the analytic expression.
    #[test]
    fn heralded_states_are_valid(alpha in 0.005f64..0.5, minus in any::<bool>()) {
        let physics = lab();
        let announced = if minus { BellState::PSI_MINUS } else { BellState::PSI_PLUS };
        let rho = physics.heralded_state(alpha, announced);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        let f = rho.fidelity_pure(&announced.amplitudes());
        prop_assert!((f - physics.fidelity(alpha)).abs() < 1e-9);
    }

    /// Pair-store physical invariants under random idle/swap sequences:
    /// trace stays 1, fidelity stays in [0,1] and never *increases* from
    /// idling.
    #[test]
    fn decoherence_never_raises_fidelity(
        t2 in 0.1f64..10.0,
        waits_ms in proptest::collection::vec(1u64..2000, 1..8),
    ) {
        let mut store = PairStore::new();
        let id = store.create(
            SimTime::ZERO,
            BellState::PHI_PLUS.density(),
            BellState::PHI_PLUS,
            [
                (NodeId(0), QubitId(0), 3600.0, t2),
                (NodeId(1), QubitId(0), 3600.0, t2),
            ],
        );
        let mut now = SimTime::ZERO;
        let mut last_f = 1.0;
        for w in waits_ms {
            now += SimDuration::from_millis(w);
            let f = store.fidelity_to(id, BellState::PHI_PLUS, now);
            prop_assert!(f <= last_f + 1e-9, "idling increased fidelity: {f} > {last_f}");
            prop_assert!((0.0..=1.0).contains(&f));
            let pair = store.get(id).unwrap();
            prop_assert!((pair.state().trace() - 1.0).abs() < 1e-6);
            last_f = f;
        }
    }

    /// Random chains of noisy swaps keep valid states and the announced
    /// Bell state tracks the physical state's dominant component while
    /// fidelity stays above the mistracking floor.
    #[test]
    fn random_swap_chains_stay_physical(seed in 0u64..500, n_links in 2usize..5) {
        let params = HardwareParams::simulation();
        let noise = SwapNoise::from_params(&params);
        let mut rng = SimRng::from_seed(seed);
        let mut store = PairStore::new();
        let mut pairs = Vec::new();
        for i in 0..n_links {
            let announced = if rng.bernoulli(0.5) { BellState::PSI_PLUS } else { BellState::PSI_MINUS };
            let mut state = BellState::PHI_PLUS.density();
            let corr = BellState::PHI_PLUS.correction_to(announced);
            if corr != qn_quantum::Pauli::I {
                state.apply_unitary(&corr.matrix(), &[1]);
            }
            pairs.push(store.create(
                SimTime::ZERO,
                state,
                announced,
                [
                    (NodeId(i as u32), QubitId(1), 3600.0, 60.0),
                    (NodeId(i as u32 + 1), QubitId(0), 3600.0, 60.0),
                ],
            ));
        }
        // Swap left to right.
        let mut current = pairs[0];
        for (i, next) in pairs.iter().enumerate().skip(1) {
            let res = store.swap(current, *next, NodeId(i as u32), SimTime::ZERO, &noise, &mut rng);
            current = res.new_pair;
        }
        let pair = store.get(current).unwrap();
        prop_assert!((pair.state().trace() - 1.0).abs() < 1e-6);
        let announced = pair.announced;
        let f = store.fidelity_to(current, announced, SimTime::ZERO);
        // With 0.998 gates and 0.998 readout over ≤3 swaps, the announced
        // state should almost always be the dominant component.
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
