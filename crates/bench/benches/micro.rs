//! Criterion micro-benchmarks of the core data structures: the event
//! queue, the density-matrix operations behind every entanglement swap,
//! the heralded-state construction, the link scheduler, the Bell
//! tracking algebra, the quantum kernel's two pair-state
//! representations side by side (`*_bell` vs `*_dm`), and the classical
//! plane's wire codec and delivery paths (`message_parse`,
//! `zero_copy_vs_owned_decode/*`, `encode_scratch_vs_alloc/*`,
//! `batch_vs_single_delivery/*`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qn_hardware::device::QubitId;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::pairs::{PairStore, SwapNoise};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_hardware::StateRep;
use qn_link::{LinkLabel, TimeShareScheduler};
use qn_net::wire::{batch_append, batch_begin, BatchView, ScratchEncoder};
use qn_net::{
    CircuitId, Complete, Correlator, Epoch, Expire, Forward, Message, MessageView, RequestId,
    RequestType, Track,
};
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_quantum::measure::bell_measure_ideal;
use qn_quantum::pairstate::PairState;
use qn_sim::{EventQueue, NodeId, SimDuration, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.push(SimTime::from_ps(i * 37 % 500), i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_density_matrix(c: &mut Criterion) {
    c.bench_function("ideal_bell_measurement_4q", |b| {
        let joint = BellState::PHI_PLUS
            .density()
            .tensor(&BellState::PSI_PLUS.density());
        b.iter(|| bell_measure_ideal(&joint, 1, 2, 0.3));
    });

    c.bench_function("noisy_swap_full_pipeline", |b| {
        // One persistent store (the in-run shape: conditional-map
        // tables amortise across swaps); pairs recreated per iteration
        // because the swap consumes them. Runs on the `QNP_QSTATE`
        // default representation.
        let params = HardwareParams::simulation();
        let noise = SwapNoise::from_params(&params);
        let mut store = PairStore::new();
        let mut rng = SimRng::from_seed(7);
        b.iter(|| {
            let mut mk = |na: u32, nb: u32, qa: u32, qb: u32| {
                store.create(
                    SimTime::ZERO,
                    BellState::PSI_PLUS.density(),
                    BellState::PSI_PLUS,
                    [
                        (NodeId(na), QubitId(qa), 3600.0, 60.0),
                        (NodeId(nb), QubitId(qb), 3600.0, 60.0),
                    ],
                )
            };
            let a = mk(0, 1, 0, 0);
            let b_ = mk(1, 2, 1, 0);
            let res = store.swap(
                a,
                b_,
                NodeId(1),
                SimTime::ZERO + SimDuration::from_micros(500),
                &noise,
                &mut rng,
            );
            store.discard(res.new_pair);
        });
    });

    c.bench_function("heralded_state_construction", |b| {
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        b.iter(|| physics.heralded_state(0.05, BellState::PSI_PLUS));
    });
}

/// The same four pair-level operations under both `QNP_QSTATE`
/// representations: single-qubit gate application, the two-qubit
/// depolarizing channel, the full noisy entanglement swap, and one
/// BBPSSW distillation round. Stores persist across iterations so the
/// Bell path's cached conditional-map tables amortise, exactly as they
/// do inside a simulation run.
fn bench_pair_representations(c: &mut Criterion) {
    let params = HardwareParams::simulation();
    let noise = SwapNoise::from_params(&params);
    for rep in [StateRep::Bell, StateRep::Dm] {
        let tag = rep.as_str();

        c.bench_function(&format!("pair_gate_apply_{tag}"), |b| {
            let mut state = PairState::from_density(BellState::PSI_PLUS.density(), rep);
            b.iter(|| {
                state.apply_pauli(0, Pauli::X);
                state.apply_pauli(1, Pauli::Z);
            });
        });

        c.bench_function(&format!("pair_kraus_2q_{tag}"), |b| {
            let mut state = PairState::from_density(BellState::PSI_PLUS.density(), rep);
            b.iter(|| state.depolarize_2q(1e-3));
        });

        c.bench_function(&format!("pair_swap_{tag}"), |b| {
            let mut store = PairStore::with_rep(rep);
            let mut rng = SimRng::from_seed(7);
            let t_done = SimTime::ZERO + SimDuration::from_micros(500);
            b.iter(|| {
                let mut mk = |na: u32, nb: u32, qa: u32, qb: u32| {
                    store.create(
                        SimTime::ZERO,
                        BellState::PSI_PLUS.density(),
                        BellState::PSI_PLUS,
                        [
                            (NodeId(na), QubitId(qa), 3600.0, 60.0),
                            (NodeId(nb), QubitId(qb), 3600.0, 60.0),
                        ],
                    )
                };
                let a = mk(0, 1, 0, 0);
                let b_ = mk(1, 2, 1, 0);
                let res = store.swap(a, b_, NodeId(1), t_done, &noise, &mut rng);
                store.discard(res.new_pair);
            });
        });

        c.bench_function(&format!("pair_distill_{tag}"), |b| {
            let mut store = PairStore::with_rep(rep);
            let mut rng = SimRng::from_seed(11);
            b.iter(|| {
                let mut mk = |q: u32| {
                    store.create(
                        SimTime::ZERO,
                        BellState::PHI_PLUS.density(),
                        BellState::PHI_PLUS,
                        [
                            (NodeId(0), QubitId(q), 3600.0, 60.0),
                            (NodeId(1), QubitId(q), 3600.0, 60.0),
                        ],
                    )
                };
                let keep = mk(0);
                let sac = mk(1);
                let res = store.distill(keep, sac, SimTime::ZERO, &noise, &mut rng);
                store.discard(res.kept);
            });
        });
    }
}

fn bench_link_scheduler(c: &mut Criterion) {
    c.bench_function("time_share_scheduler_4_labels", |b| {
        b.iter_batched(
            || {
                let mut s = TimeShareScheduler::new();
                for i in 0..4 {
                    s.add(LinkLabel(i), 1.0 + i as f64);
                }
                s
            },
            |mut s| {
                for _ in 0..100 {
                    let l = s.next().unwrap();
                    s.charge(l, SimDuration::from_micros(10));
                }
                s
            },
            BatchSize::SmallInput,
        );
    });
}

/// A representative mix of QNP data-plane messages: TRACKs dominate the
/// wire in a running network (one per link-pair per hop), with FORWARD /
/// COMPLETE / EXPIRE control traffic around them.
fn message_mix() -> Vec<Message> {
    let corr = |seq: u64| Correlator {
        node_a: NodeId(3),
        node_b: NodeId(4),
        seq,
    };
    let mut msgs = Vec::new();
    for i in 0..16u64 {
        msgs.push(Message::Track(Track {
            circuit: CircuitId(7),
            request: RequestId(i % 3),
            head_identifier: 0,
            tail_identifier: 1,
            origin: corr(i),
            link: corr(i + 100),
            outcome_state: BellState::from_index((i % 4) as usize),
            epoch: if i % 2 == 0 { Some(Epoch(i)) } else { None },
        }));
    }
    msgs.push(Message::Forward(Forward {
        circuit: CircuitId(7),
        request: RequestId(2),
        head_identifier: 0,
        tail_identifier: 1,
        request_type: RequestType::Keep,
        number_of_pairs: Some(8),
        final_state: Some(BellState::PHI_PLUS),
        rate: 125.0,
    }));
    msgs.push(Message::Complete(Complete {
        circuit: CircuitId(7),
        request: RequestId(2),
        head_identifier: 0,
        tail_identifier: 1,
        rate: 0.0,
    }));
    msgs.push(Message::Expire(Expire {
        circuit: CircuitId(7),
        origin: corr(9),
    }));
    msgs
}

/// The wire codec under the delivery-path access pattern: full owned
/// decode vs the borrowing view (parse + the fields the runtime's batch
/// drain actually touches before deciding to materialise).
fn bench_message_codec(c: &mut Criterion) {
    let msgs = message_mix();
    let frames: Vec<Vec<u8>> = msgs.iter().map(Message::wire_bytes).collect();

    c.bench_function("message_parse", |b| {
        // Full view parse plus the per-variant fields a dispatcher would
        // read (TRACK's continuation correlator) — still borrow-only.
        b.iter(|| {
            let mut acc = 0u64;
            for f in &frames {
                let v = MessageView::parse(f).unwrap();
                acc = acc.wrapping_add(v.circuit().0);
                if let MessageView::Track(t) = v {
                    acc = acc.wrapping_add(t.link().seq);
                }
            }
            acc
        });
    });

    c.bench_function("zero_copy_vs_owned_decode/owned", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for f in &frames {
                let m = Message::decode(f).unwrap();
                acc = acc.wrapping_add(m.circuit().0);
            }
            acc
        });
    });

    c.bench_function("zero_copy_vs_owned_decode/view", |b| {
        // The zero-copy access pattern: validate the whole frame, read
        // only the demux key, materialise nothing.
        b.iter(|| {
            let mut acc = 0u64;
            for f in &frames {
                let v = MessageView::parse(f).unwrap();
                acc = acc.wrapping_add(v.circuit().0);
            }
            acc
        });
    });

    c.bench_function("encode_scratch_vs_alloc/alloc", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for m in &msgs {
                bytes += m.wire_bytes().len();
            }
            bytes
        });
    });

    c.bench_function("encode_scratch_vs_alloc/scratch", |b| {
        let mut scratch = ScratchEncoder::new();
        b.iter(|| {
            let mut bytes = 0usize;
            for m in &msgs {
                bytes += scratch.message(m).len();
            }
            bytes
        });
    });
}

/// Frame delivery through the event loop: one event + one owned frame
/// per message (the pre-batching plane) vs one event per coalesced
/// batch drained through the borrowing view. Both paths end at the same
/// place — an owned `Message` handed to the protocol node.
fn bench_frame_delivery(c: &mut Criterion) {
    let frames: Vec<Vec<u8>> = message_mix().iter().map(Message::wire_bytes).collect();
    let mut batch = Vec::new();
    batch_begin(&mut batch);
    for f in &frames {
        batch_append(&mut batch, f);
    }

    c.bench_function("batch_vs_single_delivery/single", |b| {
        b.iter(|| {
            let mut q: EventQueue<Vec<u8>> = EventQueue::new();
            for (i, f) in frames.iter().enumerate() {
                q.push(SimTime::from_ps(i as u64), f.clone());
            }
            let mut acc = 0u64;
            while let Some((_, f)) = q.pop() {
                let m = Message::decode(&f).unwrap();
                acc = acc.wrapping_add(m.circuit().0);
            }
            acc
        });
    });

    c.bench_function("batch_vs_single_delivery/batched", |b| {
        b.iter(|| {
            let mut q: EventQueue<&[u8]> = EventQueue::new();
            q.push(SimTime::ZERO, batch.as_slice());
            let mut acc = 0u64;
            while let Some((_, buf)) = q.pop() {
                let view = BatchView::parse(buf).unwrap();
                for f in view.frames() {
                    let m = MessageView::parse(f).unwrap().to_message();
                    acc = acc.wrapping_add(m.circuit().0);
                }
            }
            acc
        });
    });
}

/// The pre-slab pair layout: one heap node per pair behind a
/// `HashMap<u64, _>`, iterated in hash order. Kept here as the
/// reference the slab store is benchmarked against — the decay math is
/// byte-for-byte the store's, so the measured difference is purely the
/// container (hashing on every id lookup, pointer-chasing iteration
/// vs indexed slots and cache-linear parallel arrays).
mod map_store {
    use qn_hardware::pairs::PairEnd;
    use qn_quantum::bell::BellState;
    use qn_quantum::channels;
    use qn_quantum::pairstate::BellDiagonal;
    use qn_quantum::pairstate::PairState;
    use qn_sim::{NodeId, SimTime};
    use std::collections::HashMap;

    pub struct MapPair {
        pub announced: BellState,
        pub ends: [PairEnd; 2],
        pub state: PairState,
    }

    pub struct MapStore {
        pub pairs: HashMap<u64, MapPair>,
        next: u64,
    }

    impl MapStore {
        pub fn new() -> Self {
            MapStore {
                pairs: HashMap::new(),
                next: 0,
            }
        }

        pub fn create(&mut self, now: SimTime, t1: f64, t2: f64) -> u64 {
            let id = self.next;
            self.next += 1;
            let end = |n: u32| PairEnd {
                node: NodeId(n),
                qubit: qn_hardware::device::QubitId(0),
                t1,
                t2,
                last_noise: now,
                measured: false,
            };
            self.pairs.insert(
                id,
                MapPair {
                    announced: BellState::PHI_PLUS,
                    ends: [end(0), end(1)],
                    state: PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS)),
                },
            );
            id
        }

        pub fn advance_all(&mut self, now: SimTime) {
            for p in self.pairs.values_mut() {
                for (idx, end) in p.ends.iter_mut().enumerate() {
                    if end.measured {
                        end.last_noise = now;
                        continue;
                    }
                    let dt = now.since(end.last_noise).as_secs_f64();
                    end.last_noise = now;
                    if dt <= 0.0 {
                        continue;
                    }
                    let gamma = channels::damping_prob(dt, end.t1);
                    if gamma > 0.0 {
                        p.state.amplitude_damp(idx, gamma);
                    }
                    let pd = channels::dephasing_prob(dt, end.t2);
                    if pd > 0.0 {
                        p.state.dephase(idx, pd);
                    }
                }
            }
        }
    }
}

/// The slab refactor's hot paths isolated against the pre-slab layout:
/// steady-state churn with id-heavy access (`slab_vs_map_lookup_churn`,
/// the sustained-traffic kernel) and the whole-store decoherence sweep
/// with real elapsed time (`slab_vs_map_decoherence_sweep`, where the
/// exponential decay math is shared by both sides and bounds the
/// attainable speedup).
fn bench_slab_store(c: &mut Criterion) {
    use qn_hardware::pairs::PairId;
    use qn_quantum::pairstate::BellDiagonal;

    const LIVE: usize = 256;
    const CHURN: usize = 32;
    let (t1, t2) = (3600.0, 60.0);
    let bell = || PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS));
    let mk_slab = || {
        let mut store = PairStore::with_rep(StateRep::Bell);
        let ids: Vec<PairId> = (0..LIVE)
            .map(|_| {
                store.create_pair(
                    SimTime::ZERO,
                    bell(),
                    BellState::PHI_PLUS,
                    [
                        (NodeId(0), QubitId(0), t1, t2),
                        (NodeId(1), QubitId(0), t1, t2),
                    ],
                )
            })
            .collect();
        (store, ids)
    };
    let mk_map = || {
        let mut store = map_store::MapStore::new();
        let ids: Vec<u64> = (0..LIVE)
            .map(|_| store.create(SimTime::ZERO, t1, t2))
            .collect();
        (store, ids)
    };

    // Sustained traffic: every live pair's handle is resolved several
    // times per protocol step (generation bookkeeping, swap operands,
    // cutoff checks, delivery — a dozen-odd lookups over a pair's life),
    // the store sweeps at the current time (no elapsed decay: the
    // common checkpoint-right-after-activity case), and the oldest
    // pairs churn out as fresh ones arrive.
    const LOOKUP_PASSES: usize = 8;
    c.bench_function("slab_vs_map_lookup_churn/map", |b| {
        let (mut store, ids) = mk_map();
        let mut ids: std::collections::VecDeque<u64> = ids.into();
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..LOOKUP_PASSES {
                for id in &ids {
                    acc += store.pairs.get(id).map_or(0, |p| p.announced.index());
                }
            }
            store.advance_all(SimTime::ZERO);
            for _ in 0..CHURN {
                let old = ids.pop_front().expect("ring is never empty");
                store.pairs.remove(&old);
                ids.push_back(store.create(SimTime::ZERO, t1, t2));
            }
            acc
        });
    });
    c.bench_function("slab_vs_map_lookup_churn/slab", |b| {
        let (mut store, ids) = mk_slab();
        let mut ids: std::collections::VecDeque<PairId> = ids.into();
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..LOOKUP_PASSES {
                for id in &ids {
                    acc += store.get(*id).map_or(0, |p| p.announced.index());
                }
            }
            store.advance_all(SimTime::ZERO);
            for _ in 0..CHURN {
                let old = ids.pop_front().expect("ring is never empty");
                store.discard(old);
                ids.push_back(store.create_pair(
                    SimTime::ZERO,
                    bell(),
                    BellState::PHI_PLUS,
                    [
                        (NodeId(0), QubitId(0), t1, t2),
                        (NodeId(1), QubitId(0), t1, t2),
                    ],
                ));
            }
            acc
        });
    });

    // The wired checkpoint sweep with genuinely elapsed time: both
    // sides pay the same per-pair exponentials, so this measures the
    // end-to-end sweep including math, not just container traversal.
    c.bench_function("slab_vs_map_decoherence_sweep/map", |b| {
        let (mut store, _ids) = mk_map();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_millis(1);
            store.advance_all(now);
        });
    });
    c.bench_function("slab_vs_map_decoherence_sweep/slab", |b| {
        let (mut store, _ids) = mk_slab();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_millis(1);
            store.advance_all(now);
        });
    });
}

/// The swap/distill conditional-table cache lookup: the sorted-Vec
/// binary-search cache that now backs `PairStore` vs the `HashMap` it
/// replaced, at a realistic cache population (a store accumulates a
/// handful of distinct `(t1-bits, t2-bits, outcome)` keys per run).
fn bench_table_cache(c: &mut Criterion) {
    use std::collections::HashMap;
    type Key = (u64, u64, u8);
    const KEYS: usize = 12;
    let keys: Vec<Key> = (0..KEYS as u64)
        .map(|i| {
            (
                (3600.0f64 + i as f64).to_bits(),
                (60.0f64 * (i + 1) as f64).to_bits(),
                (i % 4) as u8,
            )
        })
        .collect();
    // The lookup mix: tables hit in rotation, as link labels fire
    // round-robin under the time-share scheduler.
    let lookups: Vec<Key> = (0..256).map(|i| keys[i % KEYS]).collect();
    let payload = |k: &Key| vec![k.0 as f64; 16];

    c.bench_function("table_cache_lookup/hashmap", |b| {
        let map: HashMap<Key, Vec<f64>> = keys.iter().map(|k| (*k, payload(k))).collect();
        b.iter(|| {
            let mut acc = 0.0f64;
            for k in &lookups {
                acc += map.get(k).expect("cached")[0];
            }
            acc
        });
    });
    c.bench_function("table_cache_lookup/sorted_vec", |b| {
        let mut entries: Vec<(Key, Vec<f64>)> = keys.iter().map(|k| (*k, payload(k))).collect();
        entries.sort_by_key(|(k, _)| *k);
        b.iter(|| {
            let mut acc = 0.0f64;
            for k in &lookups {
                let i = entries.binary_search_by(|(e, _)| e.cmp(k)).expect("cached");
                acc += entries[i].1[0];
            }
            acc
        });
    });
}

fn bench_bell_algebra(c: &mut Criterion) {
    c.bench_function("bell_combine_chain_64", |b| {
        let states: Vec<BellState> = (0..64).map(|i| BellState::from_index(i % 4)).collect();
        b.iter(|| {
            let mut acc = BellState::PHI_PLUS;
            for (i, s) in states.iter().enumerate() {
                acc = acc.combine(*s, BellState::from_index((i * 7) % 4));
            }
            acc
        });
    });
}

/// The partitioned epoch executor: one conservative-lookahead workload
/// (cross-shard pings + local xorshift churn over 4 shards) run on the
/// serial reference and on the thread pool. Same code path the sharded
/// netsim verification mode accounts for; the parallel run is asserted
/// bit-identical to the serial one before timing starts.
fn bench_shard_scaling(c: &mut Criterion) {
    type ShardState = (u64, u64);

    fn churn(
        shard: usize,
        state: &mut ShardState,
        _now: SimTime,
        payload: u64,
        ctx: &mut qn_sim::shard::ShardCtx<'_, u64>,
    ) {
        for _ in 0..200 {
            state.0 ^= state.0 << 13;
            state.0 ^= state.0 >> 7;
            state.0 ^= state.0 << 17;
            state.0 = state.0.wrapping_add(payload);
        }
        state.1 += 1;
        if payload > 0 {
            ctx.send(
                (shard + 1) % ctx.n_shards(),
                SimDuration::from_ps(10),
                payload - 1,
            );
            if payload % 3 == 0 {
                ctx.schedule_in(SimDuration::from_ps(3), payload / 2);
            }
        }
    }

    fn seeds() -> (Vec<ShardState>, Vec<(usize, SimTime, u64)>) {
        let shards = (0..4).map(|i| (0x9e37u64 + i, 0)).collect();
        let initial = (0..4)
            .map(|i| (i as usize, SimTime::from_ps(i), 40 + i))
            .collect();
        (shards, initial)
    }

    let lookahead = SimDuration::from_ps(10);
    let (s, i) = seeds();
    let serial = qn_sim::shard::run_partitioned_serial(s, i, lookahead, SimTime::MAX, churn);
    let (s, i) = seeds();
    let parallel = qn_exec::run_partitioned(4, s, i, lookahead, SimTime::MAX, churn);
    assert_eq!(serial, parallel, "parallel epochs must be bit-identical");

    c.bench_function("shard_scaling/serial_1", |b| {
        b.iter_batched(
            seeds,
            |(s, i)| qn_sim::shard::run_partitioned_serial(s, i, lookahead, SimTime::MAX, churn),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("shard_scaling/threads_4", |b| {
        b.iter_batched(
            seeds,
            |(s, i)| qn_exec::run_partitioned(4, s, i, lookahead, SimTime::MAX, churn),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_density_matrix,
    bench_pair_representations,
    bench_link_scheduler,
    bench_message_codec,
    bench_frame_delivery,
    bench_slab_store,
    bench_table_cache,
    bench_bell_algebra,
    bench_shard_scaling
);
criterion_main!(benches);
