//! The QNP signalling wire format — a hand-rolled, versioned binary
//! codec for every message that crosses a classical channel.
//!
//! The paper specifies the protocol in terms of its messages (Appendix
//! C.2); this module pins their byte-level representation so the
//! simulated classical plane can transport *bytes* (and corrupt, drop,
//! duplicate or reorder them) instead of passing Rust values by magic.
//!
//! ## Frame layout
//!
//! Every frame starts with a fixed two-byte header:
//!
//! ```text
//! +---------+---------+----------------------+
//! | version |  kind   |  payload (fixed by   |
//! |  (u8)   |  (u8)   |  kind, little-endian)|
//! +---------+---------+----------------------+
//! ```
//!
//! One kind-byte registry covers all three signalling planes, so a
//! corrupted kind byte can never cross decode into the wrong plane:
//!
//! | range | plane | kinds |
//! |---|---|---|
//! | `0x01..=0x05` | QNP data plane ([`Message`]) | FORWARD, COMPLETE, TRACK, EXPIRE, TRACK_ACK |
//! | `0x10..=0x12` | link layer lifecycle ([`LinkEvent`]) | PAIR_READY, REQUEST_DONE, REJECTED |
//! | `0x20..=0x23` | routing signalling (`qn_routing::wire`) | INSTALL, TEARDOWN, INSTALL_ACK, TEARDOWN_ACK |
//! | `0x30` | transport framing | BATCH (coalesced length-prefixed frames) |
//!
//! ## Zero-copy views and batch frames
//!
//! The receive path decodes without allocating: [`MessageView`] borrows
//! the frame buffer, validates the full layout up front (identical
//! [`DecodeError`]s to [`Message::decode`], byte offset for byte
//! offset) and reads fields on demand straight out of the bytes. The
//! classical plane coalesces frames headed to the same `(hop, lane,
//! delivery tick)` into a BATCH frame — header, `count: u32`, then
//! `count` length-prefixed inner frames — built with
//! [`batch_begin`]/[`batch_append`] and drained through the borrowing
//! [`BatchView`]. The encode side reuses a per-plane [`ScratchEncoder`]
//! instead of allocating a fresh `Vec` per frame.
//!
//! ## Guarantees
//!
//! * **Exact round-trip**: `decode(encode(m)) == m`, including `f64`
//!   fields (encoded as IEEE-754 bit patterns, so NaN payloads and
//!   signed zeros survive byte-for-byte).
//! * **Total decoding**: `decode` never panics, whatever the input
//!   bytes — every failure is a typed [`DecodeError`]. The property
//!   suite in `crates/net/tests/prop_wire.rs` fuzzes this on arbitrary,
//!   truncated and bit-flipped inputs.
//! * **Exact consumption**: a top-level decode rejects trailing bytes
//!   ([`DecodeError::TrailingBytes`]), so frames cannot silently smuggle
//!   extra payload.

use crate::ids::{CircuitId, Epoch, RequestId};
use crate::messages::{Complete, Expire, Forward, Message, Track, TrackAck};
use crate::request::RequestType;
use crate::routing_table::{DownstreamHop, RoutingEntry, UpstreamHop};
use qn_link::{EntanglementId, LinkEvent, LinkLabel, LinkPair, RejectReason};
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::NodeId;
use qn_sim::SimDuration;
use std::fmt;

/// Wire format version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u8 = 1;

/// Kind byte of a FORWARD frame.
pub const KIND_FORWARD: u8 = 0x01;
/// Kind byte of a COMPLETE frame.
pub const KIND_COMPLETE: u8 = 0x02;
/// Kind byte of a TRACK frame.
pub const KIND_TRACK: u8 = 0x03;
/// Kind byte of an EXPIRE frame.
pub const KIND_EXPIRE: u8 = 0x04;
/// Kind byte of a TRACK_ACK frame (retransmitting runtimes only).
pub const KIND_TRACK_ACK: u8 = 0x05;
/// Kind byte of a link-layer PAIR_READY frame.
pub const KIND_LINK_PAIR_READY: u8 = 0x10;
/// Kind byte of a link-layer REQUEST_DONE frame.
pub const KIND_LINK_REQUEST_DONE: u8 = 0x11;
/// Kind byte of a link-layer REJECTED frame.
pub const KIND_LINK_REJECTED: u8 = 0x12;
/// Kind byte of a routing-signalling INSTALL frame (`qn_routing::wire`).
pub const KIND_SIGNAL_INSTALL: u8 = 0x20;
/// Kind byte of a routing-signalling TEARDOWN frame (`qn_routing::wire`).
pub const KIND_SIGNAL_TEARDOWN: u8 = 0x21;
/// Kind byte of a routing-signalling INSTALL_ACK frame (`qn_routing::wire`).
pub const KIND_SIGNAL_INSTALL_ACK: u8 = 0x22;
/// Kind byte of a routing-signalling TEARDOWN_ACK frame (`qn_routing::wire`).
pub const KIND_SIGNAL_TEARDOWN_ACK: u8 = 0x23;
/// Kind byte of a transport BATCH frame (coalesced inner frames).
pub const KIND_BATCH: u8 = 0x30;

/// A typed decoding failure. Decoding is *total*: arbitrary input bytes
/// produce one of these, never a panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input ended before the field at byte offset `at` could be
    /// read in full.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// The version byte does not match [`WIRE_VERSION`].
    BadVersion(u8),
    /// The kind byte is not assigned (or belongs to a different
    /// signalling plane than the one being decoded).
    UnknownKind(u8),
    /// A tag byte held a value outside its enum's range.
    BadTag {
        /// The field whose tag was invalid.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The frame decoded successfully but input bytes remain.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "input truncated at byte {at}"),
            DecodeError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            DecodeError::UnknownKind(k) => write!(f, "unknown message kind byte {k:#04x}"),
            DecodeError::BadTag { field, value } => {
                write!(f, "invalid tag byte {value:#04x} for field `{field}`")
            }
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete frame")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Low-level primitives
// ---------------------------------------------------------------------

/// Append-only encoder over a byte buffer. All integers are
/// little-endian.
pub struct WireWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> WireWriter<'a> {
    /// Write into `buf` (appending).
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        WireWriter { buf }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact, including
    /// NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an option: tag byte `0`/`1`, then the value if present.
    pub fn put_opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                f(self, x);
            }
        }
    }
}

/// Cursor-based decoder over a byte slice. Every read is total; failures
/// are reported as [`DecodeError`] with the byte offset.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Unconsumed bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole input was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Borrow the next `n` bytes without copying (the slice outlives the
    /// reader — it borrows the underlying frame buffer).
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Advance past `n` bytes without reading them.
    pub fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        self.take(n).map(|_| ())
    }

    /// Advance past a run of fixed-size fields with one fused bounds
    /// check. On truncation the reported offset is the start of the
    /// *first field that does not fit* — identical to reading the fields
    /// one by one.
    pub fn skip_fields(&mut self, sizes: &[usize]) -> Result<(), DecodeError> {
        let total: usize = sizes.iter().sum();
        if self.remaining() >= total {
            self.pos += total;
            return Ok(());
        }
        for &n in sizes {
            self.skip(n)?;
        }
        unreachable!("skip_fields: slow path must have failed");
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern (total: every bit pattern is a
    /// valid `f64`).
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an option written by [`WireWriter::put_opt`].
    pub fn get_opt<T>(
        &mut self,
        field: &'static str,
        f: impl FnOnce(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            value => Err(DecodeError::BadTag { field, value }),
        }
    }
}

// ---------------------------------------------------------------------
// Field codecs shared by the three planes
// ---------------------------------------------------------------------

/// A type with a fixed wire representation.
pub trait Wire: Sized {
    /// Append this value's encoding.
    fn encode(&self, w: &mut WireWriter<'_>);
    /// Decode one value from the cursor.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError>;
}

impl Wire for CircuitId {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(CircuitId(r.get_u64()?))
    }
}

impl Wire for RequestId {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(RequestId(r.get_u64()?))
    }
}

impl Wire for Epoch {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(Epoch(r.get_u64()?))
    }
}

impl Wire for NodeId {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(r.get_u32()?))
    }
}

impl Wire for LinkLabel {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(LinkLabel(r.get_u32()?))
    }
}

impl Wire for EntanglementId {
    fn encode(&self, w: &mut WireWriter<'_>) {
        self.node_a.encode(w);
        self.node_b.encode(w);
        w.put_u64(self.seq);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(EntanglementId {
            node_a: NodeId::decode(r)?,
            node_b: NodeId::decode(r)?,
            seq: r.get_u64()?,
        })
    }
}

impl Wire for BellState {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u8(self.index() as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            idx @ 0..=3 => Ok(BellState::from_index(idx as usize)),
            value => Err(DecodeError::BadTag {
                field: "bell_state",
                value,
            }),
        }
    }
}

impl Wire for Pauli {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u8(match self {
            Pauli::I => 0,
            Pauli::X => 1,
            Pauli::Y => 2,
            Pauli::Z => 3,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Pauli::I),
            1 => Ok(Pauli::X),
            2 => Ok(Pauli::Y),
            3 => Ok(Pauli::Z),
            value => Err(DecodeError::BadTag {
                field: "pauli",
                value,
            }),
        }
    }
}

impl Wire for RequestType {
    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            RequestType::Keep => w.put_u8(0),
            RequestType::Early => w.put_u8(1),
            RequestType::Measure(basis) => {
                w.put_u8(2);
                basis.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(RequestType::Keep),
            1 => Ok(RequestType::Early),
            2 => Ok(RequestType::Measure(Pauli::decode(r)?)),
            value => Err(DecodeError::BadTag {
                field: "request_type",
                value,
            }),
        }
    }
}

impl Wire for RejectReason {
    fn encode(&self, w: &mut WireWriter<'_>) {
        w.put_u8(match self {
            RejectReason::FidelityUnattainable => 0,
            RejectReason::DuplicateLabel => 1,
            RejectReason::InvalidWeight => 2,
            RejectReason::LinkDown => 3,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(RejectReason::FidelityUnattainable),
            1 => Ok(RejectReason::DuplicateLabel),
            2 => Ok(RejectReason::InvalidWeight),
            3 => Ok(RejectReason::LinkDown),
            value => Err(DecodeError::BadTag {
                field: "reject_reason",
                value,
            }),
        }
    }
}

impl Wire for LinkPair {
    fn encode(&self, w: &mut WireWriter<'_>) {
        self.id.encode(w);
        self.label.encode(w);
        self.announced.encode(w);
        w.put_f64(self.alpha);
        w.put_f64(self.goodness);
        w.put_u64(self.attempts);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(LinkPair {
            id: EntanglementId::decode(r)?,
            label: LinkLabel::decode(r)?,
            announced: BellState::decode(r)?,
            alpha: r.get_f64()?,
            goodness: r.get_f64()?,
            attempts: r.get_u64()?,
        })
    }
}

impl Wire for UpstreamHop {
    fn encode(&self, w: &mut WireWriter<'_>) {
        self.node.encode(w);
        self.label.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(UpstreamHop {
            node: NodeId::decode(r)?,
            label: LinkLabel::decode(r)?,
        })
    }
}

impl Wire for DownstreamHop {
    fn encode(&self, w: &mut WireWriter<'_>) {
        self.node.encode(w);
        self.label.encode(w);
        w.put_f64(self.min_fidelity);
        w.put_f64(self.max_lpr);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(DownstreamHop {
            node: NodeId::decode(r)?,
            label: LinkLabel::decode(r)?,
            min_fidelity: r.get_f64()?,
            max_lpr: r.get_f64()?,
        })
    }
}

impl Wire for RoutingEntry {
    fn encode(&self, w: &mut WireWriter<'_>) {
        self.circuit.encode(w);
        w.put_opt(&self.upstream, |w, h| h.encode(w));
        w.put_opt(&self.downstream, |w, h| h.encode(w));
        w.put_f64(self.max_eer);
        // Cutoffs are picosecond ticks; `SimDuration::MAX` (= "no
        // cutoff", the Fig 10 oracle baseline) round-trips exactly.
        w.put_u64(self.cutoff.as_ps());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        Ok(RoutingEntry {
            circuit: CircuitId::decode(r)?,
            upstream: r.get_opt("upstream", UpstreamHop::decode)?,
            downstream: r.get_opt("downstream", DownstreamHop::decode)?,
            max_eer: r.get_f64()?,
            cutoff: SimDuration::from_ps(r.get_u64()?),
        })
    }
}

// ---------------------------------------------------------------------
// Frame helpers
// ---------------------------------------------------------------------

/// Append the two-byte frame header.
/// Append the two-byte frame header (version + kind).
pub fn put_header(w: &mut WireWriter<'_>, kind: u8) {
    w.put_u8(WIRE_VERSION);
    w.put_u8(kind);
}

/// Read and check the version byte, then return the kind byte.
pub fn read_header(r: &mut WireReader<'_>) -> Result<u8, DecodeError> {
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    r.get_u8()
}

// ---------------------------------------------------------------------
// QNP data-plane messages
// ---------------------------------------------------------------------

fn encode_forward(m: &Forward, w: &mut WireWriter<'_>) {
    m.circuit.encode(w);
    m.request.encode(w);
    w.put_u32(m.head_identifier);
    w.put_u32(m.tail_identifier);
    m.request_type.encode(w);
    w.put_opt(&m.number_of_pairs, |w, n| w.put_u64(*n));
    w.put_opt(&m.final_state, |w, s| s.encode(w));
    w.put_f64(m.rate);
}

fn decode_forward(r: &mut WireReader<'_>) -> Result<Forward, DecodeError> {
    Ok(Forward {
        circuit: CircuitId::decode(r)?,
        request: RequestId::decode(r)?,
        head_identifier: r.get_u32()?,
        tail_identifier: r.get_u32()?,
        request_type: RequestType::decode(r)?,
        number_of_pairs: r.get_opt("number_of_pairs", |r| r.get_u64())?,
        final_state: r.get_opt("final_state", BellState::decode)?,
        rate: r.get_f64()?,
    })
}

fn encode_complete(m: &Complete, w: &mut WireWriter<'_>) {
    m.circuit.encode(w);
    m.request.encode(w);
    w.put_u32(m.head_identifier);
    w.put_u32(m.tail_identifier);
    w.put_f64(m.rate);
}

fn decode_complete(r: &mut WireReader<'_>) -> Result<Complete, DecodeError> {
    Ok(Complete {
        circuit: CircuitId::decode(r)?,
        request: RequestId::decode(r)?,
        head_identifier: r.get_u32()?,
        tail_identifier: r.get_u32()?,
        rate: r.get_f64()?,
    })
}

fn encode_track(m: &Track, w: &mut WireWriter<'_>) {
    m.circuit.encode(w);
    m.request.encode(w);
    w.put_u32(m.head_identifier);
    w.put_u32(m.tail_identifier);
    m.origin.encode(w);
    m.link.encode(w);
    m.outcome_state.encode(w);
    w.put_opt(&m.epoch, |w, e| e.encode(w));
}

fn decode_track(r: &mut WireReader<'_>) -> Result<Track, DecodeError> {
    Ok(Track {
        circuit: CircuitId::decode(r)?,
        request: RequestId::decode(r)?,
        head_identifier: r.get_u32()?,
        tail_identifier: r.get_u32()?,
        origin: EntanglementId::decode(r)?,
        link: EntanglementId::decode(r)?,
        outcome_state: BellState::decode(r)?,
        epoch: r.get_opt("epoch", Epoch::decode)?,
    })
}

fn encode_expire(m: &Expire, w: &mut WireWriter<'_>) {
    m.circuit.encode(w);
    m.origin.encode(w);
}

fn decode_expire(r: &mut WireReader<'_>) -> Result<Expire, DecodeError> {
    Ok(Expire {
        circuit: CircuitId::decode(r)?,
        origin: EntanglementId::decode(r)?,
    })
}

fn encode_track_ack(m: &TrackAck, w: &mut WireWriter<'_>) {
    m.circuit.encode(w);
    m.origin.encode(w);
}

fn decode_track_ack(r: &mut WireReader<'_>) -> Result<TrackAck, DecodeError> {
    Ok(TrackAck {
        circuit: CircuitId::decode(r)?,
        origin: EntanglementId::decode(r)?,
    })
}

impl Message {
    /// Append this message's complete frame (header + payload) to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        let mut w = WireWriter::new(buf);
        match self {
            Message::Forward(m) => {
                put_header(&mut w, KIND_FORWARD);
                encode_forward(m, &mut w);
            }
            Message::Complete(m) => {
                put_header(&mut w, KIND_COMPLETE);
                encode_complete(m, &mut w);
            }
            Message::Track(m) => {
                put_header(&mut w, KIND_TRACK);
                encode_track(m, &mut w);
            }
            Message::Expire(m) => {
                put_header(&mut w, KIND_EXPIRE);
                encode_expire(m, &mut w);
            }
            Message::TrackAck(m) => {
                put_header(&mut w, KIND_TRACK_ACK);
                encode_track_ack(m, &mut w);
            }
        }
    }

    /// This message's complete wire frame.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_to(&mut buf);
        buf
    }

    /// Decode a complete frame. Total: never panics; rejects bad
    /// versions, foreign/unknown kind bytes, truncation and trailing
    /// bytes with a typed [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<Message, DecodeError> {
        let mut r = WireReader::new(bytes);
        let msg = match read_header(&mut r)? {
            KIND_FORWARD => Message::Forward(decode_forward(&mut r)?),
            KIND_COMPLETE => Message::Complete(decode_complete(&mut r)?),
            KIND_TRACK => Message::Track(decode_track(&mut r)?),
            KIND_EXPIRE => Message::Expire(decode_expire(&mut r)?),
            KIND_TRACK_ACK => Message::TrackAck(decode_track_ack(&mut r)?),
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok(msg)
    }
}

// ---------------------------------------------------------------------
// Link-layer lifecycle events
// ---------------------------------------------------------------------

/// Encode a link-layer lifecycle event as a complete frame.
pub fn encode_link_event(ev: &LinkEvent, buf: &mut Vec<u8>) {
    let mut w = WireWriter::new(buf);
    match ev {
        LinkEvent::PairReady(pair) => {
            put_header(&mut w, KIND_LINK_PAIR_READY);
            pair.encode(&mut w);
        }
        LinkEvent::RequestDone(label) => {
            put_header(&mut w, KIND_LINK_REQUEST_DONE);
            label.encode(&mut w);
        }
        LinkEvent::Rejected(label, reason) => {
            put_header(&mut w, KIND_LINK_REJECTED);
            label.encode(&mut w);
            reason.encode(&mut w);
        }
    }
}

/// Decode a link-layer lifecycle event frame (total; typed errors).
pub fn decode_link_event(bytes: &[u8]) -> Result<LinkEvent, DecodeError> {
    let mut r = WireReader::new(bytes);
    let ev = match read_header(&mut r)? {
        KIND_LINK_PAIR_READY => LinkEvent::PairReady(LinkPair::decode(&mut r)?),
        KIND_LINK_REQUEST_DONE => LinkEvent::RequestDone(LinkLabel::decode(&mut r)?),
        KIND_LINK_REJECTED => {
            LinkEvent::Rejected(LinkLabel::decode(&mut r)?, RejectReason::decode(&mut r)?)
        }
        kind => return Err(DecodeError::UnknownKind(kind)),
    };
    r.finish()?;
    Ok(ev)
}

// ---------------------------------------------------------------------
// Zero-copy message views
// ---------------------------------------------------------------------
//
// A view validates the complete frame layout once (reproducing
// `Message::decode`'s `DecodeError`s byte offset for byte offset) and
// then reads fields straight out of the borrowed bytes — the receive
// path demuxes without allocating or materialising a `Message` until a
// rule actually retains one.

#[inline]
fn le_u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("validated at parse"))
}

#[inline]
fn le_u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("validated at parse"))
}

#[inline]
fn pauli_at(b: &[u8], at: usize) -> Pauli {
    match b[at] {
        0 => Pauli::I,
        1 => Pauli::X,
        2 => Pauli::Y,
        3 => Pauli::Z,
        _ => unreachable!("validated at parse"),
    }
}

/// Borrowed view of a FORWARD frame. Field offsets past the variable
/// tail (`request_type` may carry a basis; two option fields) are
/// recorded at parse time; every accessor is total.
#[derive(Clone, Copy, Debug)]
pub struct ForwardView<'a> {
    frame: &'a [u8],
    number_of_pairs_at: usize,
    final_state_at: usize,
    rate_at: usize,
}

impl<'a> ForwardView<'a> {
    fn parse_payload(frame: &'a [u8], r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
        r.skip_fields(&[8, 8, 4, 4])?;
        match r.get_u8()? {
            0 | 1 => {}
            2 => match r.get_u8()? {
                0..=3 => {}
                value => {
                    return Err(DecodeError::BadTag {
                        field: "pauli",
                        value,
                    })
                }
            },
            value => {
                return Err(DecodeError::BadTag {
                    field: "request_type",
                    value,
                })
            }
        }
        let number_of_pairs_at = r.position();
        match r.get_u8()? {
            0 => {}
            1 => r.skip(8)?,
            value => {
                return Err(DecodeError::BadTag {
                    field: "number_of_pairs",
                    value,
                })
            }
        }
        let final_state_at = r.position();
        match r.get_u8()? {
            0 => {}
            1 => match r.get_u8()? {
                0..=3 => {}
                value => {
                    return Err(DecodeError::BadTag {
                        field: "bell_state",
                        value,
                    })
                }
            },
            value => {
                return Err(DecodeError::BadTag {
                    field: "final_state",
                    value,
                })
            }
        }
        let rate_at = r.position();
        r.skip(8)?;
        Ok(ForwardView {
            frame,
            number_of_pairs_at,
            final_state_at,
            rate_at,
        })
    }

    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        CircuitId(le_u64_at(self.frame, 2))
    }

    /// The request being forwarded.
    pub fn request(&self) -> RequestId {
        RequestId(le_u64_at(self.frame, 10))
    }

    /// Head-end identifier.
    pub fn head_identifier(&self) -> u32 {
        le_u32_at(self.frame, 18)
    }

    /// Tail-end identifier.
    pub fn tail_identifier(&self) -> u32 {
        le_u32_at(self.frame, 22)
    }

    /// The requested delivery mode.
    pub fn request_type(&self) -> RequestType {
        match self.frame[26] {
            0 => RequestType::Keep,
            1 => RequestType::Early,
            2 => RequestType::Measure(pauli_at(self.frame, 27)),
            _ => unreachable!("validated at parse"),
        }
    }

    /// Requested pair count, if bounded.
    pub fn number_of_pairs(&self) -> Option<u64> {
        match self.frame[self.number_of_pairs_at] {
            0 => None,
            _ => Some(le_u64_at(self.frame, self.number_of_pairs_at + 1)),
        }
    }

    /// Requested final Bell state, if pinned.
    pub fn final_state(&self) -> Option<BellState> {
        match self.frame[self.final_state_at] {
            0 => None,
            _ => Some(BellState::from_index(
                self.frame[self.final_state_at + 1] as usize,
            )),
        }
    }

    /// Requested pair rate.
    pub fn rate(&self) -> f64 {
        f64::from_bits(le_u64_at(self.frame, self.rate_at))
    }

    /// Materialise the owned message.
    pub fn to_forward(&self) -> Forward {
        Forward {
            circuit: self.circuit(),
            request: self.request(),
            head_identifier: self.head_identifier(),
            tail_identifier: self.tail_identifier(),
            request_type: self.request_type(),
            number_of_pairs: self.number_of_pairs(),
            final_state: self.final_state(),
            rate: self.rate(),
        }
    }
}

/// Borrowed view of a COMPLETE frame (fixed 32-byte payload).
#[derive(Clone, Copy, Debug)]
pub struct CompleteView<'a> {
    frame: &'a [u8],
}

impl<'a> CompleteView<'a> {
    fn parse_payload(frame: &'a [u8], r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
        r.skip_fields(&[8, 8, 4, 4, 8])?;
        Ok(CompleteView { frame })
    }

    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        CircuitId(le_u64_at(self.frame, 2))
    }

    /// The completed request.
    pub fn request(&self) -> RequestId {
        RequestId(le_u64_at(self.frame, 10))
    }

    /// Head-end identifier.
    pub fn head_identifier(&self) -> u32 {
        le_u32_at(self.frame, 18)
    }

    /// Tail-end identifier.
    pub fn tail_identifier(&self) -> u32 {
        le_u32_at(self.frame, 22)
    }

    /// Delivered pair rate.
    pub fn rate(&self) -> f64 {
        f64::from_bits(le_u64_at(self.frame, 26))
    }

    /// Materialise the owned message.
    pub fn to_complete(&self) -> Complete {
        Complete {
            circuit: self.circuit(),
            request: self.request(),
            head_identifier: self.head_identifier(),
            tail_identifier: self.tail_identifier(),
            rate: self.rate(),
        }
    }
}

/// Borrowed view of a TRACK frame.
#[derive(Clone, Copy, Debug)]
pub struct TrackView<'a> {
    frame: &'a [u8],
}

impl<'a> TrackView<'a> {
    fn parse_payload(frame: &'a [u8], r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
        r.skip_fields(&[8, 8, 4, 4, 4, 4, 8, 4, 4, 8])?;
        match r.get_u8()? {
            0..=3 => {}
            value => {
                return Err(DecodeError::BadTag {
                    field: "bell_state",
                    value,
                })
            }
        }
        match r.get_u8()? {
            0 => {}
            1 => r.skip(8)?,
            value => {
                return Err(DecodeError::BadTag {
                    field: "epoch",
                    value,
                })
            }
        }
        Ok(TrackView { frame })
    }

    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        CircuitId(le_u64_at(self.frame, 2))
    }

    /// The tracked request.
    pub fn request(&self) -> RequestId {
        RequestId(le_u64_at(self.frame, 10))
    }

    /// Head-end identifier.
    pub fn head_identifier(&self) -> u32 {
        le_u32_at(self.frame, 18)
    }

    /// Tail-end identifier.
    pub fn tail_identifier(&self) -> u32 {
        le_u32_at(self.frame, 22)
    }

    /// Correlator of the origin pair being tracked.
    pub fn origin(&self) -> EntanglementId {
        EntanglementId {
            node_a: NodeId(le_u32_at(self.frame, 26)),
            node_b: NodeId(le_u32_at(self.frame, 30)),
            seq: le_u64_at(self.frame, 34),
        }
    }

    /// Correlator of the link pair consumed by the swap.
    pub fn link(&self) -> EntanglementId {
        EntanglementId {
            node_a: NodeId(le_u32_at(self.frame, 42)),
            node_b: NodeId(le_u32_at(self.frame, 46)),
            seq: le_u64_at(self.frame, 50),
        }
    }

    /// Bell state implied by the swap outcome.
    pub fn outcome_state(&self) -> BellState {
        BellState::from_index(self.frame[58] as usize)
    }

    /// Distillation epoch, if epochs are in use.
    pub fn epoch(&self) -> Option<Epoch> {
        match self.frame[59] {
            0 => None,
            _ => Some(Epoch(le_u64_at(self.frame, 60))),
        }
    }

    /// Materialise the owned message.
    pub fn to_track(&self) -> Track {
        Track {
            circuit: self.circuit(),
            request: self.request(),
            head_identifier: self.head_identifier(),
            tail_identifier: self.tail_identifier(),
            origin: self.origin(),
            link: self.link(),
            outcome_state: self.outcome_state(),
            epoch: self.epoch(),
        }
    }
}

/// Borrowed view of an EXPIRE frame (fixed 24-byte payload).
#[derive(Clone, Copy, Debug)]
pub struct ExpireView<'a> {
    frame: &'a [u8],
}

impl<'a> ExpireView<'a> {
    fn parse_payload(frame: &'a [u8], r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
        r.skip_fields(&[8, 4, 4, 8])?;
        Ok(ExpireView { frame })
    }

    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        CircuitId(le_u64_at(self.frame, 2))
    }

    /// Correlator of the expired pair.
    pub fn origin(&self) -> EntanglementId {
        EntanglementId {
            node_a: NodeId(le_u32_at(self.frame, 10)),
            node_b: NodeId(le_u32_at(self.frame, 14)),
            seq: le_u64_at(self.frame, 18),
        }
    }

    /// Materialise the owned message.
    pub fn to_expire(&self) -> Expire {
        Expire {
            circuit: self.circuit(),
            origin: self.origin(),
        }
    }
}

/// Borrowed view of a TRACK_ACK frame (fixed 24-byte payload).
#[derive(Clone, Copy, Debug)]
pub struct TrackAckView<'a> {
    frame: &'a [u8],
}

impl<'a> TrackAckView<'a> {
    fn parse_payload(frame: &'a [u8], r: &mut WireReader<'a>) -> Result<Self, DecodeError> {
        r.skip_fields(&[8, 4, 4, 8])?;
        Ok(TrackAckView { frame })
    }

    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        CircuitId(le_u64_at(self.frame, 2))
    }

    /// Correlator of the acknowledged pair at the TRACK's origin.
    pub fn origin(&self) -> EntanglementId {
        EntanglementId {
            node_a: NodeId(le_u32_at(self.frame, 10)),
            node_b: NodeId(le_u32_at(self.frame, 14)),
            seq: le_u64_at(self.frame, 18),
        }
    }

    /// Materialise the owned message.
    pub fn to_track_ack(&self) -> TrackAck {
        TrackAck {
            circuit: self.circuit(),
            origin: self.origin(),
        }
    }
}

/// A borrowed, fully validated view of one data-plane frame.
///
/// `parse` is total and agrees with [`Message::decode`] exactly: the
/// same inputs succeed, and failing inputs produce the *same*
/// [`DecodeError`] (including the truncation byte offset). The property
/// suite in `crates/net/tests/prop_wire.rs` pins this equivalence on
/// arbitrary, truncated and bit-flipped inputs.
#[derive(Clone, Copy, Debug)]
pub enum MessageView<'a> {
    /// A FORWARD frame.
    Forward(ForwardView<'a>),
    /// A COMPLETE frame.
    Complete(CompleteView<'a>),
    /// A TRACK frame.
    Track(TrackView<'a>),
    /// An EXPIRE frame.
    Expire(ExpireView<'a>),
    /// A TRACK_ACK frame.
    TrackAck(TrackAckView<'a>),
}

impl<'a> MessageView<'a> {
    /// Validate a complete frame and borrow it as a view.
    pub fn parse(bytes: &'a [u8]) -> Result<MessageView<'a>, DecodeError> {
        let mut r = WireReader::new(bytes);
        let view = match read_header(&mut r)? {
            KIND_FORWARD => MessageView::Forward(ForwardView::parse_payload(bytes, &mut r)?),
            KIND_COMPLETE => MessageView::Complete(CompleteView::parse_payload(bytes, &mut r)?),
            KIND_TRACK => MessageView::Track(TrackView::parse_payload(bytes, &mut r)?),
            KIND_EXPIRE => MessageView::Expire(ExpireView::parse_payload(bytes, &mut r)?),
            KIND_TRACK_ACK => MessageView::TrackAck(TrackAckView::parse_payload(bytes, &mut r)?),
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok(view)
    }

    /// The circuit this frame belongs to — the demux key, read without
    /// materialising the message (every payload starts with it).
    pub fn circuit(&self) -> CircuitId {
        match self {
            MessageView::Forward(v) => v.circuit(),
            MessageView::Complete(v) => v.circuit(),
            MessageView::Track(v) => v.circuit(),
            MessageView::Expire(v) => v.circuit(),
            MessageView::TrackAck(v) => v.circuit(),
        }
    }

    /// Materialise the owned message (the one place the receive path
    /// copies out of the frame buffer).
    pub fn to_message(&self) -> Message {
        match self {
            MessageView::Forward(v) => Message::Forward(v.to_forward()),
            MessageView::Complete(v) => Message::Complete(v.to_complete()),
            MessageView::Track(v) => Message::Track(v.to_track()),
            MessageView::Expire(v) => Message::Expire(v.to_expire()),
            MessageView::TrackAck(v) => Message::TrackAck(v.to_track_ack()),
        }
    }
}

// ---------------------------------------------------------------------
// Batch frames (transport coalescing)
// ---------------------------------------------------------------------
//
// Layout: `version | KIND_BATCH | count: u32 | count × (len: u32 | frame)`.
// The classical plane coalesces frames crossing the same hop toward the
// same delivery tick into one batch, so the runtime schedules (and
// drains) one event per batch instead of one per message.

/// Start a BATCH frame in `buf` (clearing it): header plus a zero count.
pub fn batch_begin(buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(WIRE_VERSION);
    buf.push(KIND_BATCH);
    buf.extend_from_slice(&0u32.to_le_bytes());
}

/// Append one length-prefixed inner frame to a batch started by
/// [`batch_begin`], bumping the count in place.
pub fn batch_append(buf: &mut Vec<u8>, frame: &[u8]) {
    debug_assert!(
        buf.len() >= 6 && buf[1] == KIND_BATCH,
        "batch_append on a buffer not started by batch_begin"
    );
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    let count = u32::from_le_bytes(buf[2..6].try_into().expect("4 bytes")) + 1;
    buf[2..6].copy_from_slice(&count.to_le_bytes());
}

/// Iterator over the inner frames of a validated [`BatchView`].
pub struct BatchFrames<'a> {
    rest: &'a [u8],
    remaining: u32,
}

impl<'a> Iterator for BatchFrames<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len =
            u32::from_le_bytes(self.rest[..4].try_into().expect("validated at parse")) as usize;
        let frame = &self.rest[4..4 + len];
        self.rest = &self.rest[4 + len..];
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for BatchFrames<'_> {}

/// A borrowed, eagerly validated view of a BATCH frame.
///
/// `parse` walks every length prefix up front (typed errors on a bad
/// header, a truncating inner length or trailing bytes), so [`frames`]
/// iterates infallibly afterwards. Inner frames are *opaque* byte
/// strings at this layer — a frame corrupted in flight still travels
/// inside a well-formed envelope and fails only its own decode.
///
/// [`frames`]: BatchView::frames
#[derive(Clone, Copy, Debug)]
pub struct BatchView<'a> {
    body: &'a [u8],
    count: u32,
}

impl<'a> BatchView<'a> {
    /// Validate a complete batch frame and borrow it as a view.
    pub fn parse(bytes: &'a [u8]) -> Result<BatchView<'a>, DecodeError> {
        let mut r = WireReader::new(bytes);
        match read_header(&mut r)? {
            KIND_BATCH => {}
            kind => return Err(DecodeError::UnknownKind(kind)),
        }
        let count = r.get_u32()?;
        let body_start = r.position();
        for _ in 0..count {
            let len = r.get_u32()? as usize;
            r.skip(len)?;
        }
        r.finish()?;
        Ok(BatchView {
            body: &bytes[body_start..],
            count,
        })
    }

    /// Number of inner frames.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Iterate the inner frames in append order, borrowing each.
    pub fn frames(&self) -> BatchFrames<'a> {
        BatchFrames {
            rest: self.body,
            remaining: self.count,
        }
    }
}

/// Owned batch decode: the allocating counterpart of [`BatchView`],
/// kept as an independent walk so the property suite can pin the two
/// paths to identical results (and identical [`DecodeError`]s) on
/// corrupt input.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Vec<u8>>, DecodeError> {
    let mut r = WireReader::new(bytes);
    match read_header(&mut r)? {
        KIND_BATCH => {}
        kind => return Err(DecodeError::UnknownKind(kind)),
    }
    let count = r.get_u32()?;
    // No `with_capacity(count)`: a corrupt count must not drive an
    // allocation — growth is bounded by the actual input length.
    let mut frames = Vec::new();
    for _ in 0..count {
        let len = r.get_u32()? as usize;
        frames.push(r.get_slice(len)?.to_vec());
    }
    r.finish()?;
    Ok(frames)
}

// ---------------------------------------------------------------------
// Scratch encoding
// ---------------------------------------------------------------------

/// A reusable encode buffer: steady-state senders encode every outgoing
/// frame into the same backing allocation instead of a fresh `Vec` per
/// message. The borrowed frame is valid until the next encode.
pub struct ScratchEncoder {
    buf: Vec<u8>,
}

impl ScratchEncoder {
    /// An empty scratch with a small upfront capacity.
    pub fn new() -> Self {
        ScratchEncoder {
            buf: Vec::with_capacity(128),
        }
    }

    /// Clear the scratch, let `fill` append one frame, borrow the bytes.
    pub fn frame(&mut self, fill: impl FnOnce(&mut Vec<u8>)) -> &[u8] {
        self.buf.clear();
        fill(&mut self.buf);
        &self.buf
    }

    /// Encode one data-plane message frame into the scratch.
    pub fn message(&mut self, msg: &Message) -> &[u8] {
        self.frame(|buf| msg.encode_to(buf))
    }
}

impl Default for ScratchEncoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: u32, b: u32, seq: u64) -> EntanglementId {
        EntanglementId {
            node_a: NodeId(a),
            node_b: NodeId(b),
            seq,
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Forward(Forward {
                circuit: CircuitId(3),
                request: RequestId(9),
                head_identifier: 1,
                tail_identifier: 2,
                request_type: RequestType::Measure(Pauli::Y),
                number_of_pairs: Some(17),
                final_state: Some(BellState::PSI_MINUS),
                rate: 12.5,
            }),
            Message::Complete(Complete {
                circuit: CircuitId(u64::MAX),
                request: RequestId(0),
                head_identifier: u32::MAX,
                tail_identifier: 0,
                rate: -0.0,
            }),
            Message::Track(Track {
                circuit: CircuitId(1),
                request: RequestId(2),
                head_identifier: 7,
                tail_identifier: 8,
                origin: corr(0, 1, 42),
                link: corr(2, 3, 7),
                outcome_state: BellState::PHI_MINUS,
                epoch: None,
            }),
            Message::Expire(Expire {
                circuit: CircuitId(6),
                origin: corr(4, 5, u64::MAX),
            }),
            Message::TrackAck(TrackAck {
                circuit: CircuitId(11),
                origin: corr(6, 7, 3),
            }),
        ]
    }

    #[test]
    fn message_round_trip() {
        for m in sample_messages() {
            let bytes = m.wire_bytes();
            assert_eq!(Message::decode(&bytes), Ok(m), "round trip of {m:?}");
        }
    }

    #[test]
    fn nan_rate_round_trips_bit_exactly() {
        let m = Message::Complete(Complete {
            circuit: CircuitId(1),
            request: RequestId(1),
            head_identifier: 0,
            tail_identifier: 0,
            rate: f64::from_bits(0x7ff8_dead_beef_0001),
        });
        let bytes = m.wire_bytes();
        let back = Message::decode(&bytes).unwrap();
        // NaN != NaN, so compare via re-encoding.
        assert_eq!(back.wire_bytes(), bytes);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        for m in sample_messages() {
            let bytes = m.wire_bytes();
            for len in 0..bytes.len() {
                let err = Message::decode(&bytes[..len]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated { .. }),
                    "prefix of {} bytes gave {err:?}",
                    len
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_messages()[3].wire_bytes();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_version_and_kind() {
        let mut bytes = sample_messages()[0].wire_bytes();
        bytes[0] = 9;
        assert_eq!(Message::decode(&bytes), Err(DecodeError::BadVersion(9)));
        bytes[0] = WIRE_VERSION;
        bytes[1] = 0xEE;
        assert_eq!(Message::decode(&bytes), Err(DecodeError::UnknownKind(0xEE)));
        // Link-layer kinds are a *foreign* plane for Message::decode.
        bytes[1] = KIND_LINK_PAIR_READY;
        assert_eq!(
            Message::decode(&bytes),
            Err(DecodeError::UnknownKind(KIND_LINK_PAIR_READY))
        );
    }

    #[test]
    fn link_event_round_trip() {
        let events = vec![
            LinkEvent::PairReady(LinkPair {
                id: corr(0, 1, 5),
                label: LinkLabel(3),
                announced: BellState::PSI_PLUS,
                alpha: 0.125,
                goodness: 0.987,
                attempts: 1 << 40,
            }),
            LinkEvent::RequestDone(LinkLabel(7)),
            LinkEvent::Rejected(LinkLabel(1), RejectReason::DuplicateLabel),
        ];
        for ev in &events {
            let mut bytes = Vec::new();
            encode_link_event(ev, &mut bytes);
            let back = decode_link_event(&bytes).unwrap();
            let mut again = Vec::new();
            encode_link_event(&back, &mut again);
            assert_eq!(again, bytes, "round trip of {ev:?}");
        }
    }

    #[test]
    fn view_matches_owned_decode_on_samples() {
        for m in sample_messages() {
            let bytes = m.wire_bytes();
            let view = MessageView::parse(&bytes).unwrap();
            assert_eq!(view.to_message(), m, "view materialisation of {m:?}");
            assert_eq!(view.circuit(), m.circuit());
        }
    }

    #[test]
    fn view_errors_match_owned_decode() {
        for m in sample_messages() {
            let bytes = m.wire_bytes();
            // Every strict prefix: identical typed error, same offset.
            for len in 0..bytes.len() {
                assert_eq!(
                    MessageView::parse(&bytes[..len]).unwrap_err(),
                    Message::decode(&bytes[..len]).unwrap_err(),
                    "prefix of {len} bytes of {m:?}"
                );
            }
            // Every single-byte corruption: same verdict on both paths.
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0xFF;
                match (MessageView::parse(&bad), Message::decode(&bad)) {
                    (Ok(v), Ok(d)) => assert_eq!(v.to_message().wire_bytes(), d.wire_bytes()),
                    (Err(a), Err(b)) => assert_eq!(a, b, "corrupt byte {i} of {m:?}"),
                    (a, b) => panic!("paths diverge at byte {i}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_round_trip() {
        let frames: Vec<Vec<u8>> = sample_messages().iter().map(Message::wire_bytes).collect();
        let mut buf = Vec::new();
        batch_begin(&mut buf);
        for f in &frames {
            batch_append(&mut buf, f);
        }
        let view = BatchView::parse(&buf).unwrap();
        assert_eq!(view.count() as usize, frames.len());
        let got: Vec<&[u8]> = view.frames().collect();
        assert_eq!(got, frames.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(decode_batch(&buf).unwrap(), frames);
        // Empty batches are legal frames too.
        let mut empty = Vec::new();
        batch_begin(&mut empty);
        assert_eq!(BatchView::parse(&empty).unwrap().count(), 0);
        assert_eq!(decode_batch(&empty).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn batch_decode_is_total_and_paths_agree() {
        let mut buf = Vec::new();
        batch_begin(&mut buf);
        batch_append(&mut buf, &sample_messages()[1].wire_bytes());
        // Corrupt the inner length prefix (bytes 6..10) and truncate:
        // both walks must fail with the same typed error.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                BatchView::parse(&bad).map(|v| v.count()),
                decode_batch(&bad).map(|f| f.len() as u32),
                "corrupt byte {i}"
            );
        }
        for len in 0..buf.len() {
            assert_eq!(
                BatchView::parse(&buf[..len])
                    .map(|v| v.count())
                    .unwrap_err(),
                decode_batch(&buf[..len]).unwrap_err(),
                "prefix of {len} bytes"
            );
        }
        buf.push(0);
        assert_eq!(
            decode_batch(&buf),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn scratch_encoder_matches_wire_bytes() {
        let mut scratch = ScratchEncoder::new();
        for m in sample_messages() {
            assert_eq!(scratch.message(&m), m.wire_bytes().as_slice());
        }
        let ev = LinkEvent::RequestDone(LinkLabel(7));
        let mut owned = Vec::new();
        encode_link_event(&ev, &mut owned);
        assert_eq!(
            scratch.frame(|b| encode_link_event(&ev, b)),
            owned.as_slice()
        );
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(format!("{}", DecodeError::BadVersion(7)).contains("version 7"));
        assert!(format!(
            "{}",
            DecodeError::BadTag {
                field: "pauli",
                value: 9
            }
        )
        .contains("pauli"));
    }
}
