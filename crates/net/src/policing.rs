//! Policing and shaping at the head-end (paper §3.4 QoS task iii and
//! §4.1 "Policing and shaping").
//!
//! The routing protocol allocates the circuit a maximum end-to-end rate
//! (EER); the head-end compares each request's minimum EER against the
//! remaining bandwidth and **rejects** what can never fit, **shapes**
//! (delays) what can fit later, and admits the rest.
//!
//! The module also implements the LPR scaling rule of §4.1 "Continuous
//! link generation": the circuit requests its maximum LPR unless *only*
//! rate-based requests are active, in which case it requests the fraction
//! of the LPR matching the fraction of the EER those requests need.

use crate::ids::RequestId;
use crate::request::UserRequest;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Outcome of admission control for one request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmitDecision {
    /// Enough bandwidth now.
    Accept,
    /// Feasible but not now: delay until bandwidth frees (shaping).
    Shape,
    /// Exceeds the circuit's allocation outright (policing).
    Reject(&'static str),
}

#[derive(Clone, Copy, Debug)]
struct Admitted {
    eer: f64,
    rate_based: bool,
}

/// Head-end bandwidth bookkeeping for one circuit.
#[derive(Debug)]
pub struct Policer {
    max_eer: f64,
    active: BTreeMap<RequestId, Admitted>,
    shaped: VecDeque<UserRequest>,
}

impl Policer {
    /// A policer for a circuit with the given max EER allocation.
    pub fn new(max_eer: f64) -> Self {
        Policer {
            max_eer,
            active: BTreeMap::new(),
            shaped: VecDeque::new(),
        }
    }

    /// Bandwidth not yet claimed by admitted requests.
    pub fn available(&self) -> f64 {
        (self.max_eer - self.total_eer()).max(0.0)
    }

    /// Sum of admitted minimum EERs.
    pub fn total_eer(&self) -> f64 {
        self.active.values().map(|a| a.eer).sum()
    }

    /// Decide admission for a request (does not mutate state).
    pub fn decide(&self, req: &UserRequest) -> AdmitDecision {
        let eer = req.demand.min_eer();
        if eer > self.max_eer {
            AdmitDecision::Reject("minimum EER exceeds the circuit allocation")
        } else if eer > self.available() + 1e-12 {
            AdmitDecision::Shape
        } else {
            AdmitDecision::Accept
        }
    }

    /// Record an admitted request.
    pub fn admit(&mut self, req: &UserRequest) {
        self.active.insert(
            req.id,
            Admitted {
                eer: req.demand.min_eer(),
                rate_based: req.is_rate_based(),
            },
        );
    }

    /// Queue a shaped request for later admission.
    pub fn shape(&mut self, req: UserRequest) {
        self.shaped.push_back(req);
    }

    /// Number of requests waiting in the shaping queue.
    pub fn shaped_len(&self) -> usize {
        self.shaped.len()
    }

    /// Release a completed/cancelled request's bandwidth.
    pub fn release(&mut self, id: RequestId) {
        self.active.remove(&id);
    }

    /// Drain shaped requests that now fit, in arrival order. Stops at the
    /// first request that still does not fit (FIFO shaping — no
    /// reordering starvation).
    pub fn admissible_shaped(&mut self) -> Vec<UserRequest> {
        let mut out = Vec::new();
        while let Some(front) = self.shaped.front() {
            if front.demand.min_eer() <= self.available() + 1e-12 {
                let req = self.shaped.pop_front().unwrap();
                self.admit(&req);
                out.push(req);
            } else {
                break;
            }
        }
        out
    }

    /// The `rate` field for FORWARD/COMPLETE messages: the total EER the
    /// active requests need. Encoding per DESIGN.md: when any non-rate
    /// request is active the circuit wants its full LPR, signalled as
    /// `max_eer`.
    pub fn advertised_rate(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        if self.active.values().all(|a| a.rate_based) {
            self.total_eer().min(self.max_eer)
        } else {
            self.max_eer
        }
    }

    /// Number of active (admitted) requests.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }
}

/// The link-layer scheduling weight for a circuit given its advertised
/// rate: full max-LPR normally, scaled down proportionally when only
/// rate-based requests are active (`rate < max_eer`).
pub fn link_weight(max_lpr: f64, max_eer: f64, advertised_rate: f64) -> f64 {
    if max_eer <= 0.0 {
        return max_lpr.max(1e-9);
    }
    let fraction = (advertised_rate / max_eer).clamp(0.0, 1.0);
    (max_lpr * fraction).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Address;
    use crate::request::{Demand, RequestType};
    use qn_sim::{NodeId, SimDuration};

    fn req(id: u64, demand: Demand) -> UserRequest {
        UserRequest {
            id: RequestId(id),
            head: Address {
                node: NodeId(0),
                identifier: 0,
            },
            tail: Address {
                node: NodeId(3),
                identifier: 0,
            },
            min_fidelity: 0.8,
            demand,
            request_type: RequestType::Keep,
            final_state: None,
        }
    }

    fn rate(id: u64, r: f64) -> UserRequest {
        req(id, Demand::Rate { pairs_per_sec: r })
    }

    #[test]
    fn accept_within_bandwidth() {
        let p = Policer::new(10.0);
        assert_eq!(p.decide(&rate(1, 4.0)), AdmitDecision::Accept);
    }

    #[test]
    fn reject_over_allocation() {
        let p = Policer::new(10.0);
        assert!(matches!(p.decide(&rate(1, 11.0)), AdmitDecision::Reject(_)));
    }

    #[test]
    fn shape_when_bandwidth_busy() {
        let mut p = Policer::new(10.0);
        p.admit(&rate(1, 8.0));
        assert_eq!(p.decide(&rate(2, 4.0)), AdmitDecision::Shape);
        assert_eq!(p.decide(&rate(3, 2.0)), AdmitDecision::Accept);
    }

    #[test]
    fn release_unshapes_fifo() {
        let mut p = Policer::new(10.0);
        p.admit(&rate(1, 8.0));
        p.shape(rate(2, 6.0));
        p.shape(rate(3, 1.0));
        // Request 3 would fit, but FIFO shaping holds it behind request 2.
        assert!(p.admissible_shaped().is_empty());
        p.release(RequestId(1));
        let drained = p.admissible_shaped();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, RequestId(2));
        assert_eq!(drained[1].id, RequestId(3));
        assert!((p.total_eer() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_eer_requests_always_accepted() {
        let mut p = Policer::new(5.0);
        // No-deadline requests have min EER 0 — the Fig 8 configuration
        // where all requests are admitted.
        for i in 0..20 {
            let r = req(
                i,
                Demand::Pairs {
                    n: 100,
                    deadline: None,
                },
            );
            assert_eq!(p.decide(&r), AdmitDecision::Accept);
            p.admit(&r);
        }
        assert_eq!(p.active_len(), 20);
    }

    #[test]
    fn advertised_rate_full_when_non_rate_requests_active() {
        let mut p = Policer::new(10.0);
        p.admit(&rate(1, 2.0));
        assert!((p.advertised_rate() - 2.0).abs() < 1e-12);
        p.admit(&req(
            2,
            Demand::Pairs {
                n: 5,
                deadline: None,
            },
        ));
        assert!((p.advertised_rate() - 10.0).abs() < 1e-12);
        p.release(RequestId(2));
        assert!((p.advertised_rate() - 2.0).abs() < 1e-12);
        p.release(RequestId(1));
        assert_eq!(p.advertised_rate(), 0.0);
    }

    #[test]
    fn link_weight_scales_with_rate_fraction() {
        assert!((link_weight(50.0, 10.0, 10.0) - 50.0).abs() < 1e-12);
        assert!((link_weight(50.0, 10.0, 5.0) - 25.0).abs() < 1e-12);
        assert!(link_weight(50.0, 10.0, 0.0) > 0.0, "never zero weight");
    }

    #[test]
    fn deadline_requests_use_n_over_t() {
        let p = Policer::new(10.0);
        let r = req(
            1,
            Demand::Pairs {
                n: 100,
                deadline: Some(SimDuration::from_secs(5)),
            },
        );
        // 100/5 = 20 > 10: reject.
        assert!(matches!(p.decide(&r), AdmitDecision::Reject(_)));
    }
}
