//! **Figure 9** — average latency vs throughput of the A0-B0 circuit as
//! the rate of 3-pair requests increases, in an empty network and in a
//! congested one (long-running A1-B1 flow competing for the bottleneck).
//!
//! Paper shapes to reproduce:
//! * latency is flat until the circuit saturates, then blows up;
//! * the congested circuit saturates at **more than half** the empty
//!   network's rate (the bottleneck slows every circuit, so the other
//!   links more often have a pair ready when the bottleneck delivers).
//!
//! Run: `cargo bench --bench fig9_latency_throughput`
//! (knob: `QNP_RUNS`, default 3).

use qn_bench::{fig9_scenario, runs};
use qn_sim::SimDuration;

fn main() {
    let n_runs = runs(3);
    println!("# Figure 9 — latency vs throughput (runs={n_runs})");
    // Request intervals from sparse to past saturation.
    let intervals_ms: [u64; 8] = [2000, 1000, 500, 300, 200, 150, 100, 70];

    let mut saturation = [0.0f64; 2];
    for (case_idx, congested) in [false, true].into_iter().enumerate() {
        println!(
            "#\n# case: {}",
            if congested {
                "congested (A1-B1 busy)"
            } else {
                "empty network"
            }
        );
        println!(
            "# interval_ms   throughput_pairs_per_s   mean_latency_s   p5_s   p95_s   requests"
        );
        for interval in intervals_ms {
            let mut thr = 0.0;
            let mut lat = 0.0;
            let mut p5 = 0.0;
            let mut p95 = 0.0;
            let mut measured = 0usize;
            let mut lat_count = 0usize;
            for seed in 0..n_runs {
                let p = fig9_scenario(2000 + seed, congested, SimDuration::from_millis(interval));
                thr += p.throughput;
                if p.mean_latency.is_finite() {
                    lat += p.mean_latency;
                    p5 += p.p5;
                    p95 += p.p95;
                    lat_count += 1;
                }
                measured += p.measured;
            }
            thr /= n_runs as f64;
            let (lat, p5, p95) = if lat_count > 0 {
                let k = lat_count as f64;
                (lat / k, p5 / k, p95 / k)
            } else {
                (f64::NAN, f64::NAN, f64::NAN)
            };
            println!("{interval:11}   {thr:22.2}   {lat:14.3}   {p5:5.3}  {p95:6.3}   {measured}");
            saturation[case_idx] = saturation[case_idx].max(thr);
        }
    }

    println!("#\n# shape checks");
    let ratio = saturation[1] / saturation[0];
    println!(
        "# saturation: empty {:.2} pairs/s, congested {:.2} pairs/s, ratio {ratio:.2}",
        saturation[0], saturation[1]
    );
    println!(
        "# congested saturates at more than half the empty rate: {}",
        if ratio > 0.5 { "PASS" } else { "WARN" }
    );
}
