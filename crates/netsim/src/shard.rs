//! Shard planning for conservative-lookahead sharded runs.
//!
//! A [`ShardPlan`] partitions a topology's nodes into shards and
//! derives, from the classical plane's channel model, the **lookahead**:
//! the minimum latency any cross-shard message can have. That bound is
//! physical — every inter-node event travels over a fibre hop and pays
//! at least `propagation + processing_delay + extra_message_delay`
//! (jitter only ever adds) — so events executing inside one epoch
//! window `[t, t + lookahead)` on different shards cannot affect each
//! other, the classic Chandy–Misra–Bryant argument.
//!
//! Two rules keep the bound honest:
//!
//! * **Zero-latency hops share a shard.** A link whose channel lower
//!   bound is zero (zero-length fibre and no processing delay) offers
//!   no lookahead; its endpoints are merged into one shard (union-find)
//!   so the bound only ranges over hops that actually pay latency.
//! * **Global machinery lives on shard 0.** Circuit-scoped scenario
//!   hooks, checkpoint sweeps and component faults touch cross-network
//!   state and are routed to shard 0 rather than pretending they have a
//!   home node.
//!
//! The plan drives [`qn_sim::ShardedSimulation`] (verification mode):
//! per-shard queues, epoch/mailbox accounting, and a trajectory
//! bit-identical to the single-queue engine by construction.

use crate::runtime::{Ev, RuntimeConfig};
use qn_routing::topology::Topology;
use qn_sim::shard::Router;
use qn_sim::{LinkId, NodeId, SimDuration};

/// A node-to-shard assignment plus the conservative lookahead it
/// supports. Build one with [`ShardPlan::new`]; feed it to
/// [`crate::build::NetworkBuilder::shards`] via the builder (the normal
/// path) or inspect it directly in tests.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    n_shards: usize,
    /// Shard of each node, indexed by `NodeId.0` (holes map to 0).
    node_shard: Vec<usize>,
    /// Home shard of each link (the shard of its lower endpoint),
    /// indexed by `LinkId.0`.
    link_home: Vec<usize>,
    lookahead: SimDuration,
}

/// The hard lower bound on the classical latency of one hop: fibre
/// propagation plus the per-hop processing and injected extra delay.
/// Jitter is excluded — it is a non-negative addition.
fn hop_lower_bound(topology: &Topology, cfg: &RuntimeConfig, link: LinkId) -> SimDuration {
    let spec = topology.link(link);
    spec.physics.fibre().propagation_delay() + cfg.processing_delay + cfg.extra_message_delay
}

/// Union-find over node ranks, path-halving, no union by rank — the
/// deterministic tie-break (smaller root wins) matters more than the
/// tree depth at these sizes.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.0[hi] = lo;
    }
}

impl ShardPlan {
    /// Partition `topology` into (at most) `shards` shards under the
    /// channel model of `cfg`.
    ///
    /// Nodes are split into contiguous ranges by id rank, then the
    /// endpoints of every zero-lower-bound hop are merged and shard ids
    /// are re-compacted, so the effective shard count can come out
    /// lower than requested (1 at minimum). The lookahead is the
    /// minimum [`hop_lower_bound`] over hops that ended up crossing
    /// shards; a plan with no crossing hops keeps the minimum over all
    /// positive hops (or 1 ps for a linkless topology) so the epoch
    /// window stays well-defined.
    ///
    /// # Panics
    ///
    /// If `shards` is zero — the builder validates its knob before this
    /// runs, so hitting the assert means a driver bug.
    pub fn new(topology: &Topology, cfg: &RuntimeConfig, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let nodes = topology.nodes();
        let n_nodes = nodes.len().max(1);
        let want = shards.min(n_nodes);

        // Contiguous ranges over id rank: shard(rank) = rank·want/n.
        let mut rank_shard: Vec<usize> = (0..n_nodes).map(|r| r * want / n_nodes).collect();

        // Merge endpoints of hops that offer no lookahead.
        let rank_of = |id: NodeId| nodes.binary_search(&id).expect("link endpoint exists");
        let mut uf = UnionFind::new(n_nodes);
        for spec in topology.links() {
            if hop_lower_bound(topology, cfg, spec.id) == SimDuration::ZERO {
                uf.union(rank_of(spec.a), rank_of(spec.b));
            }
        }
        for r in 0..n_nodes {
            let root = uf.find(r);
            rank_shard[r] = rank_shard[root];
        }

        // Compact shard ids in order of first appearance over ranks.
        let mut dense: Vec<Option<usize>> = vec![None; want];
        let mut next = 0usize;
        for s in rank_shard.iter_mut() {
            let d = *dense[*s].get_or_insert_with(|| {
                let d = next;
                next += 1;
                d
            });
            *s = d;
        }
        let n_shards = next.max(1);

        let max_id = nodes.last().map(|n| n.0 as usize + 1).unwrap_or(0);
        let mut node_shard = vec![0usize; max_id];
        for (r, id) in nodes.iter().enumerate() {
            node_shard[id.0 as usize] = rank_shard[r];
        }
        let link_home: Vec<usize> = topology
            .links()
            .iter()
            .map(|spec| node_shard[spec.a.min(spec.b).0 as usize])
            .collect();

        // The lookahead: tightest hop that actually crosses shards.
        let crossing = topology
            .links()
            .iter()
            .filter(|spec| node_shard[spec.a.0 as usize] != node_shard[spec.b.0 as usize])
            .map(|spec| hop_lower_bound(topology, cfg, spec.id))
            .min();
        let lookahead = crossing
            .or_else(|| {
                topology
                    .links()
                    .iter()
                    .map(|spec| hop_lower_bound(topology, cfg, spec.id))
                    .filter(|&d| d > SimDuration::ZERO)
                    .min()
            })
            .unwrap_or(SimDuration::from_ps(1));
        debug_assert!(lookahead > SimDuration::ZERO, "crossing hops pay latency");

        ShardPlan {
            n_shards,
            node_shard,
            link_home,
            lookahead,
        }
    }

    /// Effective number of shards (≤ requested: zero-latency merges and
    /// small topologies compact it).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The conservative lookahead bound: no cross-shard message can
    /// arrive sooner than this after it is sent.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The shard a node lives on.
    pub fn node_shard(&self, node: NodeId) -> usize {
        self.node_shard.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// The home shard of a link's generation process (its lower
    /// endpoint's shard).
    pub fn link_home(&self, link: LinkId) -> usize {
        self.link_home.get(link.0 as usize).copied().unwrap_or(0)
    }

    /// Route one event to its shard: node-scoped events to the node's
    /// shard, link generation to the link's home, circuit-scoped hooks
    /// and global machinery to shard 0.
    pub fn route(&self, ev: &Ev) -> usize {
        match ev {
            Ev::BatchDeliver { to, .. } => self.node_shard(*to),
            Ev::TrackExpiry { node, .. }
            | Ev::OrphanCheck { node, .. }
            | Ev::SwapDone { node, .. }
            | Ev::MeasureDone { node, .. }
            | Ev::Cutoff { node, .. }
            | Ev::MoveDone { node, .. }
            | Ev::TrackRetransmit { node, .. }
            | Ev::RequestResend { node, .. } => self.node_shard(*node),
            Ev::GenDone { link } => self.link_home(*link),
            Ev::SignalKick { .. }
            | Ev::SignalRetransmit { .. }
            | Ev::SubmitRequest { .. }
            | Ev::CancelRequest { .. }
            | Ev::Teardown { .. }
            | Ev::Checkpoint
            | Ev::ComponentFault { .. } => 0,
        }
    }

    /// Box the plan up as a [`qn_sim::ShardedQueues`] router.
    pub fn router(&self) -> Router<Ev> {
        let plan = self.clone();
        Box::new(move |ev| plan.route(ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_hardware::heralding::LinkPhysics;
    use qn_hardware::params::{FibreParams, HardwareParams};
    use qn_routing::topology::{chain, Topology};

    fn cfg() -> RuntimeConfig {
        RuntimeConfig::default()
    }

    #[test]
    fn contiguous_ranges_cover_all_shards() {
        let topology = chain(8, HardwareParams::simulation(), FibreParams::lab_2m());
        let plan = ShardPlan::new(&topology, &cfg(), 4);
        assert_eq!(plan.n_shards(), 4);
        let shards: Vec<usize> = (0..8).map(|i| plan.node_shard(NodeId(i))).collect();
        assert_eq!(shards, [0, 0, 1, 1, 2, 2, 3, 3]);
        // Monotone over node rank, every shard non-empty.
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lookahead_is_the_tightest_crossing_hop() {
        let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
        let c = cfg();
        let plan = ShardPlan::new(&topology, &c, 2);
        let expected = hop_lower_bound(&topology, &c, topology.links()[0].id);
        assert_eq!(plan.lookahead(), expected);
        assert!(plan.lookahead() > SimDuration::ZERO);
        // Default config: 2 m of fibre + 5 µs processing.
        assert!(plan.lookahead() >= SimDuration::from_micros(5));
    }

    #[test]
    fn zero_latency_hops_are_forced_into_one_shard() {
        // A 4-chain whose middle hop has zero length, under a config
        // with no processing delay: nodes 1 and 2 offer no lookahead
        // between them and must share a shard.
        let params = HardwareParams::simulation();
        let mut topology = Topology::new();
        topology.add_link(
            NodeId(0),
            NodeId(1),
            LinkPhysics::new(params.clone(), FibreParams::lab_2m()),
        );
        topology.add_link(
            NodeId(1),
            NodeId(2),
            LinkPhysics::new(params.clone(), FibreParams::telecom(0.0)),
        );
        topology.add_link(
            NodeId(2),
            NodeId(3),
            LinkPhysics::new(params, FibreParams::lab_2m()),
        );
        let mut c = cfg();
        c.processing_delay = SimDuration::ZERO;
        let plan = ShardPlan::new(&topology, &c, 4);
        assert_eq!(
            plan.node_shard(NodeId(1)),
            plan.node_shard(NodeId(2)),
            "a zero-latency hop cannot cross shards"
        );
        assert!(plan.n_shards() < 4, "the merge compacts the shard count");
        assert!(plan.lookahead() > SimDuration::ZERO);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let topology = chain(3, HardwareParams::simulation(), FibreParams::lab_2m());
        let plan = ShardPlan::new(&topology, &cfg(), 64);
        assert_eq!(plan.n_shards(), 3);
    }

    #[test]
    fn global_events_route_to_shard_zero() {
        let topology = chain(6, HardwareParams::simulation(), FibreParams::lab_2m());
        let plan = ShardPlan::new(&topology, &cfg(), 3);
        assert_eq!(plan.route(&Ev::Checkpoint), 0);
        assert_eq!(
            plan.route(&Ev::Cutoff {
                node: NodeId(5),
                circuit: qn_net::ids::CircuitId(1),
                side: qn_net::routing_table::LinkSide::Upstream,
                correlator: qn_net::ids::Correlator {
                    node_a: NodeId(4),
                    node_b: NodeId(5),
                    seq: 7,
                },
            }),
            plan.node_shard(NodeId(5))
        );
        assert_eq!(
            plan.route(&Ev::GenDone {
                link: topology.links()[4].id
            }),
            plan.link_home(topology.links()[4].id)
        );
    }
}
