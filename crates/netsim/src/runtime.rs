//! The network simulation runtime: the discrete-event [`Model`] that
//! wires the hardware substrate, the link layer and the QNP node state
//! machines together.
//!
//! Responsibilities (everything the sans-IO cores delegate):
//!
//! * classical messaging — reliable, in-order, per-hop FIFO channels with
//!   propagation + processing delay and Fig 10c's injectable extra delay;
//! * link-pair generation — geometric fast-forward sampling of the
//!   heralding process, qubit reservation at both ends (the Fig 8c
//!   congestion mechanism), physical pair creation, nuclear dephasing of
//!   stored qubits at the endpoint devices;
//! * quantum operations — timed noisy swaps and measurements against the
//!   [`PairStore`], cutoff timers, pair release bookkeeping;
//! * near-term mode — single communication qubit per node with explicit
//!   move-to-carbon-storage before a repeater can serve its second link
//!   (Fig 11);
//! * application accounting — the [`AppHarness`] with oracle annotations.

use crate::app::{AppHarness, DeliveryRecord, Payload};
use crate::classical::{BatchId, ChannelModel, ClassicalFaults, ClassicalPlane, ClassicalStats};
use crate::faults::{ComponentEvent, FaultPlan};
use qn_hardware::device::{QDevice, QubitId};
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::pairs::{PairId, PairStore, SwapNoise};
use qn_link::{LinkEvent, LinkLabel, LinkProtocol, LinkRequest, PairDemand};
use qn_net::events::{AppEvent, DeliveryKind, NetInput, NetOutput, PairInfo};
use qn_net::ids::{CircuitId, Correlator, PairHandle, PairRef, RequestId};
use qn_net::messages::{Message, Track, TrackAck};
use qn_net::node::NodeStats;
use qn_net::request::UserRequest;
use qn_net::routing_table::LinkSide;
use qn_net::QnpNode;
use qn_quantum::gates::Pauli;
use qn_routing::signalling::InstalledCircuit;
use qn_routing::topology::Topology;
use qn_sim::{
    Context, EventId, LinkId, Model, NodeId, SimDuration, SimRng, SimTime, Trace, TraceKind,
};

/// When the runtime advances decoherence across the whole pair store.
///
/// The default (`OnTouch`) is the lazy discipline the baselines were
/// recorded under: each pair is advanced at exactly the `SimTime`s an
/// operation touches it, so elapsed-time decay composes identically and
/// `dm` trajectories stay bit-identical. `Interval` additionally runs
/// the slab sweep ([`qn_hardware::PairStore::advance_all`]) on a fixed
/// period — useful for sustained open-world runs where the sweep keeps
/// idle-pair decay amortised and cache-linear. Interval checkpoints
/// change *where* the (divisible) T1/T2 channels are cut, which agrees
/// with the lazy path to ~1e-12 per step (pinned by
/// `prop_decoherence_sweep.rs`) but is not bit-identical; scenarios
/// that gate on tolerance-0 baselines record their baseline with the
/// same policy they run under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Advance each pair lazily, at exactly the times operations touch
    /// it (baseline-compatible; the default).
    OnTouch,
    /// Lazy advancement plus a periodic whole-store sweep every
    /// interval. The rescheduling checkpoint event keeps the queue
    /// non-empty: run such simulations with `run_until`, not `run`.
    Interval(SimDuration),
}

/// Retransmission knobs for wire-borne signalling
/// ([`RuntimeConfig::signalling_on_wire`]). Backoff is a deterministic
/// doubling of `base` per attempt — no RNG draws, so a fault-free run
/// with retransmission configured stays bit-identical to one without.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Give up on a frame after this many re-sends (the abandonment is
    /// counted in [`ClassicalStats::retransmits_abandoned`]).
    pub max_retries: u32,
    /// Delay before the first retry; attempt `n` waits `base << n`.
    pub base: SimDuration,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            max_retries: 8,
            base: SimDuration::from_millis(10),
        }
    }
}

/// Runtime configuration knobs.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Pair-state representation (`QNP_QSTATE`): the Bell-diagonal
    /// fast path (default) or dense density matrices.
    pub state_rep: qn_hardware::StateRep,
    /// Per-hop message processing delay (on top of fibre propagation).
    pub processing_delay: SimDuration,
    /// Extra injected per-hop delay (Fig 10c sweep).
    pub extra_message_delay: SimDuration,
    /// Uniform per-message jitter bound (the reliable transport still
    /// delivers in order).
    pub message_jitter: SimDuration,
    /// Classical-plane fault injection (default off: the reliable
    /// in-order plane of the paper, bit-identical to the pre-fault
    /// runtime).
    pub faults: ClassicalFaults,
    /// Expire unconfirmed in-transit pairs at end-nodes after this long
    /// (default `None`). Only useful on a faulty plane, where a chain's
    /// TRACK/EXPIRE can be lost — on a reliable plane end-nodes never
    /// need timers (§4.1 "Cutoff time").
    pub track_timeout: Option<SimDuration>,
    /// Communication qubits dedicated to each link at each node
    /// (Appendix B: two in the main simulations).
    pub comm_per_link: usize,
    /// Near-term mode: one shared electron + carbon storage per node.
    pub near_term: bool,
    /// Carbon storage qubits per node (near-term mode).
    pub carbons: usize,
    /// Disable intermediate cutoff timers (the Fig 10 oracle baseline).
    pub disable_cutoff: bool,
    /// Whole-store decoherence checkpointing (see [`CheckpointPolicy`]).
    pub checkpoint: CheckpointPolicy,
    /// Record a human-readable trace.
    pub trace: bool,
    /// Carry link-layer (PAIR_READY/REQUEST_DONE/REJECTED) and routing
    /// signalling (INSTALL/TEARDOWN) frames over the classical plane —
    /// with real latency, batching and fault injection — instead of the
    /// default instantaneous local codec round-trip. Enables the
    /// hop-by-hop INSTALL/TEARDOWN ack chain and end-to-end TRACK
    /// acknowledgement + retransmission. Default off: every recorded
    /// baseline was produced without it and stays bit-identical.
    pub signalling_on_wire: bool,
    /// Retransmission bounds and backoff (only consulted when
    /// `signalling_on_wire` is set).
    pub retransmit: RetransmitConfig,
    /// Component-level fault plan: scheduled and stochastic link
    /// outages and node crashes (see [`crate::faults::FaultPlan`]).
    /// The empty default plan schedules no events and draws no
    /// randomness — bit-identical to the pre-fault runtime.
    pub fault_plan: FaultPlan,
    /// Per-link overrides of the message-level fault model. Links not
    /// listed keep the global [`RuntimeConfig::faults`]. Empty by
    /// default; the no-override path is bit-identical to the global
    /// path (same single `classical-faults` RNG substream, same draw
    /// order).
    pub link_faults: Vec<(NodeId, NodeId, ClassicalFaults)>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            state_rep: qn_hardware::StateRep::from_env(),
            processing_delay: SimDuration::from_micros(5),
            extra_message_delay: SimDuration::ZERO,
            message_jitter: SimDuration::ZERO,
            faults: ClassicalFaults::OFF,
            track_timeout: None,
            comm_per_link: 2,
            near_term: false,
            carbons: 0,
            disable_cutoff: false,
            checkpoint: CheckpointPolicy::OnTouch,
            trace: false,
            signalling_on_wire: false,
            retransmit: RetransmitConfig::default(),
            fault_plan: FaultPlan::new(),
            link_faults: Vec::new(),
        }
    }
}

/// The event alphabet of the network model.
pub enum Ev {
    /// A coalesced batch of encoded classical frames arrives at a node.
    /// The receiver drains the batch in order, borrow-decoding each
    /// inner frame (`qn_net::wire::MessageView`); frames that fail to
    /// decode are counted and dropped — the bytes, not the structs, are
    /// the interface.
    BatchDeliver {
        /// Receiving node.
        to: NodeId,
        /// Whether the sender is the receiver's upstream neighbour (the
        /// batch lane: frames only coalesce within one orientation).
        from_upstream: bool,
        /// The plane's open-batch handle to drain.
        batch: BatchId,
        /// The physical hop the batch travels on. A component fault can
        /// take the hop down while the batch is in flight: delivery
        /// checks the link (and receiver) are still up and otherwise
        /// drops the whole batch on the floor.
        link: LinkId,
    },
    /// A track-timeout armed for an unconfirmed end-node pair fired
    /// (faulty-plane resilience; never armed by default).
    TrackExpiry {
        /// The end-node holding the pair.
        node: NodeId,
        /// The pair's circuit.
        circuit: CircuitId,
        /// The pair's correlator.
        correlator: Correlator,
    },
    /// Wire mode: check that the PAIR_READY announcing this pair actually
    /// arrived. A qubit whose announcement was lost is invisible to the
    /// QNP — no cutoff timer, no TRACK handling — so the runtime reclaims
    /// it and tells the protocol the correlator is dead.
    OrphanCheck {
        /// The node holding the (possibly orphaned) qubit.
        node: NodeId,
        /// The pair's circuit.
        circuit: CircuitId,
        /// The pair's correlator.
        correlator: Correlator,
        /// Which of the node's links produced it.
        side: LinkSide,
    },
    /// A link generation process heralds success.
    GenDone {
        /// The link that succeeded.
        link: LinkId,
    },
    /// A swap circuit finishes at a node.
    ///
    /// Pairs are referenced by correlator and resolved to physical pairs
    /// at completion time: the neighbour at the other end of a link pair
    /// may have swapped it meanwhile (its gates act on disjoint qubits,
    /// so sequential application of the two swaps is exact).
    SwapDone {
        /// Swapping node.
        node: NodeId,
        /// Circuit of the swap.
        circuit: CircuitId,
        /// Correlator of the upstream pair.
        up: Correlator,
        /// Correlator of the downstream pair.
        down: Correlator,
    },
    /// A readout finishes at a node.
    MeasureDone {
        /// Measuring node.
        node: NodeId,
        /// Circuit of the measured pair.
        circuit: CircuitId,
        /// The measured pair's correlator at this node.
        correlator: Correlator,
        /// Measurement basis.
        basis: Pauli,
    },
    /// A cutoff timer fires.
    Cutoff {
        /// Node holding the pair.
        node: NodeId,
        /// Circuit of the pair.
        circuit: CircuitId,
        /// Which link the pair belongs to at this node.
        side: LinkSide,
        /// The pair's correlator.
        correlator: Correlator,
    },
    /// A move-to-carbon-storage completes (near-term mode).
    MoveDone {
        /// Node performing the move.
        node: NodeId,
        /// The moved pair.
        pair: PairId,
        /// Destination storage qubit.
        storage: QubitId,
        /// The link whose pair is being stored (for the deferred
        /// network-layer notification).
        link: LinkId,
        /// Deferred LinkPair info to deliver to the local QNP.
        circuit: CircuitId,
        /// Side of the circuit at this node.
        side: LinkSide,
        /// The pair announcement.
        info: PairInfo,
    },
    /// A TRACK retransmission timer fired at the end-node that
    /// originated the chain (`signalling_on_wire` only). The node
    /// re-sends its TRACK unless the chain was acknowledged meanwhile.
    TrackRetransmit {
        /// The originating end-node.
        node: NodeId,
        /// The chain's circuit.
        circuit: CircuitId,
        /// Correlator of the origin link pair (the retransmit key).
        origin: Correlator,
    },
    /// Start a wire-borne circuit installation at the head of the path
    /// (`signalling_on_wire` only): the head installs locally and sends
    /// the first INSTALL frame to its downstream neighbour.
    SignalKick {
        /// The circuit to install.
        circuit: CircuitId,
    },
    /// A routing-signalling retransmission timer fired: the INSTALL (or
    /// TEARDOWN, once tearing) from `path[hop]` to `path[hop + 1]` was
    /// never acknowledged.
    SignalRetransmit {
        /// The circuit being signalled.
        circuit: CircuitId,
        /// Index of the *sending* node on the circuit's path.
        hop: usize,
    },
    /// A scheduled redundant copy of an idempotent request-level
    /// message (FORWARD/COMPLETE) on a lossy wire (`signalling_on_wire`
    /// with loss faults): the request fan-out is one-shot in the
    /// protocol and wedges the circuit forever if a copy is lost, so
    /// the runtime re-sends it on a bounded deterministic backoff —
    /// receivers absorb the duplicates — instead of adding an ack
    /// channel the paper doesn't have.
    RequestResend {
        /// The re-sending node.
        node: NodeId,
        /// The circuit the message rides on.
        circuit: CircuitId,
        /// Direction of the original send.
        downstream: bool,
        /// Copies already scheduled (bounds the redundancy).
        attempt: u32,
        /// The message to re-send, verbatim.
        msg: Message,
    },
    /// Scenario hook: submit an application request at the head-end.
    SubmitRequest {
        /// Circuit to use.
        circuit: CircuitId,
        /// The request.
        request: UserRequest,
    },
    /// Scenario hook: cancel a request at the head-end.
    CancelRequest {
        /// Circuit carrying the request.
        circuit: CircuitId,
        /// The request to cancel.
        request: RequestId,
    },
    /// Scenario hook: tear the circuit down at every node (loss of
    /// classical connectivity, operator action).
    Teardown {
        /// The circuit to remove.
        circuit: CircuitId,
    },
    /// Periodic whole-store decoherence sweep
    /// ([`CheckpointPolicy::Interval`]); reschedules itself.
    Checkpoint,
    /// A component fault from the run's [`FaultPlan`] comes due: a link
    /// goes down or comes back, a node crashes or restarts. The whole
    /// schedule is expanded (deterministically per seed) before the run
    /// starts; an empty plan schedules none of these.
    ComponentFault {
        /// What happens to which component.
        event: ComponentEvent,
    },
}

struct NodeRt {
    qnp: QnpNode,
    device: QDevice,
    /// False while the node is crashed: it processes no frames, its
    /// links do not generate, and its volatile protocol state is gone.
    up: bool,
}

struct Inflight {
    label: LinkLabel,
    alpha: f64,
    attempts: u64,
    started: SimTime,
    event: EventId,
    qubit_a: (NodeId, QubitId),
    qubit_b: (NodeId, QubitId),
}

struct LinkRt {
    proto: LinkProtocol,
    physics: LinkPhysics,
    a: NodeId,
    b: NodeId,
    inflight: Option<Inflight>,
    /// False while the link itself is administratively/physically down
    /// (a [`ComponentEvent::LinkDown`]). Distinct from the protocol's
    /// paused flag, which also covers endpoint crashes: the link is
    /// only active when it is up *and* both endpoints are up.
    up: bool,
}

struct LabelInfo {
    circuit: CircuitId,
    /// The path-earlier node of this link (the circuit's upstream side).
    upstream_node: NodeId,
}

struct CircuitRt {
    path: Vec<NodeId>,
    /// Fidelity target (for metrics only).
    threshold: f64,
}

impl CircuitRt {
    /// The (upstream, downstream) neighbours of `node` on this circuit.
    /// Paths are a handful of hops; a linear scan beats any map.
    fn neighbours(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        let i = self
            .path
            .iter()
            .position(|n| *n == node)
            .expect("node is on the circuit path");
        let up = (i > 0).then(|| self.path[i - 1]);
        let down = (i + 1 < self.path.len()).then(|| self.path[i + 1]);
        (up, down)
    }
}

/// Retransmission state for one unacknowledged TRACK at its origin
/// end-node, keyed `(node, origin correlator)` in a [`NodeTable`].
#[derive(Clone, Copy)]
struct TrackRetry {
    /// Retries already sent.
    attempt: u32,
    /// The armed [`Ev::TrackRetransmit`] (cancelled on TRACK_ACK).
    event: EventId,
    /// Direction the original TRACK was sent in.
    downstream: bool,
    /// The frame to re-send, verbatim.
    track: Track,
}

/// Retransmission timer for one unacknowledged signalling hop.
#[derive(Clone, Copy)]
struct SignalRetry {
    attempt: u32,
    event: EventId,
}

/// Wire-borne signalling state of one circuit (`signalling_on_wire`):
/// the INSTALL/TEARDOWN chain walks the path hop by hop, each hop acked
/// and retransmitted independently. The struct outlives the circuit so
/// that late duplicates of already-processed frames still draw a re-ack
/// (which is what stops the sender's retransmission).
struct SignalRt {
    path: Vec<NodeId>,
    /// Routing entries aligned with `path` (cutoff overrides applied).
    entries: Vec<qn_net::routing_table::RoutingEntry>,
    /// Whether `path[i]` has processed its INSTALL.
    installed: Vec<bool>,
    /// Whether `path[i]` has processed its TEARDOWN.
    torn: Vec<bool>,
    /// Teardown supersedes installation (stale INSTALL acks are ignored
    /// once set, so they cannot cancel a TEARDOWN retransmit timer).
    tearing: bool,
    /// `pending[i]` guards the unacked frame from `path[i]` to
    /// `path[i + 1]`.
    pending: Vec<Option<SignalRetry>>,
}

/// Deterministic, draw-free exponential backoff: `base << attempt`,
/// saturating.
fn backoff(base: SimDuration, attempt: u32) -> SimDuration {
    SimDuration::from_ps(base.as_ps().saturating_mul(1u64 << attempt.min(20)))
}

/// Dense per-node correlator table: the runtime's `(NodeId, Correlator)
/// -> T` maps, stored as one short row per node. A node's row holds one
/// entry per qubit it currently has entangled — bounded by its memory
/// size, not by circuit count — so lookups are a short linear scan and
/// idle circuits cost nothing.
struct NodeTable<T> {
    rows: Vec<Vec<(Correlator, T)>>,
}

impl<T: Copy> NodeTable<T> {
    fn new(n_nodes: usize) -> Self {
        NodeTable {
            rows: (0..n_nodes).map(|_| Vec::new()).collect(),
        }
    }

    /// Insert or overwrite the entry for `(node, c)`.
    fn insert(&mut self, node: NodeId, c: Correlator, value: T) {
        let row = &mut self.rows[node.0 as usize];
        match row.iter_mut().find(|(k, _)| *k == c) {
            Some(entry) => entry.1 = value,
            None => row.push((c, value)),
        }
    }

    fn get(&self, node: NodeId, c: Correlator) -> Option<T> {
        self.rows[node.0 as usize]
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, v)| *v)
    }

    fn remove(&mut self, node: NodeId, c: Correlator) -> Option<T> {
        let row = &mut self.rows[node.0 as usize];
        let i = row.iter().position(|(k, _)| *k == c)?;
        Some(row.swap_remove(i).1)
    }

    /// Take the whole row of `node` (a crashed node loses every entry
    /// at once).
    fn drain_row(&mut self, node: NodeId) -> Vec<(Correlator, T)> {
        std::mem::take(&mut self.rows[node.0 as usize])
    }

    /// Total entries across all rows (leak introspection).
    fn len(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Reverse references `pair -> (node, correlator)` views, stored
/// slab-parallel to the [`PairStore`]: slot `i` belongs to the pair
/// whose id currently occupies slab slot `i` (the full id bits are kept
/// for the generation check). Vacated slots keep their `Vec` capacity
/// for the slot's next occupant, so steady-state churn does not
/// allocate; iteration is slot-ordered and thus deterministic.
struct PairRefs {
    slots: Vec<(u64, Vec<(NodeId, Correlator)>)>,
}

/// Slot id marking a vacant [`PairRefs`] entry.
const REFS_VACANT: u64 = u64::MAX;

impl PairRefs {
    fn new() -> Self {
        PairRefs { slots: Vec::new() }
    }

    fn slot_mut(&mut self, pid: PairId) -> &mut (u64, Vec<(NodeId, Correlator)>) {
        let i = pid.index();
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || (REFS_VACANT, Vec::new()));
        }
        &mut self.slots[i]
    }

    /// Register a fresh two-ended pair, reusing the slot's capacity.
    fn insert_pair(&mut self, pid: PairId, a: (NodeId, Correlator), b: (NodeId, Correlator)) {
        let slot = self.slot_mut(pid);
        slot.0 = pid.0;
        slot.1.clear();
        slot.1.push(a);
        slot.1.push(b);
    }

    /// Register a pair with an explicit reference list (swap re-pointing).
    fn insert(&mut self, pid: PairId, ends: Vec<(NodeId, Correlator)>) {
        let slot = self.slot_mut(pid);
        slot.0 = pid.0;
        slot.1 = ends;
    }

    fn get_mut(&mut self, pid: PairId) -> Option<&mut Vec<(NodeId, Correlator)>> {
        let slot = self.slots.get_mut(pid.index())?;
        (slot.0 == pid.0).then_some(&mut slot.1)
    }

    /// Vacate the pair's slot, returning its references (the slot keeps
    /// no capacity — the caller usually re-inserts the `Vec` elsewhere).
    fn take(&mut self, pid: PairId) -> Option<Vec<(NodeId, Correlator)>> {
        let slot = self.slots.get_mut(pid.index())?;
        if slot.0 != pid.0 {
            return None;
        }
        slot.0 = REFS_VACANT;
        Some(std::mem::take(&mut slot.1))
    }

    /// Vacate the pair's slot in place (keeps the `Vec` capacity for the
    /// slot's next occupant).
    fn remove(&mut self, pid: PairId) {
        if let Some(slot) = self.slots.get_mut(pid.index()) {
            if slot.0 == pid.0 {
                slot.0 = REFS_VACANT;
                slot.1.clear();
            }
        }
    }

    /// Iterate live entries in slot order (deterministic by
    /// construction, unlike the hash map this replaced).
    fn iter(&self) -> impl Iterator<Item = (PairId, &[(NodeId, Correlator)])> {
        self.slots
            .iter()
            .filter(|(id, _)| *id != REFS_VACANT)
            .map(|(id, ends)| (PairId(*id), ends.as_slice()))
    }
}

/// The complete network simulation model.
pub struct NetworkModel {
    topology: Topology,
    cfg: RuntimeConfig,
    nodes: Vec<NodeRt>,
    links: Vec<LinkRt>,
    /// All live entangled pairs.
    pub pairs: PairStore,
    /// (node, correlator) -> physical pair currently holding that qubit.
    qubit_owner: NodeTable<PairId>,
    /// Reverse references: pair -> (node, correlator) views.
    refs: PairRefs,
    /// Per-link label table: one short row per link, scanned linearly
    /// (a link carries a handful of circuit labels).
    label_map: Vec<Vec<(LinkLabel, LabelInfo)>>,
    /// Circuit runtime state indexed by `CircuitId` (ids are allocated
    /// densely from 1 by the signaller; torn-down slots go `None`).
    circuits: Vec<Option<CircuitRt>>,
    cutoff_events: NodeTable<EventId>,
    /// Armed [`Ev::TrackExpiry`] timers: cancelled the moment the pair
    /// resolves, so a completed pair never sees a late timeout.
    track_expiry_events: NodeTable<EventId>,
    /// Unacknowledged TRACKs at their origin end-nodes
    /// (`signalling_on_wire` only).
    track_retransmits: NodeTable<TrackRetry>,
    /// PAIR_READY frames already delivered to a node's QNP: a
    /// duplication fault must not hand the protocol the same pair twice
    /// (`signalling_on_wire` only).
    link_delivered: NodeTable<()>,
    /// Wire-borne signalling chains, indexed like `circuits`
    /// (`signalling_on_wire` only; slots stay populated after teardown
    /// so late duplicates still draw re-acks).
    signal_state: Vec<Option<SignalRt>>,
    /// Application observations.
    pub app: AppHarness,
    /// Trace recorder (enabled via config).
    pub trace: Trace,
    rng_links: Vec<SimRng>,
    rng_nodes: Vec<SimRng>,
    rng_msgs: SimRng,
    plane: ClassicalPlane,
    /// Shared encode buffer: every outgoing frame (data plane and
    /// signalling) is encoded here instead of a fresh `Vec`.
    scratch: qn_net::wire::ScratchEncoder,
    /// Diagnostics: protocol-vs-omniscient state mismatches observed.
    pub state_mismatches: u64,
    /// Diagnostics: pairs released before use.
    pub discarded_pairs: u64,
    /// Per-link effective message-fault models (`Some` only when the
    /// config carries per-link overrides; `None` keeps the global
    /// [`RuntimeConfig::faults`] on the untouched fast path).
    link_fault_table: Option<Vec<ClassicalFaults>>,
    /// Whether *any* hop can lose frames — global loss/corruption
    /// faults, a per-link override with either, or a component fault
    /// plan (a downed hop eats frames). Gates the blind request-level
    /// redundancy: one-shot FORWARD/COMPLETE fan-out wedges a circuit
    /// forever if its only copy dies on such a hop.
    lossy_wire: bool,
}

impl NetworkModel {
    /// Build the model over a topology with the given seed and config.
    pub fn new(topology: Topology, seed: u64, cfg: RuntimeConfig) -> Self {
        cfg.faults
            .validate()
            .expect("classical fault probabilities");
        cfg.fault_plan
            .validate(&topology)
            .expect("component fault plan");
        let node_ids = topology.nodes();
        let n_nodes = node_ids.len();
        assert_eq!(
            node_ids.iter().map(|n| n.0 as usize).max().unwrap_or(0) + 1,
            n_nodes,
            "node ids must be dense 0..n"
        );
        let mut nodes = Vec::with_capacity(n_nodes);
        for id in &node_ids {
            let links = topology.links_of(*id);
            // Per-node hardware params: taken from the first attached link
            // (the paper's evaluations use identical hardware everywhere).
            let params = *topology.link(links[0]).physics.params();
            let device = if cfg.near_term {
                QDevice::near_term(*id, cfg.carbons, params)
            } else {
                QDevice::per_link(*id, &links, cfg.comm_per_link, params)
            };
            nodes.push(NodeRt {
                qnp: QnpNode::new(*id),
                device,
                up: true,
            });
        }
        let links: Vec<LinkRt> = topology
            .links()
            .iter()
            .map(|l| LinkRt {
                proto: LinkProtocol::new((l.a, l.b), l.physics.clone()),
                physics: l.physics.clone(),
                a: l.a,
                b: l.b,
                inflight: None,
                up: true,
            })
            .collect();
        let link_fault_table = if cfg.link_faults.is_empty() {
            None
        } else {
            let mut table = vec![cfg.faults; links.len()];
            for (a, b, faults) in &cfg.link_faults {
                faults.validate().expect("per-link fault probabilities");
                let link = topology
                    .link_between(*a, *b)
                    .expect("per-link fault override names an existing link");
                table[link.0 as usize] = *faults;
            }
            Some(table)
        };
        let lossy = |f: &ClassicalFaults| f.drop > 0.0 || f.corrupt > 0.0;
        let lossy_wire = lossy(&cfg.faults)
            || cfg.link_faults.iter().any(|(_, _, f)| lossy(f))
            || !cfg.fault_plan.is_empty();
        let rng_links = (0..links.len())
            .map(|i| SimRng::substream_indexed(seed, "link", i as u64))
            .collect();
        let rng_nodes = (0..n_nodes)
            .map(|i| SimRng::substream_indexed(seed, "node", i as u64))
            .collect();
        let n_links = links.len();
        NetworkModel {
            topology,
            nodes,
            links,
            pairs: PairStore::with_rep(cfg.state_rep),
            qubit_owner: NodeTable::new(n_nodes),
            refs: PairRefs::new(),
            label_map: (0..n_links).map(|_| Vec::new()).collect(),
            circuits: Vec::new(),
            cutoff_events: NodeTable::new(n_nodes),
            track_expiry_events: NodeTable::new(n_nodes),
            track_retransmits: NodeTable::new(n_nodes),
            link_delivered: NodeTable::new(n_nodes),
            signal_state: Vec::new(),
            app: AppHarness::default(),
            trace: if cfg.trace {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            rng_links,
            rng_nodes,
            rng_msgs: SimRng::substream(seed, "messages"),
            plane: ClassicalPlane::new(seed, cfg.faults),
            scratch: qn_net::wire::ScratchEncoder::new(),
            cfg,
            state_mismatches: 0,
            discarded_pairs: 0,
            link_fault_table,
            lossy_wire,
        }
    }

    /// Classical-plane traffic counters.
    pub fn classical_stats(&self) -> ClassicalStats {
        self.plane.stats
    }

    /// Protocol resilience counters, aggregated over all nodes.
    pub fn node_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for n in &self.nodes {
            total.merge(&n.qnp.stats);
        }
        total
    }

    /// Install a circuit (signalling action): registers labels, records
    /// path metadata, and feeds the routing entries to the nodes.
    ///
    /// Returns `true` when `signalling_on_wire` is set: the entries are
    /// *not* installed here — the caller must schedule
    /// [`Ev::SignalKick`] so the INSTALL chain walks the path over the
    /// classical plane with real latency and fault exposure.
    pub fn install_circuit(&mut self, installed: &InstalledCircuit) -> bool {
        let idx = installed.circuit.0 as usize;
        if self.circuits.len() <= idx {
            self.circuits.resize_with(idx + 1, || None);
        }
        self.circuits[idx] = Some(CircuitRt {
            path: installed.path.clone(),
            threshold: installed.plan.e2e_fidelity,
        });
        for (i, (link, label)) in installed.labels.iter().enumerate() {
            self.label_map[link.0 as usize].push((
                *label,
                LabelInfo {
                    circuit: installed.circuit,
                    upstream_node: installed.path[i],
                },
            ));
        }
        if self.cfg.signalling_on_wire {
            // Path-aligned entries with the cutoff override applied, so
            // the bytes on the wire are the entries the nodes install.
            let entries: Vec<_> = installed
                .path
                .iter()
                .map(|node| {
                    let (_, entry) = installed
                        .entries
                        .iter()
                        .find(|(n, _)| n == node)
                        .expect("every path node has a routing entry");
                    let mut entry = *entry;
                    if self.cfg.disable_cutoff {
                        entry.cutoff = SimDuration::MAX;
                    }
                    entry
                })
                .collect();
            let n = installed.path.len();
            if self.signal_state.len() <= idx {
                self.signal_state.resize_with(idx + 1, || None);
            }
            self.signal_state[idx] = Some(SignalRt {
                path: installed.path.clone(),
                entries,
                installed: vec![false; n],
                torn: vec![false; n],
                tearing: false,
                pending: vec![None; n],
            });
            return true;
        }
        for (node, entry) in &installed.entries {
            let mut entry = *entry;
            if self.cfg.disable_cutoff {
                entry.cutoff = SimDuration::MAX;
            }
            // The signalling plane is byte-accurate too: each per-node
            // INSTALL round-trips through the wire codec (encoded into
            // the shared scratch, decoded through the borrowed view), so
            // the entry the node installs is the one that survives
            // encoding. A failed round-trip is counted and the node
            // skipped — undecodable frames drop at the receiver, they
            // never panic the runtime.
            let frame = self
                .scratch
                .frame(|b| qn_routing::wire::SignalMessage::Install { entry }.encode_to(b));
            let decoded = match qn_routing::wire::SignalMessageView::parse(frame)
                .map(|view| view.to_message())
            {
                Ok(qn_routing::wire::SignalMessage::Install { entry }) => entry,
                _ => {
                    self.plane.stats.signal_decode_failures += 1;
                    continue;
                }
            };
            debug_assert_eq!(decoded, entry);
            let outs = self.nodes[node.0 as usize]
                .qnp
                .handle(NetInput::InstallCircuit { entry: decoded });
            debug_assert!(outs.is_empty());
        }
        false
    }

    /// The fidelity threshold of a circuit (for oracle baselines).
    pub fn circuit_threshold(&self, circuit: CircuitId) -> Option<f64> {
        self.circuit_rt(circuit).map(|c| c.threshold)
    }

    // ----- helpers ---------------------------------------------------

    fn circuit_rt(&self, circuit: CircuitId) -> Option<&CircuitRt> {
        self.circuits
            .get(circuit.0 as usize)
            .and_then(|c| c.as_ref())
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> LinkId {
        self.topology
            .link_between(a, b)
            .expect("circuit hops follow links")
    }

    /// The link on `side` of `node` for `circuit`.
    fn side_link(&self, circuit: CircuitId, node: NodeId, side: LinkSide) -> LinkId {
        let rt = self.circuit_rt(circuit).expect("circuit installed");
        let (up, down) = rt.neighbours(node);
        let peer = match side {
            LinkSide::Upstream => up.expect("upstream link exists"),
            LinkSide::Downstream => down.expect("downstream link exists"),
        };
        self.link_between(node, peer)
    }

    fn send_message(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        from: NodeId,
        circuit: CircuitId,
        downstream: bool,
        msg: Message,
    ) {
        let rt = self.circuit_rt(circuit).expect("circuit installed");
        let (up, down) = rt.neighbours(from);
        let to = if downstream {
            down.expect("downstream neighbour")
        } else {
            up.expect("upstream neighbour")
        };
        let link = self.link_between(from, to);
        if !self.hop_alive(link, from, to) {
            // The hop (or one of its endpoints) is down: the frame dies
            // on the dead wire. A plan-free run never takes this branch.
            self.plane.stats.sent += 1;
            self.plane.stats.dropped += 1;
            return;
        }
        let channel = ChannelModel {
            propagation: self.links[link.0 as usize]
                .physics
                .fibre()
                .propagation_delay(),
            processing: self.cfg.processing_delay,
            extra: self.cfg.extra_message_delay,
            jitter: self.cfg.message_jitter,
        };
        self.trace.record(
            ctx.now(),
            TraceKind::Message,
            format!("{from}"),
            format!(
                "{} -> {to} ({})",
                msg.kind_name(),
                if downstream { "down" } else { "up" }
            ),
        );
        // The message crosses the hop as encoded bytes: the classical
        // plane transports (and may drop/duplicate/reorder/corrupt)
        // frames, never Rust values. Default config is a bit-identical
        // pass-through of the reliable in-order transport. Encoding goes
        // through the shared scratch buffer and the plane coalesces
        // same-tick frames, so only newly opened batches cost an event.
        let faults = self.hop_faults(link);
        let frame = self.scratch.message(&msg);
        let opened = self.plane.transmit_with(
            faults,
            from,
            to,
            downstream,
            ctx.now(),
            &channel,
            &mut self.rng_msgs,
            frame,
        );
        for b in opened.into_iter().flatten() {
            ctx.schedule_at(
                b.at,
                Ev::BatchDeliver {
                    to,
                    from_upstream: downstream,
                    batch: b.id,
                    link,
                },
            );
        }
    }

    /// Transmit one link-layer or signalling frame between two adjacent
    /// nodes over the classical plane (`signalling_on_wire` paths). The
    /// lane (`downstream`) only selects the batch the frame coalesces
    /// into; receivers demux these frames by kind byte, not direction.
    fn transmit_frame(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        from: NodeId,
        to: NodeId,
        downstream: bool,
        encode: impl FnOnce(&mut Vec<u8>),
    ) {
        let Some(link) = self.topology.link_between(from, to) else {
            return;
        };
        if !self.hop_alive(link, from, to) {
            self.plane.stats.sent += 1;
            self.plane.stats.dropped += 1;
            return;
        }
        let channel = ChannelModel {
            propagation: self.links[link.0 as usize]
                .physics
                .fibre()
                .propagation_delay(),
            processing: self.cfg.processing_delay,
            extra: self.cfg.extra_message_delay,
            jitter: self.cfg.message_jitter,
        };
        let faults = self.hop_faults(link);
        let frame = self.scratch.frame(encode);
        let opened = self.plane.transmit_with(
            faults,
            from,
            to,
            downstream,
            ctx.now(),
            &channel,
            &mut self.rng_msgs,
            frame,
        );
        for b in opened.into_iter().flatten() {
            ctx.schedule_at(
                b.at,
                Ev::BatchDeliver {
                    to,
                    from_upstream: downstream,
                    batch: b.id,
                    link,
                },
            );
        }
    }

    /// Whether a hop can carry traffic right now: the link is up and so
    /// are both of its endpoints. Always true without a fault plan.
    fn hop_alive(&self, link: LinkId, from: NodeId, to: NodeId) -> bool {
        self.links[link.0 as usize].up
            && self.nodes[from.0 as usize].up
            && self.nodes[to.0 as usize].up
    }

    /// The message-fault model for a hop: its per-link override if one
    /// was configured, the global config otherwise.
    fn hop_faults(&self, link: LinkId) -> ClassicalFaults {
        match &self.link_fault_table {
            Some(table) => table[link.0 as usize],
            None => self.cfg.faults,
        }
    }

    /// Whether `node` is an intermediate (repeater) on the circuit.
    fn is_intermediate_on(&self, circuit: CircuitId, node: NodeId) -> bool {
        self.circuit_rt(circuit).is_some_and(|rt| {
            let (u, d) = rt.neighbours(node);
            u.is_some() && d.is_some()
        })
    }

    /// Arm the track-expiry timer for a freshly announced pair and
    /// remember the event so resolution can cancel it.
    fn arm_track_expiry(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        correlator: Correlator,
        timeout: SimDuration,
    ) {
        let ev = ctx.schedule_in(
            timeout,
            Ev::TrackExpiry {
                node,
                circuit,
                correlator,
            },
        );
        self.track_expiry_events.insert(node, correlator, ev);
    }

    /// Cancel the track-expiry timer of `(node, correlator)`, if armed.
    fn cancel_track_expiry(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId, c: Correlator) {
        if let Some(ev) = self.track_expiry_events.remove(node, c) {
            ctx.cancel(ev);
        }
    }

    /// If `msg` is a TRACK this end-node just *originated* (`origin ==
    /// link` — a repeater rewrite can never produce that), arm its
    /// retransmission timer. Wire mode only; no RNG draws.
    fn maybe_arm_track_retry(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        downstream: bool,
        msg: &Message,
    ) {
        if !self.cfg.signalling_on_wire {
            return;
        }
        let Message::Track(t) = msg else { return };
        if t.origin != t.link {
            return;
        }
        let event = ctx.schedule_in(
            self.cfg.retransmit.base,
            Ev::TrackRetransmit {
                node,
                circuit,
                origin: t.origin,
            },
        );
        self.track_retransmits.insert(
            node,
            t.origin,
            TrackRetry {
                attempt: 0,
                event,
                downstream,
                track: *t,
            },
        );
    }

    /// If `msg` is a request-level message (FORWARD/COMPLETE) leaving
    /// this node over a wire that can lose frames, schedule its first
    /// redundant copy. These messages are one-shot in the protocol —
    /// a lost FORWARD silently wedges the whole request, because link
    /// generation downstream never starts — but they are idempotent
    /// (receivers count and absorb duplicates) and per-request rare,
    /// so bounded blind redundancy is cheaper and simpler than an ack
    /// channel. No RNG draws.
    fn maybe_schedule_request_resend(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        downstream: bool,
        msg: &Message,
    ) {
        if !self.cfg.signalling_on_wire || !self.lossy_wire {
            return;
        }
        if !matches!(msg, Message::Forward(_) | Message::Complete(_)) {
            return;
        }
        // Only the head end-node (the fan-out's origin) arms copies.
        // Repeaters relay every copy they receive — including
        // duplicates — so origin redundancy already covers every hop;
        // arming at relays too would amplify each copy per hop.
        if !self
            .circuit_rt(circuit)
            .is_some_and(|rt| rt.path.first() == Some(&node))
        {
            return;
        }
        ctx.schedule_in(
            self.cfg.retransmit.base,
            Ev::RequestResend {
                node,
                circuit,
                downstream,
                attempt: 1,
                msg: *msg,
            },
        );
    }

    /// A scheduled redundant request-level copy came due: re-send it
    /// and, within the retry budget, schedule the next copy.
    fn request_resend_fire(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        downstream: bool,
        attempt: u32,
        msg: Message,
    ) {
        if self.circuit_rt(circuit).is_none() {
            return; // torn down; the fan-out is moot
        }
        if attempt < self.cfg.retransmit.max_retries {
            ctx.schedule_in(
                backoff(self.cfg.retransmit.base, attempt),
                Ev::RequestResend {
                    node,
                    circuit,
                    downstream,
                    attempt: attempt + 1,
                    msg,
                },
            );
        }
        self.plane.stats.request_retransmits += 1;
        self.send_message(ctx, node, circuit, downstream, msg);
    }

    /// An armed TRACK retransmission timer fired.
    fn track_retransmit_fire(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        origin: Correlator,
    ) {
        let Some(mut retry) = self.track_retransmits.remove(node, origin) else {
            return; // acknowledged meanwhile
        };
        if self.circuit_rt(circuit).is_none() {
            return; // torn down; nothing left to confirm
        }
        if retry.attempt >= self.cfg.retransmit.max_retries {
            self.plane.stats.retransmits_abandoned += 1;
            return;
        }
        retry.attempt += 1;
        retry.event = ctx.schedule_in(
            backoff(self.cfg.retransmit.base, retry.attempt),
            Ev::TrackRetransmit {
                node,
                circuit,
                origin,
            },
        );
        self.plane.stats.track_retransmits += 1;
        let (downstream, track) = (retry.downstream, retry.track);
        self.track_retransmits.insert(node, origin, retry);
        self.send_message(ctx, node, circuit, downstream, Message::Track(track));
    }

    /// Deliver a link pair announcement to one node's QNP, routing
    /// near-term repeaters through the move-to-storage step first.
    #[allow(clippy::too_many_arguments)] // mirrors the announcement fields
    fn deliver_link_pair(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        link: LinkId,
        pid: PairId,
        circuit: CircuitId,
        side: LinkSide,
        info: PairInfo,
    ) {
        // Near-term repeaters must move the pair into carbon storage
        // before the shared electron frees up; the network layer learns
        // of the pair once it is safely stored.
        if self.cfg.near_term && self.is_intermediate_on(circuit, node) {
            if let Some(storage) = self.nodes[node.0 as usize].device.alloc_storage() {
                let params = self.nodes[node.0 as usize].device.params();
                let move_time = 2.0 * params.gates.two_qubit.duration
                    + params.gates.carbon_init.map(|g| g.duration).unwrap_or(0.0);
                ctx.schedule_in(
                    SimDuration::from_secs_f64(move_time),
                    Ev::MoveDone {
                        node,
                        pair: pid,
                        storage,
                        link,
                        circuit,
                        side,
                        info,
                    },
                );
                return;
            }
            // No storage: the electron stays occupied; deliver anyway.
        }
        let outs = self.nodes[node.0 as usize].qnp.handle(NetInput::LinkPair {
            circuit,
            side,
            info,
        });
        self.process_outputs(ctx, node, circuit, outs);
    }

    /// A PAIR_READY frame reached `node` over the wire: resolve it
    /// against the runtime's current state (the pair may be long gone)
    /// and hand it to the local QNP exactly once.
    fn pair_ready_at(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId, pair: qn_link::LinkPair) {
        let correlator = Correlator {
            node_a: pair.id.node_a,
            node_b: pair.id.node_b,
            seq: pair.id.seq,
        };
        // A duplication fault can deliver the same announcement twice; a
        // second LinkPair would occupy a second request slot downstream.
        if self.link_delivered.get(node, correlator).is_some() {
            return;
        }
        // The physical qubit may already have been reclaimed (timeout,
        // teardown) by the time the announcement lands: stale, drop.
        let Some(pid) = self.qubit_owner.get(node, correlator) else {
            return;
        };
        let Some(link) = self.topology.link_between(pair.id.node_a, pair.id.node_b) else {
            return;
        };
        let Some(info) = self.label_map[link.0 as usize]
            .iter()
            .find(|(l, _)| *l == pair.label)
            .map(|(_, info)| info)
        else {
            // Circuit torn down while the frame was in flight: free the
            // local end (the other end resolves on its own copy).
            self.release_end(ctx, node, correlator, false);
            return;
        };
        let circuit = info.circuit;
        let side = if node == info.upstream_node {
            LinkSide::Downstream
        } else {
            LinkSide::Upstream
        };
        let pair_info = PairInfo {
            pair: PairRef {
                correlator,
                handle: PairHandle(pid.0),
            },
            announced: pair.announced,
        };
        self.link_delivered.insert(node, correlator, ());
        self.deliver_link_pair(ctx, node, link, pid, circuit, side, pair_info);
    }

    /// Demuxed handler for link-layer frames (kinds `0x10..=0x12`)
    /// arriving over the wire.
    fn handle_link_frame(&mut self, ctx: &mut Context<'_, Ev>, to: NodeId, frame: &[u8]) {
        match qn_net::wire::decode_link_event(frame) {
            Ok(LinkEvent::PairReady(pair)) => self.pair_ready_at(ctx, to, pair),
            Ok(LinkEvent::RequestDone(label)) => {
                self.trace.record(
                    ctx.now(),
                    TraceKind::Info,
                    format!("{to}"),
                    format!("link request {label} done"),
                );
            }
            Ok(LinkEvent::Rejected(label, reason)) => {
                self.trace.record(
                    ctx.now(),
                    TraceKind::Info,
                    format!("{to}"),
                    format!("link request {label} rejected: {reason}"),
                );
            }
            Err(err) => {
                self.plane
                    .stats
                    .count_link_decode_failure(frame.get(1).copied());
                self.trace.record(
                    ctx.now(),
                    TraceKind::Info,
                    format!("{to}"),
                    format!("undecodable link frame dropped: {err}"),
                );
            }
        }
    }

    /// Send the signalling frame (INSTALL, or TEARDOWN once tearing)
    /// from `path[hop]` to `path[hop + 1]` and arm its retransmit timer.
    fn send_signal_hop(&mut self, ctx: &mut Context<'_, Ev>, circuit: CircuitId, hop: usize) {
        let Some(st) = self
            .signal_state
            .get(circuit.0 as usize)
            .and_then(|s| s.as_ref())
        else {
            return;
        };
        let (from, to) = (st.path[hop], st.path[hop + 1]);
        let msg = if st.tearing {
            qn_routing::wire::SignalMessage::Teardown { circuit }
        } else {
            qn_routing::wire::SignalMessage::Install {
                entry: st.entries[hop + 1],
            }
        };
        self.transmit_frame(ctx, from, to, true, |b| msg.encode_to(b));
        let event = ctx.schedule_in(
            self.cfg.retransmit.base,
            Ev::SignalRetransmit { circuit, hop },
        );
        if let Some(st) = self
            .signal_state
            .get_mut(circuit.0 as usize)
            .and_then(|s| s.as_mut())
        {
            // An unacked INSTALL's timer may still guard this hop when a
            // TEARDOWN overtakes it; the new frame supersedes it.
            if let Some(SignalRetry { event, .. }) =
                st.pending[hop].replace(SignalRetry { attempt: 0, event })
            {
                ctx.cancel(event);
            }
        }
    }

    /// A signalling retransmit timer fired for the frame from
    /// `path[hop]` to `path[hop + 1]`.
    fn signal_retransmit_fire(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        circuit: CircuitId,
        hop: usize,
    ) {
        let (msg, from, to, attempt) = {
            let Some(st) = self
                .signal_state
                .get_mut(circuit.0 as usize)
                .and_then(|s| s.as_mut())
            else {
                return;
            };
            let Some(retry) = st.pending[hop].take() else {
                return; // acknowledged meanwhile
            };
            if retry.attempt >= self.cfg.retransmit.max_retries {
                self.plane.stats.retransmits_abandoned += 1;
                return;
            }
            let msg = if st.tearing {
                qn_routing::wire::SignalMessage::Teardown { circuit }
            } else {
                qn_routing::wire::SignalMessage::Install {
                    entry: st.entries[hop + 1],
                }
            };
            (msg, st.path[hop], st.path[hop + 1], retry.attempt + 1)
        };
        self.plane.stats.signal_retransmits += 1;
        let event = ctx.schedule_in(
            backoff(self.cfg.retransmit.base, attempt),
            Ev::SignalRetransmit { circuit, hop },
        );
        if let Some(st) = self
            .signal_state
            .get_mut(circuit.0 as usize)
            .and_then(|s| s.as_mut())
        {
            st.pending[hop] = Some(SignalRetry { attempt, event });
        }
        self.transmit_frame(ctx, from, to, true, |b| msg.encode_to(b));
    }

    /// Kick off a wire-borne installation: the head installs locally and
    /// the INSTALL chain starts down the path.
    fn signal_kick(&mut self, ctx: &mut Context<'_, Ev>, circuit: CircuitId) {
        let (head, entry, more) = {
            let Some(st) = self
                .signal_state
                .get_mut(circuit.0 as usize)
                .and_then(|s| s.as_mut())
            else {
                return;
            };
            if st.tearing || st.installed[0] {
                return;
            }
            st.installed[0] = true;
            (st.path[0], st.entries[0], st.path.len() > 1)
        };
        let outs = self.nodes[head.0 as usize]
            .qnp
            .handle(NetInput::InstallCircuit { entry });
        self.process_outputs(ctx, head, circuit, outs);
        if more {
            self.send_signal_hop(ctx, circuit, 0);
        }
    }

    /// Final bookkeeping once the TEARDOWN chain reaches the tail: only
    /// now do in-flight generations stop routing and the circuit slot
    /// free (`side_link`/`circuit_rt` must work until every node tore
    /// down).
    fn finish_teardown(&mut self, circuit: CircuitId) {
        for row in &mut self.label_map {
            row.retain(|(_, info)| info.circuit != circuit);
        }
        if let Some(slot) = self.circuits.get_mut(circuit.0 as usize) {
            *slot = None;
        }
    }

    /// Demuxed handler for routing-signalling frames (kinds
    /// `0x20..=0x23`) arriving over the wire.
    fn handle_signal_frame(&mut self, ctx: &mut Context<'_, Ev>, to: NodeId, frame: &[u8]) {
        let msg = match qn_routing::wire::SignalMessageView::parse(frame) {
            Ok(view) => view.to_message(),
            Err(err) => {
                self.plane.stats.signal_decode_failures += 1;
                self.trace.record(
                    ctx.now(),
                    TraceKind::Info,
                    format!("{to}"),
                    format!("undecodable signalling frame dropped: {err}"),
                );
                return;
            }
        };
        use qn_routing::wire::SignalMessage as Sm;
        let circuit = match msg {
            Sm::Install { entry } => entry.circuit,
            Sm::Teardown { circuit } | Sm::InstallAck { circuit } | Sm::TeardownAck { circuit } => {
                circuit
            }
        };
        // Position of the receiving node on the signalled path. Frames
        // for unknown circuits (corrupted id) or from nodes off the path
        // are stale noise: drop.
        let Some(i) = self
            .signal_state
            .get(circuit.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|st| st.path.as_slice())
            .and_then(|p| p.iter().position(|n| *n == to))
        else {
            return;
        };
        match msg {
            Sm::Install { entry } => {
                if i == 0 {
                    return; // the head installs locally, never via wire
                }
                let (first, prev, last) = {
                    let st = self.signal_state[circuit.0 as usize]
                        .as_mut()
                        .expect("checked");
                    let first = !st.installed[i] && !st.tearing;
                    st.installed[i] = true;
                    (first, st.path[i - 1], st.path.len() - 1)
                };
                if first {
                    let outs = self.nodes[to.0 as usize]
                        .qnp
                        .handle(NetInput::InstallCircuit { entry });
                    self.process_outputs(ctx, to, circuit, outs);
                    if i < last {
                        self.send_signal_hop(ctx, circuit, i);
                    }
                }
                // Always ack — re-acks recover lost acks; a node caught
                // by teardown acks too (the sender must stop either way).
                self.plane.stats.signal_acks += 1;
                let msg = Sm::InstallAck { circuit };
                self.transmit_frame(ctx, to, prev, false, |b| msg.encode_to(b));
            }
            Sm::Teardown { .. } => {
                if i == 0 {
                    return;
                }
                let (first, prev, last) = {
                    let st = self.signal_state[circuit.0 as usize]
                        .as_mut()
                        .expect("checked");
                    let first = !st.torn[i];
                    st.torn[i] = true;
                    st.tearing = true;
                    (first, st.path[i - 1], st.path.len() - 1)
                };
                if first {
                    let outs = self.nodes[to.0 as usize]
                        .qnp
                        .handle(NetInput::TeardownCircuit { circuit });
                    self.process_outputs(ctx, to, circuit, outs);
                    if i < last {
                        self.send_signal_hop(ctx, circuit, i);
                    } else {
                        self.finish_teardown(circuit);
                    }
                }
                self.plane.stats.signal_acks += 1;
                let msg = Sm::TeardownAck { circuit };
                self.transmit_frame(ctx, to, prev, false, |b| msg.encode_to(b));
            }
            Sm::InstallAck { .. } => {
                let st = self.signal_state[circuit.0 as usize]
                    .as_mut()
                    .expect("checked");
                // Once tearing, the pending slot guards a TEARDOWN; a
                // straggling install ack must not cancel it.
                if !st.tearing {
                    if let Some(SignalRetry { event, .. }) = st.pending[i].take() {
                        ctx.cancel(event);
                    }
                }
            }
            Sm::TeardownAck { .. } => {
                let st = self.signal_state[circuit.0 as usize]
                    .as_mut()
                    .expect("checked");
                if st.tearing {
                    if let Some(SignalRetry { event, .. }) = st.pending[i].take() {
                        ctx.cancel(event);
                    }
                }
            }
        }
    }

    /// Wire-borne teardown: cancel outstanding INSTALL retransmissions,
    /// tear the head down locally, and start the TEARDOWN chain.
    fn teardown_wire(&mut self, ctx: &mut Context<'_, Ev>, circuit: CircuitId) {
        let (head, more) = {
            let Some(st) = self
                .signal_state
                .get_mut(circuit.0 as usize)
                .and_then(|s| s.as_mut())
            else {
                return;
            };
            if st.tearing {
                return;
            }
            st.tearing = true;
            st.torn[0] = true;
            for slot in &mut st.pending {
                if let Some(SignalRetry { event, .. }) = slot.take() {
                    ctx.cancel(event);
                }
            }
            (st.path[0], st.path.len() > 1)
        };
        let outs = self.nodes[head.0 as usize]
            .qnp
            .handle(NetInput::TeardownCircuit { circuit });
        self.process_outputs(ctx, head, circuit, outs);
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            "signalling".to_string(),
            format!("{circuit} teardown signalled"),
        );
        if more {
            self.send_signal_hop(ctx, circuit, 0);
        } else {
            self.finish_teardown(circuit);
        }
    }

    /// Free one end of a pair at a node: release the memory slot, drop
    /// the reference, and — because freed qubits get re-initialised for
    /// new attempts — replace the abandoned end with white noise when the
    /// pair survives at the other end.
    fn release_end(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        correlator: Correlator,
        reinitialise: bool,
    ) {
        // The pair is resolved at this node whatever happens below: its
        // track-expiry timer (if armed) must never fire late, and the
        // wire-delivery dedup entry is done.
        self.cancel_track_expiry(ctx, node, correlator);
        self.link_delivered.remove(node, correlator);
        let Some(pid) = self.qubit_owner.remove(node, correlator) else {
            return;
        };
        if let Some(refs) = self.refs.get_mut(pid) {
            refs.retain(|(n, c)| !(*n == node && *c == correlator));
            let empty = refs.is_empty();
            // Free the local slot.
            if let Some(pair) = self.pairs.get(pid) {
                if let Some(idx) = pair.end_at(node) {
                    let qubit = pair.ends()[idx].qubit;
                    self.nodes[node.0 as usize].device.free(qubit);
                }
            }
            if empty {
                self.refs.remove(pid);
                self.pairs.discard(pid);
            } else if reinitialise {
                // Full depolarisation of the abandoned end: dephase,
                // then mix the populations.
                self.pairs.apply_dephasing(pid, node, 0.5);
                self.pairs.depolarize_end(pid, node, 1.0);
            }
        }
        self.poll_links_of(ctx, node);
    }

    /// Re-examine every link attached to `node` (a qubit freed or a
    /// request changed).
    fn poll_links_of(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId) {
        for link in self.topology.links_of(node) {
            self.poll_link(ctx, link);
        }
    }

    /// Start the next generation on a link if the protocol has work and
    /// both endpoint devices can reserve a communication qubit.
    fn poll_link(&mut self, ctx: &mut Context<'_, Ev>, link: LinkId) {
        let l = &mut self.links[link.0 as usize];
        if l.inflight.is_some() {
            return;
        }
        let Some(spec) = l.proto.next_action() else {
            return;
        };
        let (na, nb) = (l.a, l.b);
        // Reserve a communication qubit at each end, or stall.
        let Some(qa) = self.nodes[na.0 as usize].device.alloc_comm(link) else {
            return;
        };
        let Some(qb) = self.nodes[nb.0 as usize].device.alloc_comm(link) else {
            self.nodes[na.0 as usize].device.free(qa);
            return;
        };
        let l = &mut self.links[link.0 as usize];
        l.proto.on_generation_started(spec.label);
        let p = l.physics.success_prob(spec.alpha);
        let attempts = self.rng_links[link.0 as usize].geometric(p);
        let duration = l.physics.cycle_time().saturating_mul(attempts);
        let event = ctx.schedule_in(duration, Ev::GenDone { link });
        l.inflight = Some(Inflight {
            label: spec.label,
            alpha: spec.alpha,
            attempts,
            started: ctx.now(),
            event,
            qubit_a: (na, qa),
            qubit_b: (nb, qb),
        });
    }

    /// A link generation heralded success: create the physical pair,
    /// charge nuclear dephasing, notify the network layers.
    fn gen_done(&mut self, ctx: &mut Context<'_, Ev>, link: LinkId) {
        let l = &mut self.links[link.0 as usize];
        let inflight = l.inflight.take().expect("GenDone without inflight");
        let elapsed = ctx.now().since(inflight.started);
        let announced = l
            .physics
            .sample_announced(&mut self.rng_links[link.0 as usize]);
        let (pair, events) = l
            .proto
            .on_generation_complete(announced, inflight.attempts, elapsed);
        let state = l
            .physics
            .heralded_pair(inflight.alpha, announced, self.pairs.rep());
        let (na, qa) = inflight.qubit_a;
        let (nb, qb) = inflight.qubit_b;
        // The link layer announces the pair to the nodes over classical
        // signalling; that announcement is byte-accurate too — the
        // PAIR_READY frame round-trips through the wire codec and the
        // *decoded* pair is what the stack proceeds with. On the default
        // (local, lossless) plane the round-trip happens right here;
        // with `signalling_on_wire` the frame instead crosses the
        // classical plane per end and each receiver decodes its copy.
        let pair = if self.cfg.signalling_on_wire {
            pair
        } else {
            let frame = self
                .scratch
                .frame(|b| qn_net::wire::encode_link_event(&LinkEvent::PairReady(pair), b));
            match qn_net::wire::decode_link_event(frame) {
                Ok(LinkEvent::PairReady(p)) => p,
                _ => {
                    // Undecodable announcement: counted and dropped (no
                    // panic); the reserved qubits return to their
                    // devices and the link tries again.
                    self.plane
                        .stats
                        .count_link_decode_failure(Some(qn_net::wire::KIND_LINK_PAIR_READY));
                    self.nodes[na.0 as usize].device.free(qa);
                    self.nodes[nb.0 as usize].device.free(qb);
                    self.poll_link(ctx, link);
                    return;
                }
            }
        };
        let (t1a, t2a) = self.nodes[na.0 as usize].device.coherence_times(qa);
        let (t1b, t2b) = self.nodes[nb.0 as usize].device.coherence_times(qb);
        let pid = self.pairs.create_pair(
            ctx.now(),
            state,
            announced,
            [(na, qa, t1a, t2a), (nb, qb, t1b, t2b)],
        );
        let correlator = Correlator {
            node_a: pair.id.node_a,
            node_b: pair.id.node_b,
            seq: pair.id.seq,
        };
        self.qubit_owner.insert(na, correlator, pid);
        self.qubit_owner.insert(nb, correlator, pid);
        self.refs
            .insert_pair(pid, (na, correlator), (nb, correlator));
        self.trace.record(
            ctx.now(),
            TraceKind::LinkPair,
            format!("{na}-{nb}"),
            format!(
                "pair {correlator} ({announced}) after {} attempts",
                inflight.attempts
            ),
        );

        // Nuclear dephasing: the attempts degrade carbon-stored qubits at
        // both endpoint devices (near-term mode).
        let lambda_per = self.nodes[na.0 as usize]
            .device
            .params()
            .nuclear_dephasing_per_attempt(inflight.alpha);
        if lambda_per > 0.0 {
            for node in [na, nb] {
                // Slot-ordered scan: deterministic, unlike the hash map
                // iteration this replaced (the dephasing applications
                // commute, but observable order must never depend on
                // hasher state).
                let victims: Vec<PairId> = self
                    .refs
                    .iter()
                    .filter(|(p, ends)| *p != pid && ends.iter().any(|(n, _)| *n == node))
                    .map(|(p, _)| p)
                    .collect();
                // Coherence decays per attempt: λ_total = (1−(1−2λ)^k)/2.
                let lambda_total = 0.5
                    * (1.0 - (1.0 - 2.0 * lambda_per).powi(inflight.attempts.min(1 << 30) as i32));
                for v in victims {
                    self.pairs.apply_dephasing(v, node, lambda_total);
                }
            }
        }

        // Route the pair to the two QNP instances.
        let Some(info) = self.label_map[link.0 as usize]
            .iter()
            .find(|(l, _)| *l == pair.label)
            .map(|(_, info)| info)
        else {
            // Label no longer mapped (circuit torn down): free everything.
            self.release_end(ctx, na, correlator, false);
            self.release_end(ctx, nb, correlator, false);
            return;
        };
        let circuit = info.circuit;
        let upstream_node = info.upstream_node;
        let pair_info = PairInfo {
            pair: PairRef {
                correlator,
                handle: PairHandle(pid.0),
            },
            announced,
        };
        for node in [na, nb] {
            let side = if node == upstream_node {
                LinkSide::Downstream
            } else {
                LinkSide::Upstream
            };
            // On a faulty plane an end-node's chain can lose its
            // TRACK/EXPIRE forever; the optional track-timeout frees
            // the qubit instead of holding it until the heat death of
            // the run. Never armed by default. Armed *before* delivery
            // so an immediately rejected pair cancels it right back via
            // `release_end`.
            if let Some(timeout) = self.cfg.track_timeout {
                if !self.is_intermediate_on(circuit, node) {
                    self.arm_track_expiry(ctx, node, circuit, correlator, timeout);
                }
            }
            if self.cfg.signalling_on_wire {
                // With the announcement itself on the wire, PAIR_READY
                // can be lost — the receiver then holds a qubit the QNP
                // never hears about, outside every protocol timer. The
                // orphan check fires on the classical plane's response
                // timescale (the retransmit base), not the end-to-end
                // track-timeout: announcement delivery is one hop, so a
                // pair still unknown after it is gone for good. Never
                // cancelled — a resolved pair makes the check a no-op.
                ctx.schedule_in(
                    self.cfg.retransmit.base,
                    Ev::OrphanCheck {
                        node,
                        circuit,
                        correlator,
                        side,
                    },
                );
                // The announcement crosses the classical plane (latency,
                // batching, faults) and is decoded at the receiver.
                let peer = if node == na { nb } else { na };
                let downstream = peer == upstream_node;
                self.transmit_frame(ctx, peer, node, downstream, |b| {
                    qn_net::wire::encode_link_event(&LinkEvent::PairReady(pair), b)
                });
            } else {
                self.deliver_link_pair(ctx, node, link, pid, circuit, side, pair_info);
            }
        }

        // The link may start its next generation immediately (if qubits
        // remain free).
        for e in events {
            if let LinkEvent::RequestDone(label) = e {
                if self.cfg.signalling_on_wire {
                    for (from, to) in [(nb, na), (na, nb)] {
                        let downstream = from == upstream_node;
                        self.transmit_frame(ctx, from, to, downstream, |b| {
                            qn_net::wire::encode_link_event(&LinkEvent::RequestDone(label), b)
                        });
                    }
                } else {
                    self.trace.record(
                        ctx.now(),
                        TraceKind::Info,
                        format!("{na}-{nb}"),
                        format!("link request {label} done"),
                    );
                }
            }
        }
        self.poll_link(ctx, link);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the MoveDone event fields
    fn move_done(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        pid: PairId,
        storage: QubitId,
        circuit: CircuitId,
        side: LinkSide,
        info: PairInfo,
    ) {
        // The pair may have died while moving (other end discarded).
        if !self.pairs.contains(pid) || self.pairs.get(pid).and_then(|p| p.end_at(node)).is_none() {
            self.nodes[node.0 as usize].device.free(storage);
            return;
        }
        let params = *self.nodes[node.0 as usize].device.params();
        let (t1, t2) = self.nodes[node.0 as usize].device.coherence_times(storage);
        // Transfer noise: two E-C gates plus carbon initialisation.
        let f_move = params.gates.two_qubit.fidelity
            * params.gates.two_qubit.fidelity
            * params.gates.carbon_init.map(|g| g.fidelity).unwrap_or(1.0);
        let p_move = qn_quantum::channels::depolarizing_param_for_fidelity(f_move, 2);
        let electron = self
            .pairs
            .retarget_end(pid, node, storage, t1, t2, p_move, ctx.now());
        self.nodes[node.0 as usize].device.free(electron);
        self.trace.record(
            ctx.now(),
            TraceKind::Quantum,
            format!("{node}"),
            format!("moved pair end to storage {storage}"),
        );
        let outs = self.nodes[node.0 as usize].qnp.handle(NetInput::LinkPair {
            circuit,
            side,
            info,
        });
        self.process_outputs(ctx, node, circuit, outs);
        self.poll_links_of(ctx, node);
    }

    /// Apply the effects a QNP node requested.
    fn process_outputs(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        outs: Vec<NetOutput>,
    ) {
        for out in outs {
            match out {
                NetOutput::SendUpstream(msg) => {
                    self.maybe_arm_track_retry(ctx, node, circuit, false, &msg);
                    self.maybe_schedule_request_resend(ctx, node, circuit, false, &msg);
                    self.send_message(ctx, node, circuit, false, msg);
                }
                NetOutput::SendDownstream(msg) => {
                    self.maybe_arm_track_retry(ctx, node, circuit, true, &msg);
                    self.maybe_schedule_request_resend(ctx, node, circuit, true, &msg);
                    self.send_message(ctx, node, circuit, true, msg);
                }
                NetOutput::TrackAcked { origin } => {
                    // The peer end-node confirmed our TRACK: disarm the
                    // retransmission. A stray ack (corruption, or an ack
                    // raced by the retry it answers) is a silent no-op.
                    if let Some(TrackRetry { event, .. }) =
                        self.track_retransmits.remove(node, origin)
                    {
                        ctx.cancel(event);
                    }
                }
                NetOutput::LinkSubmit {
                    side,
                    label,
                    min_fidelity,
                    weight,
                } => {
                    let link = self.side_link(circuit, node, side);
                    let evs = self.links[link.0 as usize].proto.submit(LinkRequest {
                        label,
                        min_fidelity,
                        demand: PairDemand::Continuous,
                        weight,
                    });
                    for e in evs {
                        if let LinkEvent::Rejected(l, reason) = e {
                            if self.cfg.signalling_on_wire {
                                // The admission verdict comes back from
                                // the link over the classical plane.
                                let (la, lb) = self.links[link.0 as usize].proto.nodes();
                                let peer = if la == node { lb } else { la };
                                let downstream = side == LinkSide::Upstream;
                                self.transmit_frame(ctx, peer, node, downstream, |b| {
                                    qn_net::wire::encode_link_event(
                                        &LinkEvent::Rejected(l, reason),
                                        b,
                                    )
                                });
                            } else {
                                self.trace.record(
                                    ctx.now(),
                                    TraceKind::Info,
                                    format!("{node}"),
                                    format!("link request {l} rejected: {reason}"),
                                );
                            }
                        }
                    }
                    self.poll_link(ctx, link);
                }
                NetOutput::LinkSetWeight {
                    side,
                    label,
                    weight,
                } => {
                    let link = self.side_link(circuit, node, side);
                    self.links[link.0 as usize].proto.set_weight(label, weight);
                }
                NetOutput::LinkStop { side, label } => {
                    let link = self.side_link(circuit, node, side);
                    let l = &mut self.links[link.0 as usize];
                    let was_generating = l.proto.generating() == Some(label);
                    l.proto.stop(label);
                    if was_generating {
                        if let Some(inflight) = l.inflight.take() {
                            ctx.cancel(inflight.event);
                            let (na, qa) = inflight.qubit_a;
                            let (nb, qb) = inflight.qubit_b;
                            self.nodes[na.0 as usize].device.free(qa);
                            self.nodes[nb.0 as usize].device.free(qb);
                        }
                    }
                    self.poll_link(ctx, link);
                }
                NetOutput::StartSwap { up, down } => {
                    debug_assert!(self.qubit_owner.get(node, up.correlator).is_some());
                    debug_assert!(self.qubit_owner.get(node, down.correlator).is_some());
                    let params = self.nodes[node.0 as usize].device.params();
                    let dur = params.gates.two_qubit.duration
                        + params.gates.electron_single.duration
                        + 2.0 * params.gates.readout.duration;
                    self.trace.record(
                        ctx.now(),
                        TraceKind::Quantum,
                        format!("{node}"),
                        format!("SWAP start ({} x {})", up.correlator, down.correlator),
                    );
                    ctx.schedule_in(
                        SimDuration::from_secs_f64(dur),
                        Ev::SwapDone {
                            node,
                            circuit,
                            up: up.correlator,
                            down: down.correlator,
                        },
                    );
                }
                NetOutput::SetCutoff { pair, side, after } => {
                    if after.is_infinite() {
                        continue;
                    }
                    let ev = ctx.schedule_in(
                        after,
                        Ev::Cutoff {
                            node,
                            circuit,
                            side,
                            correlator: pair.correlator,
                        },
                    );
                    self.cutoff_events.insert(node, pair.correlator, ev);
                }
                NetOutput::CancelCutoff { pair } => {
                    if let Some(ev) = self.cutoff_events.remove(node, pair.correlator) {
                        ctx.cancel(ev);
                    }
                }
                NetOutput::DiscardPair { pair } => {
                    self.discarded_pairs += 1;
                    self.trace.record(
                        ctx.now(),
                        TraceKind::Discard,
                        format!("{node}"),
                        format!("discard {}", pair.correlator),
                    );
                    self.release_end(ctx, node, pair.correlator, true);
                }
                NetOutput::MeasureNow { pair, basis } => {
                    let params = self.nodes[node.0 as usize].device.params();
                    let dur = params.gates.readout.duration;
                    ctx.schedule_in(
                        SimDuration::from_secs_f64(dur),
                        Ev::MeasureDone {
                            node,
                            circuit,
                            correlator: pair.correlator,
                            basis,
                        },
                    );
                }
                NetOutput::ApplyCorrection { pair, pauli } => {
                    if let Some(pid) = self.qubit_owner.get(node, pair.correlator) {
                        self.pairs.apply_pauli(pid, node, pauli, ctx.now());
                        self.trace.record(
                            ctx.now(),
                            TraceKind::Quantum,
                            format!("{node}"),
                            format!("Pauli {pauli:?} correction on {}", pair.correlator),
                        );
                    }
                }
                NetOutput::Deliver(delivery) => {
                    self.record_delivery(ctx, node, circuit, delivery);
                }
                NetOutput::Notify(ev) => {
                    if let AppEvent::EarlyPairExpired { pair, .. } = &ev {
                        self.release_end(ctx, node, pair.correlator, false);
                    }
                    self.app.on_event(ctx.now(), node, circuit, ev);
                }
            }
        }
    }

    fn record_delivery(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        delivery: qn_net::events::Delivery,
    ) {
        let now = ctx.now();
        // A confirmed delivery resolves the local end of the chain, so
        // its track-expiry timer must not fire later. Measured pairs
        // bypass `release_end` (the qubit slot was freed at readout), so
        // the cancellation lives here. Only the local end's correlator
        // can be in this node's row; trying both sides of the chain is
        // cheaper than resolving which end we are.
        if let Some(chain) = delivery.chain {
            for c in [chain.head, chain.tail] {
                self.cancel_track_expiry(ctx, node, c);
            }
        }
        let (oracle, consistent, release) = match &delivery.kind {
            // Confirmed deliveries: read the oracle, then release the
            // local end (the application consumed the qubit). Fidelity is
            // measured against the *omniscient* frame (the pair's true
            // quality); `state_consistent` separately records whether the
            // protocol's claimed Bell state agrees. For final-state
            // requests the tail can deliver before the head's physical
            // correction lands — transiently "inconsistent" by design.
            DeliveryKind::Qubit { pair, state } | DeliveryKind::EarlyTracking { pair, state } => {
                let pid = self.qubit_owner.get(node, pair.correlator);
                match pid {
                    Some(pid) => {
                        let omniscient = self.pairs.get(pid).map(|p| p.announced);
                        let frame = omniscient.unwrap_or(*state);
                        let f = self.pairs.fidelity_to(pid, frame, now);
                        let consistent = omniscient.map(|o| o == *state);
                        (Some(f), consistent, true)
                    }
                    None => (None, None, false),
                }
            }
            // EARLY qubits are unconfirmed: the qubit stays live until
            // the tracking info (or an expiry notification) arrives.
            DeliveryKind::EarlyQubit { .. } => (None, None, false),
            DeliveryKind::Measurement { .. } => (None, None, false),
        };
        let payload = Payload::from_kind(&delivery.kind);
        if let Some(c) = consistent {
            if !c {
                self.state_mismatches += 1;
            }
        }
        self.trace.record(
            now,
            TraceKind::Delivery,
            format!("{node}"),
            format!(
                "deliver req {} seq {} ({:?})",
                delivery.request, delivery.sequence, payload
            ),
        );
        self.app.deliveries.push(DeliveryRecord {
            time: now,
            node,
            circuit,
            request: delivery.request,
            sequence: delivery.sequence,
            chain: delivery.chain,
            payload,
            oracle_fidelity: oracle,
            state_consistent: consistent,
        });
        if release {
            if let DeliveryKind::Qubit { pair, .. } | DeliveryKind::EarlyTracking { pair, .. } =
                &delivery.kind
            {
                self.release_end(ctx, node, pair.correlator, false);
            }
        }
    }

    fn swap_done(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        up: Correlator,
        down: Correlator,
    ) {
        // Resolve the correlators to the pairs *currently* holding the
        // local qubits (a neighbour's swap may have re-pointed them).
        let (Some(up_pid), Some(down_pid)) = (
            self.qubit_owner.get(node, up),
            self.qubit_owner.get(node, down),
        ) else {
            // Circuit torn down mid-swap; the SM state went with it.
            return;
        };
        let noise = SwapNoise::from_params(self.nodes[node.0 as usize].device.params());
        let rng = &mut self.rng_nodes[node.0 as usize];
        let res = self
            .pairs
            .swap(up_pid, down_pid, node, ctx.now(), &noise, rng);
        // Free the two local slots.
        for (n, q) in res.freed {
            debug_assert_eq!(n, node);
            self.nodes[n.0 as usize].device.free(q);
        }
        // Re-point surviving references to the joined pair.
        let mut new_refs = Vec::with_capacity(2);
        for (old_pid, consumed_corr) in [(up_pid, up), (down_pid, down)] {
            self.qubit_owner.remove(node, consumed_corr);
            // The swap consumed the link pair at this node: its
            // (wire-mode) reclamation timer and dedup entry are done.
            self.cancel_track_expiry(ctx, node, consumed_corr);
            self.link_delivered.remove(node, consumed_corr);
            if let Some(old) = self.refs.take(old_pid) {
                for (n, c) in old {
                    if n == node && c == consumed_corr {
                        continue;
                    }
                    self.qubit_owner.insert(n, c, res.new_pair);
                    new_refs.push((n, c));
                }
            }
        }
        if new_refs.is_empty() {
            // Both outer ends were already abandoned: drop the pair.
            self.pairs.discard(res.new_pair);
        } else {
            self.refs.insert(res.new_pair, new_refs);
        }
        self.trace.record(
            ctx.now(),
            TraceKind::Quantum,
            format!("{node}"),
            format!("SWAP done -> {}", res.outcome),
        );
        let outs = self.nodes[node.0 as usize]
            .qnp
            .handle(NetInput::SwapCompleted {
                circuit,
                up,
                down,
                outcome: res.outcome,
                new_handle: PairHandle(res.new_pair.0),
            });
        self.process_outputs(ctx, node, circuit, outs);
        self.poll_links_of(ctx, node);
    }

    /// Tear a circuit down at every node: the QNP aborts requests and
    /// releases pairs; the label mapping is removed so in-flight link
    /// generations for the circuit are dropped at delivery.
    fn teardown(&mut self, ctx: &mut Context<'_, Ev>, circuit: CircuitId) {
        if self.cfg.signalling_on_wire {
            return self.teardown_wire(ctx, circuit);
        }
        let Some(rt) = self.circuit_rt(circuit) else {
            return;
        };
        let path = rt.path.clone();
        // Byte-accurate signalling: the per-node TEARDOWN round-trips
        // through the wire codec like every other signalling message —
        // scratch-encoded, view-decoded (`circuit` read straight out of
        // the frame bytes). A failed round-trip is counted and the
        // in-memory id used as-is; it never panics the runtime.
        let frame = self
            .scratch
            .frame(|b| qn_routing::wire::SignalMessage::Teardown { circuit }.encode_to(b));
        let circuit = match qn_routing::wire::SignalMessageView::parse(frame) {
            Ok(view) => view.circuit(),
            Err(_) => {
                self.plane.stats.signal_decode_failures += 1;
                circuit
            }
        };
        for node in path {
            let outs = self.nodes[node.0 as usize]
                .qnp
                .handle(NetInput::TeardownCircuit { circuit });
            self.process_outputs(ctx, node, circuit, outs);
        }
        for row in &mut self.label_map {
            row.retain(|(_, info)| info.circuit != circuit);
        }
        self.circuits[circuit.0 as usize] = None;
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            "signalling".to_string(),
            format!("{circuit} torn down"),
        );
    }

    fn measure_done(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        node: NodeId,
        circuit: CircuitId,
        correlator: Correlator,
        basis: Pauli,
    ) {
        let Some(pid) = self.qubit_owner.get(node, correlator) else {
            return;
        };
        let readout = self.nodes[node.0 as usize].device.params().gates.readout;
        let rng = &mut self.rng_nodes[node.0 as usize];
        let result = self
            .pairs
            .measure_end(pid, node, basis, &readout, ctx.now(), rng);
        self.trace.record(
            ctx.now(),
            TraceKind::Quantum,
            format!("{node}"),
            format!("measure {correlator} in {basis:?} -> {}", result.reported),
        );
        // The measured qubit's slot frees immediately; the pair state
        // stays in the store until both ends are done (correlations!).
        if let Some(pair) = self.pairs.get(pid) {
            if let Some(idx) = pair.end_at(node) {
                let qubit = pair.ends()[idx].qubit;
                self.nodes[node.0 as usize].device.free(qubit);
            }
        }
        self.qubit_owner.remove(node, correlator);
        // The dedup entry is done; the track-expiry timer stays armed —
        // a measured pair still awaits its TRACK, and the timeout is
        // what reclaims the request slot if that TRACK never arrives.
        self.link_delivered.remove(node, correlator);
        if let Some(refs) = self.refs.get_mut(pid) {
            refs.retain(|(n, c)| !(*n == node && *c == correlator));
            if refs.is_empty() {
                self.refs.remove(pid);
                self.pairs.discard(pid);
            }
        }
        let outs = self.nodes[node.0 as usize]
            .qnp
            .handle(NetInput::MeasureCompleted {
                circuit,
                correlator,
                outcome: result.reported,
            });
        self.process_outputs(ctx, node, circuit, outs);
        self.poll_links_of(ctx, node);
    }

    // ----- component faults (FaultPlan execution) -----

    /// Dispatch one [`ComponentEvent`] from the expanded fault plan.
    fn component_fault(&mut self, ctx: &mut Context<'_, Ev>, event: ComponentEvent) {
        match event {
            ComponentEvent::LinkDown { a, b } => self.link_down(ctx, a, b),
            ComponentEvent::LinkUp { a, b } => self.link_up(ctx, a, b),
            ComponentEvent::NodeCrash { node } => self.node_crash(ctx, node),
            ComponentEvent::NodeRestart { node } => self.node_restart(ctx, node),
        }
    }

    /// A link goes down: generation halts (any heralding attempt in
    /// flight dies), new frames on the hop are dropped at the sender,
    /// in-flight batches die at delivery, and the link's live pairs are
    /// scrapped through the protocols' expiry machinery.
    fn link_down(&mut self, ctx: &mut Context<'_, Ev>, a: NodeId, b: NodeId) {
        let link = self
            .topology
            .link_between(a, b)
            .expect("validated fault plan names an existing link");
        if !self.links[link.0 as usize].up {
            return;
        }
        self.links[link.0 as usize].up = false;
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            format!("{a}"),
            format!("link {a}-{b} DOWN"),
        );
        self.refresh_link_activity(ctx, link);
        self.scrap_link_pairs(ctx, link);
    }

    /// A downed link comes back: resume generation (unless an endpoint
    /// is still crashed) and re-poll for queued work.
    fn link_up(&mut self, ctx: &mut Context<'_, Ev>, a: NodeId, b: NodeId) {
        let link = self
            .topology
            .link_between(a, b)
            .expect("validated fault plan names an existing link");
        if self.links[link.0 as usize].up {
            return;
        }
        self.links[link.0 as usize].up = true;
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            format!("{a}"),
            format!("link {a}-{b} UP"),
        );
        self.refresh_link_activity(ctx, link);
    }

    /// A node crashes: its volatile protocol state is lost, every pair
    /// end it holds is reclaimed, its timers are disarmed, its attached
    /// links halt, and circuits routed through it are torn down
    /// end-to-end by the management plane (end-nodes see
    /// [`AppEvent::CircuitDown`]). Counters ([`NodeStats`]) survive —
    /// they model the experimenter's observability, not device memory.
    fn node_crash(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId) {
        let idx = node.0 as usize;
        if !self.nodes[idx].up {
            return;
        }
        self.nodes[idx].up = false;
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            format!("{node}"),
            format!("node {node} CRASH"),
        );
        // Tear down circuits through the node first, while the path
        // metadata is still installed: live path nodes discard their
        // queued pairs and stop their link requests through the normal
        // teardown rule; the dead node is skipped (its state is gone).
        let affected: Vec<CircuitId> = self
            .circuits
            .iter()
            .enumerate()
            .filter(|(_, rt)| rt.as_ref().is_some_and(|rt| rt.path.contains(&node)))
            .map(|(i, _)| CircuitId(i as u64))
            .collect();
        for circuit in affected {
            self.teardown_by_fault(ctx, circuit, node);
        }
        // The crash wipes the node's protocol state; stale correlators
        // arriving after restart hit a fresh instance and are absorbed
        // (and counted) by the anomaly rules.
        let stats = self.nodes[idx].qnp.stats;
        self.nodes[idx].qnp = QnpNode::new(node);
        self.nodes[idx].qnp.stats = stats;
        // Reclaim every pair end the node still holds (memory power
        // loss): the far ends of swapped chains survive, depolarised.
        let held: Vec<Correlator> = self.qubit_owner.rows[idx].iter().map(|(c, _)| *c).collect();
        for correlator in held {
            self.discarded_pairs += 1;
            self.release_end(ctx, node, correlator, true);
        }
        // Disarm every timer keyed at the node.
        for (_, ev) in self.cutoff_events.drain_row(node) {
            ctx.cancel(ev);
        }
        for (_, ev) in self.track_expiry_events.drain_row(node) {
            ctx.cancel(ev);
        }
        for (_, retry) in self.track_retransmits.drain_row(node) {
            ctx.cancel(retry.event);
        }
        self.link_delivered.drain_row(node);
        // Attached links can no longer generate.
        for link in self.topology.links_of(node) {
            self.refresh_link_activity(ctx, link);
        }
    }

    /// A crashed node restarts with a blank protocol instance and
    /// re-registers its links: any attached link whose other pieces are
    /// healthy resumes generation immediately.
    fn node_restart(&mut self, ctx: &mut Context<'_, Ev>, node: NodeId) {
        let idx = node.0 as usize;
        if self.nodes[idx].up {
            return;
        }
        self.nodes[idx].up = true;
        self.trace.record(
            ctx.now(),
            TraceKind::Info,
            format!("{node}"),
            format!("node {node} RESTART"),
        );
        for link in self.topology.links_of(node) {
            self.refresh_link_activity(ctx, link);
        }
    }

    /// Reconcile a link's generation activity with the up/down state of
    /// the link and its endpoints: pause (aborting any heralding attempt
    /// in flight) when any of the three is down; resume and re-poll when
    /// all are healthy again.
    fn refresh_link_activity(&mut self, ctx: &mut Context<'_, Ev>, link: LinkId) {
        let l = &self.links[link.0 as usize];
        let alive = l.up && self.nodes[l.a.0 as usize].up && self.nodes[l.b.0 as usize].up;
        if alive {
            self.links[link.0 as usize].proto.resume();
            self.poll_link(ctx, link);
        } else {
            self.links[link.0 as usize].proto.pause();
            self.abort_link_inflight(ctx, link);
        }
    }

    /// Cancel a heralding attempt in flight on the link: the generation
    /// event is descheduled, the protocol is charged the elapsed time,
    /// and the reserved communication qubits return to their devices.
    fn abort_link_inflight(&mut self, ctx: &mut Context<'_, Ev>, link: LinkId) {
        let l = &mut self.links[link.0 as usize];
        if let Some(inflight) = l.inflight.take() {
            ctx.cancel(inflight.event);
            let elapsed = ctx.now().since(inflight.started);
            l.proto.on_generation_aborted(inflight.label, elapsed);
            let (na, qa) = inflight.qubit_a;
            let (nb, qb) = inflight.qubit_b;
            self.nodes[na.0 as usize].device.free(qa);
            self.nodes[nb.0 as usize].device.free(qb);
        }
    }

    /// Scrap every live pair end whose correlator was generated on a
    /// link that just died, through the protocols' own expiry machinery:
    /// end-nodes expire the pair as if its track-timeout fired,
    /// repeaters as if its cutoff fired (both paths discard the pair,
    /// record the dead correlator and recover lost TRACKs with EXPIREs).
    /// Ends the protocol never learned of (announcement lost with the
    /// link) are reclaimed directly, like the orphan check would.
    fn scrap_link_pairs(&mut self, ctx: &mut Context<'_, Ev>, link: LinkId) {
        let (a, b) = (self.links[link.0 as usize].a, self.links[link.0 as usize].b);
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        for node in [a, b] {
            let held: Vec<Correlator> = self.qubit_owner.rows[node.0 as usize]
                .iter()
                .map(|(c, _)| *c)
                .filter(|c| c.node_a == lo && c.node_b == hi)
                .collect();
            for correlator in held {
                let owner = self.label_map[link.0 as usize]
                    .iter()
                    .find(|(_, info)| {
                        self.nodes[node.0 as usize]
                            .qnp
                            .knows_pair(info.circuit, correlator)
                    })
                    .map(|(_, info)| (info.circuit, info.upstream_node));
                match owner {
                    Some((circuit, upstream_node)) => {
                        let side = if node == upstream_node {
                            LinkSide::Downstream
                        } else {
                            LinkSide::Upstream
                        };
                        let outs = if self.is_intermediate_on(circuit, node) {
                            if let Some(ev) = self.cutoff_events.remove(node, correlator) {
                                ctx.cancel(ev);
                            }
                            self.nodes[node.0 as usize]
                                .qnp
                                .handle(NetInput::CutoffExpired {
                                    circuit,
                                    side,
                                    correlator,
                                })
                        } else {
                            self.cancel_track_expiry(ctx, node, correlator);
                            self.nodes[node.0 as usize]
                                .qnp
                                .handle(NetInput::TrackTimeout {
                                    circuit,
                                    correlator,
                                })
                        };
                        self.process_outputs(ctx, node, circuit, outs);
                    }
                    None => {
                        self.discarded_pairs += 1;
                        self.release_end(ctx, node, correlator, true);
                    }
                }
            }
        }
    }

    /// Management-plane teardown after a node death: every *live* node
    /// on the path drops the circuit through the normal teardown rule
    /// (end-nodes report [`AppEvent::CircuitDown`] to their
    /// applications); wire-signalling retransmit timers for the circuit
    /// are disarmed — there is no peer left to ack them.
    fn teardown_by_fault(&mut self, ctx: &mut Context<'_, Ev>, circuit: CircuitId, dead: NodeId) {
        let Some(rt) = self.circuit_rt(circuit) else {
            return;
        };
        let path = rt.path.clone();
        if let Some(st) = self
            .signal_state
            .get_mut(circuit.0 as usize)
            .and_then(Option::as_mut)
        {
            st.tearing = true;
            for slot in st.pending.iter_mut() {
                if let Some(retry) = slot.take() {
                    ctx.cancel(retry.event);
                }
            }
            for torn in st.torn.iter_mut() {
                *torn = true;
            }
        }
        for node in path {
            if node == dead || !self.nodes[node.0 as usize].up {
                continue;
            }
            let outs = self.nodes[node.0 as usize]
                .qnp
                .handle(NetInput::TeardownCircuit { circuit });
            self.process_outputs(ctx, node, circuit, outs);
        }
        self.finish_teardown(circuit);
    }

    /// Leak introspection: every timer currently armed with the
    /// scheduler — cutoffs, track expiries, TRACK retransmits and
    /// signalling retransmits. Zero after a settled run.
    pub fn armed_timers(&self) -> usize {
        let signal_pending: usize = self
            .signal_state
            .iter()
            .flatten()
            .map(|st| st.pending.iter().flatten().count())
            .sum();
        self.cutoff_events.len()
            + self.track_expiry_events.len()
            + self.track_retransmits.len()
            + signal_pending
    }

    /// Leak introspection: correlator state the runtime retains — live
    /// pair ends plus PAIR_READY dedup records. Zero after a settled
    /// run.
    pub fn retained_correlators(&self) -> usize {
        self.qubit_owner.len() + self.link_delivered.len()
    }
}

impl Model for NetworkModel {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Context<'_, Ev>) {
        let _ = now;
        match event {
            Ev::BatchDeliver {
                to,
                from_upstream,
                batch,
                link,
            } => {
                let buf = self
                    .plane
                    .take_batch(batch)
                    .expect("BatchDeliver drains each open batch exactly once");
                // The envelope was built by the plane (faults corrupt
                // inner frames *before* batching), so it always parses;
                // only the per-frame decodes can fail.
                let view = qn_net::wire::BatchView::parse(&buf)
                    .expect("plane-built batch envelope is well-formed");
                // A component fault took the hop (or the receiver) down
                // while the batch was in flight: every frame in it dies
                // on the wire. Plan-free runs never take this branch.
                if !self.links[link.0 as usize].up || !self.nodes[to.0 as usize].up {
                    let lost = view.frames().count() as u64;
                    self.plane.stats.delivered -= lost;
                    self.plane.stats.dropped += lost;
                    self.plane.recycle(buf);
                    return;
                }
                let wire = self.cfg.signalling_on_wire;
                for frame in view.frames() {
                    // One lane carries three planes; the kind byte
                    // demuxes. Link-layer and signalling kinds only ever
                    // appear with `signalling_on_wire` (their handlers
                    // are total regardless).
                    match frame.get(1).copied() {
                        Some(k)
                            if (qn_net::wire::KIND_LINK_PAIR_READY
                                ..=qn_net::wire::KIND_LINK_REJECTED)
                                .contains(&k) =>
                        {
                            self.handle_link_frame(ctx, to, frame);
                            continue;
                        }
                        Some(k)
                            if (qn_net::wire::KIND_SIGNAL_INSTALL
                                ..=qn_net::wire::KIND_SIGNAL_TEARDOWN_ACK)
                                .contains(&k) =>
                        {
                            self.handle_signal_frame(ctx, to, frame);
                            continue;
                        }
                        _ => {}
                    }
                    let is_track = frame.get(1).copied() == Some(qn_net::wire::KIND_TRACK);
                    // Borrow-decode at the receiver: a frame corrupted
                    // in flight may fail here (counted, dropped — the
                    // message is simply lost) or decode into a different
                    // valid message the protocol rules must absorb.
                    match self.nodes[to.0 as usize]
                        .qnp
                        .handle_frame(from_upstream, frame)
                    {
                        Ok((circuit, outs)) => {
                            self.process_outputs(ctx, to, circuit, outs);
                            // End-to-end TRACK acknowledgement: an
                            // end-node receiving a TRACK (first copy or
                            // duplicate — re-acks recover lost acks)
                            // answers towards its origin. Guarded
                            // structurally, not just by role: a
                            // corrupted circuit id can name a circuit
                            // this node is not an end of (or not on at
                            // all), and the ack can only go where the
                            // named circuit actually has a hop.
                            let ack_down = !from_upstream;
                            let can_ack = wire
                                && is_track
                                && self.circuit_rt(circuit).is_some_and(|rt| {
                                    match rt.path.iter().position(|n| *n == to) {
                                        Some(0) => ack_down && rt.path.len() > 1,
                                        Some(i) => i + 1 == rt.path.len() && !ack_down,
                                        None => false,
                                    }
                                });
                            if can_ack {
                                if let Ok(qn_net::wire::MessageView::Track(t)) =
                                    qn_net::wire::MessageView::parse(frame)
                                {
                                    let ack = Message::TrackAck(TrackAck {
                                        circuit,
                                        origin: t.origin(),
                                    });
                                    self.plane.stats.track_acks += 1;
                                    self.send_message(ctx, to, circuit, ack_down, ack);
                                }
                            }
                        }
                        Err(err) => {
                            self.plane.stats.count_decode_failure(frame.get(1).copied());
                            self.trace.record(
                                now,
                                TraceKind::Info,
                                format!("{to}"),
                                format!("undecodable frame dropped: {err}"),
                            );
                        }
                    }
                }
                self.plane.recycle(buf);
            }
            Ev::TrackExpiry {
                node,
                circuit,
                correlator,
            } => {
                self.track_expiry_events.remove(node, correlator);
                let outs = self.nodes[node.0 as usize]
                    .qnp
                    .handle(NetInput::TrackTimeout {
                        circuit,
                        correlator,
                    });
                self.process_outputs(ctx, node, circuit, outs);
            }
            Ev::OrphanCheck {
                node,
                circuit,
                correlator,
                side,
            } => {
                // Announcement delivery is a single classical hop, so by
                // now a pair the QNP has never heard of lost its
                // PAIR_READY for good: reclaim the qubit and let the
                // protocol bounce EXPIREs for any TRACK that references
                // it. A resolved (delivered, swapped or discarded) pair
                // makes this a no-op — the check is never cancelled.
                if self.qubit_owner.get(node, correlator).is_some()
                    && !self.nodes[node.0 as usize]
                        .qnp
                        .knows_pair(circuit, correlator)
                {
                    self.discarded_pairs += 1;
                    self.trace.record(
                        now,
                        TraceKind::Discard,
                        format!("{node}"),
                        format!("orphaned pair {correlator} reclaimed"),
                    );
                    self.release_end(ctx, node, correlator, true);
                    let outs = self.nodes[node.0 as usize]
                        .qnp
                        .handle(NetInput::LinkOrphaned {
                            circuit,
                            side,
                            correlator,
                        });
                    self.process_outputs(ctx, node, circuit, outs);
                }
            }
            Ev::GenDone { link } => self.gen_done(ctx, link),
            Ev::SwapDone {
                node,
                circuit,
                up,
                down,
            } => self.swap_done(ctx, node, circuit, up, down),
            Ev::MeasureDone {
                node,
                circuit,
                correlator,
                basis,
            } => self.measure_done(ctx, node, circuit, correlator, basis),
            Ev::Cutoff {
                node,
                circuit,
                side,
                correlator,
            } => {
                self.cutoff_events.remove(node, correlator);
                let outs = self.nodes[node.0 as usize]
                    .qnp
                    .handle(NetInput::CutoffExpired {
                        circuit,
                        side,
                        correlator,
                    });
                self.process_outputs(ctx, node, circuit, outs);
            }
            Ev::MoveDone {
                node,
                pair,
                storage,
                link: _,
                circuit,
                side,
                info,
            } => self.move_done(ctx, node, pair, storage, circuit, side, info),
            Ev::SubmitRequest { circuit, request } => {
                let head = self.circuit_rt(circuit).expect("circuit installed").path[0];
                self.app.submitted.insert((circuit, request.id), ctx.now());
                let outs = self.nodes[head.0 as usize]
                    .qnp
                    .handle(NetInput::UserRequest { circuit, request });
                self.process_outputs(ctx, head, circuit, outs);
            }
            Ev::CancelRequest { circuit, request } => {
                let head = self.circuit_rt(circuit).expect("circuit installed").path[0];
                let outs = self.nodes[head.0 as usize]
                    .qnp
                    .handle(NetInput::CancelRequest { circuit, request });
                self.process_outputs(ctx, head, circuit, outs);
            }
            Ev::TrackRetransmit {
                node,
                circuit,
                origin,
            } => self.track_retransmit_fire(ctx, node, circuit, origin),
            Ev::SignalKick { circuit } => self.signal_kick(ctx, circuit),
            Ev::SignalRetransmit { circuit, hop } => self.signal_retransmit_fire(ctx, circuit, hop),
            Ev::RequestResend {
                node,
                circuit,
                downstream,
                attempt,
                msg,
            } => self.request_resend_fire(ctx, node, circuit, downstream, attempt, msg),
            Ev::Teardown { circuit } => self.teardown(ctx, circuit),
            Ev::Checkpoint => {
                self.pairs.advance_all(now);
                if let CheckpointPolicy::Interval(dt) = self.cfg.checkpoint {
                    ctx.schedule_in(dt, Ev::Checkpoint);
                }
            }
            Ev::ComponentFault { event } => self.component_fault(ctx, event),
        }
    }
}
