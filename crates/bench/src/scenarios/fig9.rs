//! Fig 9 — latency vs throughput under congestion.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::{dumbbell, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

/// Result of one Fig 9 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Point {
    /// A0-B0 circuit throughput in the measurement window, pairs/s.
    pub throughput: f64,
    /// Mean latency of measured requests, seconds.
    pub mean_latency: f64,
    /// 5th percentile latency, seconds.
    pub p5: f64,
    /// 95th percentile latency, seconds.
    pub p95: f64,
    /// Requests measured.
    pub measured: usize,
}

/// Fig 9: 3-pair requests at fixed intervals on A0-B0, with the network
/// otherwise empty or congested by a long-running A1-B1 flow. Latency is
/// measured for requests issued after the 40 s mark; throughput over the
/// same window.
pub fn fig9_scenario(seed: u64, congested: bool, interval: SimDuration) -> Fig9Point {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut builder = NetworkBuilder::new(topology).seed(seed);
    if crate::sweep::wire_on() {
        builder = builder.signalling_on_wire();
    }
    let mut sim = builder.build();
    let fidelity = 0.9;
    let vc = sim
        .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
        .expect("plan");
    if congested {
        let vc2 = sim
            .open_circuit(d.a1, d.b1, fidelity, CutoffPolicy::short())
            .expect("plan");
        sim.submit_at(
            SimTime::ZERO,
            vc2,
            keep_request(1_000_000, d.a1, d.b1, fidelity, u64::MAX / 2),
        );
    }
    let warmup = SimTime::ZERO + SimDuration::from_secs(40);
    let end = SimTime::ZERO + SimDuration::from_secs(50);
    let mut t = SimTime::ZERO;
    let mut id = 1u64;
    let mut measured_ids = Vec::new();
    while t < end {
        let req = keep_request(id, d.a0, d.b0, fidelity, 3);
        if t >= warmup {
            measured_ids.push(req.id);
        }
        sim.submit_at(t, vc, req);
        id += 1;
        t += interval;
    }
    sim.run_until(end + SimDuration::from_secs(10));
    let app = sim.app();
    let mut lats: Vec<f64> = measured_ids
        .iter()
        .filter_map(|r| app.request_latency(vc, *r))
        .map(|l| l.as_secs_f64())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let thr = app.confirmed_deliveries(vc, d.a0, warmup, end) as f64 / 10.0;
    let pct = |q: f64| -> f64 {
        if lats.is_empty() {
            f64::NAN
        } else {
            lats[((q * (lats.len() - 1) as f64).round() as usize).min(lats.len() - 1)]
        }
    };
    Fig9Point {
        throughput: thr,
        mean_latency: if lats.is_empty() {
            f64::NAN
        } else {
            lats.iter().sum::<f64>() / lats.len() as f64
        },
        p5: pct(0.05),
        p95: pct(0.95),
        measured: lats.len(),
    }
}
