//! Link-layer protocol tests: model-based behaviour checking plus
//! shrinkable physics properties.
//!
//! The old ad-hoc invariant property (one generation in flight,
//! increasing sequence numbers, no over-delivery) is replaced by the
//! `qn_testkit` model test, which is strictly stronger: the reference
//! model predicts the *exact* admission decision, schedule (which
//! label generates next, under weighted time-sharing), delivered-pair
//! fields and lifecycle events for every operation — and a divergence
//! shrinks to a minimal operation sequence.

use proptest::prelude::*;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_link::{LinkLabel, LinkProtocol, LinkRequest, PairDemand};
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration};
use qn_testkit::models::link::LinkSpec;
use qn_testkit::ModelTest;

/// Random submit/stop/reweight/drive/abort sequences: the protocol
/// must match the reference state machine on every observable.
#[test]
fn protocol_matches_reference_model() {
    ModelTest::new("link_protocol_matches_model", LinkSpec::new())
        .cases(160)
        .max_ops(64)
        .run();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Goodness (the link layer's fidelity estimate) always meets the
    /// requested minimum, for any attainable request.
    #[test]
    fn goodness_meets_requested_fidelity(fidelity in 0.7f64..0.96) {
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut p = LinkProtocol::new((NodeId(0), NodeId(1)), physics);
        let evs = p.submit(LinkRequest {
            label: LinkLabel(0),
            min_fidelity: fidelity,
            demand: PairDemand::Count(1),
            weight: 1.0,
        });
        prop_assume!(evs.is_empty()); // attainable
        let spec = p.next_action().unwrap();
        p.on_generation_started(spec.label);
        let (pair, _) = p.on_generation_complete(
            BellState::PSI_MINUS,
            3,
            SimDuration::from_millis(2),
        );
        prop_assert!(pair.goodness >= fidelity - 1e-9,
            "goodness {} below requested {}", pair.goodness, fidelity);
    }

    /// The schedule never starves anyone: with N equal-weight
    /// continuous requests and equal-cost slots, any window of 2N
    /// consecutive slots serves every label at least once.
    #[test]
    fn equal_weights_never_starve(n in 2usize..5, slots in 10usize..40) {
        let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut p = LinkProtocol::new((NodeId(0), NodeId(1)), physics);
        for label in 0..n {
            let evs = p.submit(LinkRequest {
                label: LinkLabel(label as u32),
                min_fidelity: 0.85,
                demand: PairDemand::Continuous,
                weight: 1.0,
            });
            prop_assert!(evs.is_empty());
        }
        let mut history = Vec::new();
        for _ in 0..slots {
            let spec = p.next_action().unwrap();
            history.push(spec.label);
            p.on_generation_started(spec.label);
            p.on_generation_complete(BellState::PSI_PLUS, 1, SimDuration::from_millis(1));
        }
        for window in history.windows(2 * n) {
            for label in 0..n {
                prop_assert!(
                    window.contains(&LinkLabel(label as u32)),
                    "label {label} starved in window {window:?}"
                );
            }
        }
    }
}
