//! **Tables 1 and 2** — the hardware parameter sets of Appendix B,
//! printed in the paper's layout. The unit tests in
//! `qn-hardware::params` assert every value; this harness regenerates
//! the tables for visual comparison.
//!
//! Run: `cargo bench --bench tables_params`.

use qn_bench::{Baseline, Direction};
use qn_hardware::params::HardwareParams;

fn fmt_opt(v: Option<f64>, scale: f64, unit: &str) -> String {
    v.map(|x| format!("{:.4} {unit}", x * scale))
        .unwrap_or_else(|| "—".into())
}

fn main() {
    let sim = HardwareParams::simulation();
    let nt = HardwareParams::near_term();

    println!("# Table 1 — quantum gate parameters");
    println!(
        "# {:44} {:>18} {:>18}",
        "parameter", "Simulation", "Near-term"
    );
    let rows = [
        (
            "Electron single-qubit gate fidelity",
            format!("{}", sim.gates.electron_single.fidelity),
            format!("{}", nt.gates.electron_single.fidelity),
        ),
        (
            "Electron single-qubit gate duration",
            format!("{:.0} ns", sim.gates.electron_single.duration * 1e9),
            format!("{:.0} ns", nt.gates.electron_single.duration * 1e9),
        ),
        (
            "Two-qubit gate fidelity",
            format!("{}", sim.gates.two_qubit.fidelity),
            format!("{}", nt.gates.two_qubit.fidelity),
        ),
        (
            "Two-qubit gate duration",
            format!("{:.0} us", sim.gates.two_qubit.duration * 1e6),
            format!("{:.0} us", nt.gates.two_qubit.duration * 1e6),
        ),
        (
            "Carbon Rot-Z duration",
            "—".into(),
            format!(
                "{:.0} us",
                nt.gates.carbon_rot_z.map(|g| g.duration).unwrap_or(0.0) * 1e6
            ),
        ),
        (
            "Electron init fidelity / duration",
            format!(
                "{} / {:.0} us",
                sim.gates.electron_init.fidelity,
                sim.gates.electron_init.duration * 1e6
            ),
            format!(
                "{} / {:.0} us",
                nt.gates.electron_init.fidelity,
                nt.gates.electron_init.duration * 1e6
            ),
        ),
        (
            "Carbon init fidelity / duration",
            "—".into(),
            format!(
                "{} / {:.0} us",
                nt.gates.carbon_init.map(|g| g.fidelity).unwrap_or(0.0),
                nt.gates.carbon_init.map(|g| g.duration).unwrap_or(0.0) * 1e6
            ),
        ),
        (
            "Electron readout fidelity (|0>, |1>)",
            format!(
                "{}, {}",
                sim.gates.readout.fidelity0, sim.gates.readout.fidelity1
            ),
            format!(
                "{}, {}",
                nt.gates.readout.fidelity0, nt.gates.readout.fidelity1
            ),
        ),
        (
            "Electron readout duration",
            format!("{:.1} us", sim.gates.readout.duration * 1e6),
            format!("{:.1} us", nt.gates.readout.duration * 1e6),
        ),
    ];
    for (name, s, n) in rows {
        println!("{name:46} {s:>18} {n:>18}");
    }

    println!("#\n# Table 2 — other hardware parameters");
    println!(
        "# {:44} {:>18} {:>18}",
        "parameter", "Simulation", "Near-term"
    );
    let rows2 = [
        (
            "Electron T1",
            format!("{:.0} s (>1 h)", sim.electron_t1),
            format!("{:.0} s (>1 h)", nt.electron_t1),
        ),
        (
            "Electron T2*",
            format!("{} s", sim.electron_t2),
            format!("{} s", nt.electron_t2),
        ),
        (
            "Carbon T1",
            fmt_opt(sim.carbon_t1, 1.0, "s"),
            fmt_opt(nt.carbon_t1, 1.0, "s"),
        ),
        (
            "Carbon T2*",
            fmt_opt(sim.carbon_t2, 1.0, "s"),
            fmt_opt(nt.carbon_t2, 1.0, "s"),
        ),
        (
            "Delta-omega / 2pi",
            fmt_opt(
                sim.delta_omega,
                1.0 / (2.0 * std::f64::consts::PI * 1e3),
                "kHz",
            ),
            fmt_opt(
                nt.delta_omega,
                1.0 / (2.0 * std::f64::consts::PI * 1e3),
                "kHz",
            ),
        ),
        (
            "tau_d",
            fmt_opt(sim.tau_d, 1e9, "ns"),
            fmt_opt(nt.tau_d, 1e9, "ns"),
        ),
        (
            "tau_w",
            format!("{:.0} ns", sim.tau_w * 1e9),
            format!("{:.0} ns", nt.tau_w * 1e9),
        ),
        (
            "tau_e",
            format!("{:.2} ns", sim.tau_e * 1e9),
            format!("{:.2} ns", nt.tau_e * 1e9),
        ),
        (
            "Delta-phi",
            format!("{:.1} deg", sim.delta_phi.to_degrees()),
            format!("{:.1} deg", nt.delta_phi.to_degrees()),
        ),
        (
            "p_double_excitation",
            format!("{}", sim.p_double_excitation),
            format!("{}", nt.p_double_excitation),
        ),
        (
            "p_zero_phonon",
            format!("{}", sim.p_zero_phonon),
            format!("{}", nt.p_zero_phonon),
        ),
        (
            "Collection efficiency",
            format!("{:.2e}", sim.collection_efficiency),
            format!("{:.2e}", nt.collection_efficiency),
        ),
        (
            "Dark count rate",
            format!("{} /s", sim.dark_count_rate),
            format!("{} /s", nt.dark_count_rate),
        ),
        (
            "p_detection",
            format!("{}", sim.p_detection),
            format!("{}", nt.p_detection),
        ),
        (
            "Visibility",
            format!("{}", sim.visibility),
            format!("{}", nt.visibility),
        ),
    ];
    for (name, s, n) in rows2 {
        println!("{name:46} {s:>18} {n:>18}");
    }
    println!("#\n# values asserted against the paper in qn-hardware::params tests");

    // Machine-readable baseline: the numeric parameters, per variant.
    // Informational only — a change here is a deliberate model edit, not
    // a performance regression — but the diff still surfaces it.
    let mut baseline = Baseline::new("tables_params")
        .direction("electron_t2_s", Direction::Informational)
        .direction("two_qubit_gate_fidelity", Direction::Informational)
        .direction("collection_efficiency", Direction::Informational)
        .direction("p_detection", Direction::Informational)
        .direction("visibility", Direction::Informational);
    for (key, p) in [("simulation", &sim), ("near_term", &nt)] {
        baseline.point(
            format!("params/{key}"),
            &[
                ("electron_t2_s", p.electron_t2),
                ("two_qubit_gate_fidelity", p.gates.two_qubit.fidelity),
                ("collection_efficiency", p.collection_efficiency),
                ("p_detection", p.p_detection),
                ("visibility", p.visibility),
            ],
        );
    }
    let path = baseline.write().expect("write baseline");
    println!("# baseline: {}", path.display());
}
