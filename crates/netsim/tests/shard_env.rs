//! The `QNP_SHARDS` environment knob. Lives in its own integration
//! binary so the env-var mutation cannot race the equivalence suite —
//! integration test files run as separate processes.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::dumbbell;

fn build() -> qn_netsim::build::NetSim {
    let (topology, _) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    NetworkBuilder::new(topology).seed(5).build()
}

/// Unset ⇒ the single-queue engine; a positive integer ⇒ that many
/// shards; an explicit builder call wins over the env; zero or garbage
/// fails fast. One test fn keeps the env mutation sequential.
#[test]
fn qnp_shards_env_selects_the_engine() {
    std::env::remove_var("QNP_SHARDS");
    assert!(build().shard_stats().is_none());
    assert_eq!(build().shards(), 1);

    std::env::set_var("QNP_SHARDS", "3");
    let sim = build();
    assert_eq!(sim.shards(), 3);
    assert!(sim.shard_stats().is_some());

    // Builder override beats the env knob.
    let (topology, _) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let sim = NetworkBuilder::new(topology).seed(5).shards(2).build();
    assert_eq!(sim.shards(), 2);

    // Zero or garbage fails fast at build — never a silent fallback to
    // a different engine.
    for bad in ["0", "many"] {
        std::env::set_var("QNP_SHARDS", bad);
        let Err(err) = std::panic::catch_unwind(|| {
            build();
        }) else {
            panic!("invalid QNP_SHARDS must panic at build");
        };
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("invalid QNP_SHARDS"),
            "QNP_SHARDS={bad:?} panic message: {msg:?}"
        );
    }
    std::env::remove_var("QNP_SHARDS");

    let Err(err) = std::panic::catch_unwind(|| {
        let (topology, _) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
        let _ = NetworkBuilder::new(topology).shards(0);
    }) else {
        panic!("shards(0) must panic");
    };
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("invalid shard count"), "message: {msg:?}");
}
