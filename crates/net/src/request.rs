//! User-facing request model: the network layer service of paper §3.2.

use crate::ids::{Address, RequestId};
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::SimDuration;

/// When the delivered pair is consumed (FORWARD's `request_type`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestType {
    /// Deliver once creation is confirmed by tracking (default).
    Keep,
    /// Deliver the qubit as soon as it is available at the end-node; the
    /// application takes over error handling (paper §4.1 "Early
    /// delivery").
    Early,
    /// Measure immediately in the given basis; withhold the outcome until
    /// tracking confirms the pair.
    Measure(Pauli),
}

/// The "class of service: time" of §3.2.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Demand {
    /// Measure-directly (i): `N` pairs by deadline `T` (`None` = no
    /// deadline).
    Pairs {
        /// Number of pairs requested.
        n: u64,
        /// Optional deadline.
        deadline: Option<SimDuration>,
    },
    /// Measure-directly (ii): a rate of `R` pairs per unit time, until
    /// cancelled.
    Rate {
        /// Requested pairs per second.
        pairs_per_sec: f64,
    },
    /// Create-and-keep: `N` pairs by deadline `T`, the last at most `Δt`
    /// after the first.
    CreateAndKeep {
        /// Number of pairs requested.
        n: u64,
        /// Optional deadline.
        deadline: Option<SimDuration>,
        /// Maximum spread between first and last delivery.
        max_spread: SimDuration,
    },
}

impl Demand {
    /// The request's minimum end-to-end rate (EER) in pairs per second,
    /// used for policing and shaping (paper §4.1: "measure directly:
    /// N/T, R, or 0 if T not set; create and keep: N/Δt").
    pub fn min_eer(&self) -> f64 {
        match self {
            Demand::Pairs { n, deadline } => match deadline {
                Some(t) if t.as_secs_f64() > 0.0 => *n as f64 / t.as_secs_f64(),
                _ => 0.0,
            },
            Demand::Rate { pairs_per_sec } => *pairs_per_sec,
            Demand::CreateAndKeep { n, max_spread, .. } => {
                if max_spread.as_secs_f64() > 0.0 && !max_spread.is_infinite() {
                    *n as f64 / max_spread.as_secs_f64()
                } else {
                    0.0
                }
            }
        }
    }

    /// Total pairs, if bounded.
    pub fn count(&self) -> Option<u64> {
        match self {
            Demand::Pairs { n, .. } | Demand::CreateAndKeep { n, .. } => Some(*n),
            Demand::Rate { .. } => None,
        }
    }
}

/// A request submitted by an application to the head-end node.
#[derive(Clone, Copy, Debug)]
pub struct UserRequest {
    /// Application-chosen request id (unique per address pair).
    pub id: RequestId,
    /// End-point at the head-end node.
    pub head: Address,
    /// End-point at the tail-end node.
    pub tail: Address,
    /// Minimum end-to-end fidelity threshold `F`.
    pub min_fidelity: f64,
    /// Pairs / rate / create-and-keep demand.
    pub demand: Demand,
    /// Consumption mode.
    pub request_type: RequestType,
    /// If set, deliver pairs in this particular Bell state (the head-end
    /// performs the Pauli correction; unavailable for EARLY requests).
    pub final_state: Option<BellState>,
}

impl UserRequest {
    /// Validate structural constraints (paper: EARLY requests cannot ask
    /// for a final-state correction, since the qubit leaves the QNP's
    /// hands before tracking completes).
    pub fn validate(&self) -> Result<(), &'static str> {
        if matches!(self.request_type, RequestType::Early) && self.final_state.is_some() {
            return Err("final_state is unavailable for EARLY requests");
        }
        if !(0.0..=1.0).contains(&self.min_fidelity) {
            return Err("fidelity threshold must be within [0, 1]");
        }
        if let Demand::Rate { pairs_per_sec } = self.demand {
            if !(pairs_per_sec.is_finite() && pairs_per_sec > 0.0) {
                return Err("rate must be positive and finite");
            }
        }
        if self.demand.count() == Some(0) {
            return Err("request for zero pairs");
        }
        Ok(())
    }

    /// Whether this request contributes a fixed rate (used by the LPR
    /// scaling rule of §4.1 "Continuous link generation").
    pub fn is_rate_based(&self) -> bool {
        matches!(self.demand, Demand::Rate { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::NodeId;

    fn base() -> UserRequest {
        UserRequest {
            id: RequestId(1),
            head: Address {
                node: NodeId(0),
                identifier: 1,
            },
            tail: Address {
                node: NodeId(3),
                identifier: 1,
            },
            min_fidelity: 0.8,
            demand: Demand::Pairs {
                n: 10,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        }
    }

    #[test]
    fn eer_rules_match_paper() {
        // N pairs with deadline T: N/T.
        let d = Demand::Pairs {
            n: 10,
            deadline: Some(SimDuration::from_secs(5)),
        };
        assert!((d.min_eer() - 2.0).abs() < 1e-12);
        // No deadline: 0.
        let d = Demand::Pairs {
            n: 10,
            deadline: None,
        };
        assert_eq!(d.min_eer(), 0.0);
        // Rate: R.
        let d = Demand::Rate { pairs_per_sec: 3.5 };
        assert!((d.min_eer() - 3.5).abs() < 1e-12);
        // Create-and-keep: N/Δt.
        let d = Demand::CreateAndKeep {
            n: 4,
            deadline: None,
            max_spread: SimDuration::from_secs(2),
        };
        assert!((d.min_eer() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn early_with_final_state_invalid() {
        let mut r = base();
        r.request_type = RequestType::Early;
        r.final_state = Some(BellState::PHI_PLUS);
        assert!(r.validate().is_err());
        r.final_state = None;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn zero_pairs_invalid() {
        let mut r = base();
        r.demand = Demand::Pairs {
            n: 0,
            deadline: None,
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn bad_rate_invalid() {
        let mut r = base();
        r.demand = Demand::Rate { pairs_per_sec: 0.0 };
        assert!(r.validate().is_err());
        r.demand = Demand::Rate {
            pairs_per_sec: f64::INFINITY,
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn measure_requests_are_valid() {
        let mut r = base();
        r.request_type = RequestType::Measure(Pauli::X);
        assert!(r.validate().is_ok());
        assert!(!r.is_rate_based());
    }
}
