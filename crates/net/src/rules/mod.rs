//! The QNP rule implementations (Appendix C.3).
//!
//! * [`endpoint`] — head-end rules (Algorithms 1–3) and tail-end rules
//!   (Algorithms 4–6), which differ only in the head-end's management
//!   duties (policing, epochs, FORWARD/COMPLETE origination, Pauli
//!   correction);
//! * [`repeater`] — intermediate-node rules (Algorithms 7–9): swap
//!   scheduling, swap records, entanglement-tracking relay, cutoff
//!   discards and discard records.

pub mod endpoint;
pub mod repeater;

use crate::events::{AppEvent, NetOutput};
use crate::ids::CircuitId;
use crate::messages::Message;
use crate::node::{Circuit, CircuitState, NodeStats};

/// Route an incoming message to the right rule for this node's role.
///
/// Every rule must *absorb* anomalous inputs — duplicates, stale
/// references, role-inconsistent messages — rather than panic or corrupt
/// state: on a faulty classical plane (drops, duplication, reordering,
/// byte corruption) all of them occur. Absorbed anomalies are counted
/// in [`NodeStats`].
pub(crate) fn dispatch_message(
    circuit: CircuitId,
    c: &mut Circuit,
    from_upstream: bool,
    msg: Message,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    match (&mut c.state, msg) {
        (CircuitState::Endpoint(_), Message::Track(t)) => {
            endpoint::track_rule(circuit, c, t, out, stats);
        }
        (CircuitState::Endpoint(_), Message::Expire(e)) => {
            endpoint::expire_rule(c, e, out, stats);
        }
        (CircuitState::Endpoint(_), Message::Forward(f)) => {
            endpoint::on_forward(c, f, out, stats);
        }
        (CircuitState::Endpoint(_), Message::Complete(m)) => {
            endpoint::on_complete(c, m, out, stats);
        }
        (CircuitState::Endpoint(_), Message::TrackAck(a)) => {
            // Consumed at the origin end-node: let the runtime disarm
            // its retransmit timer. Stray acks no-op there.
            out.push(NetOutput::TrackAcked { origin: a.origin });
        }
        (CircuitState::Mid(_), Message::Track(t)) => {
            repeater::track_rule(c, from_upstream, t, out, stats);
        }
        (CircuitState::Mid(_), Message::Expire(e)) => {
            // Intermediate nodes relay EXPIRE along the circuit towards
            // the TRACK's origin end-node.
            if from_upstream {
                out.push(NetOutput::SendDownstream(Message::Expire(e)));
            } else {
                out.push(NetOutput::SendUpstream(Message::Expire(e)));
            }
        }
        (CircuitState::Mid(_), Message::Forward(f)) => {
            repeater::on_forward(c, f, out, stats);
        }
        (CircuitState::Mid(_), Message::Complete(m)) => {
            repeater::on_complete(c, m, out, stats);
        }
        (CircuitState::Mid(_), Message::TrackAck(a)) => {
            // Relay in the direction of travel, like EXPIRE: towards the
            // acknowledged TRACK's origin end-node.
            if from_upstream {
                out.push(NetOutput::SendDownstream(Message::TrackAck(a)));
            } else {
                out.push(NetOutput::SendUpstream(Message::TrackAck(a)));
            }
        }
    }
}

/// Tear down a circuit at this node: release pairs, stop link requests,
/// notify applications (endpoint only).
pub(crate) fn teardown(circuit: CircuitId, c: Circuit, out: &mut Vec<NetOutput>) {
    match c.state {
        CircuitState::Endpoint(ep) => {
            for (_, it) in ep.in_transit {
                if it.delivered_early {
                    out.push(NetOutput::Notify(AppEvent::EarlyPairExpired {
                        request: it.request,
                        pair: it.pair,
                    }));
                } else {
                    out.push(NetOutput::DiscardPair { pair: it.pair });
                }
            }
            if ep.link_submitted {
                let (side, label) = endpoint::own_link(&c.entry);
                out.push(NetOutput::LinkStop { side, label });
            }
            out.push(NetOutput::Notify(AppEvent::CircuitDown(circuit)));
        }
        CircuitState::Mid(mid) => {
            for p in mid.up_queue.iter().chain(mid.down_queue.iter()) {
                out.push(NetOutput::CancelCutoff { pair: p.pair });
                out.push(NetOutput::DiscardPair { pair: p.pair });
            }
            if mid.link_submitted {
                if let Some(down) = &c.entry.downstream {
                    out.push(NetOutput::LinkStop {
                        side: crate::routing_table::LinkSide::Downstream,
                        label: down.label,
                    });
                }
            }
        }
    }
}
