//! # qn-exec — deterministic parallel experiment engine
//!
//! The paper's evaluation averages every figure over ~100 independent
//! seeds; those sweeps are embarrassingly parallel across seeds. This
//! crate provides the machinery to exploit that **without giving up the
//! workspace's determinism invariant** (equal seeds ⇒ bit-identical
//! results):
//!
//! * [`ThreadPool`] — a hand-rolled, work-distributing pool built on
//!   `std::thread` and `std::sync::mpsc` channels only (the build
//!   environment has no crates.io access, so no rayon);
//! * [`Scenario`] / [`run_sweep`] — a seed-sweep abstraction that farms
//!   one simulation per seed out to the pool and returns the points **in
//!   seed order**, bit-identical to the serial path regardless of thread
//!   count.
//!
//! Determinism holds because each scenario run is a pure function of its
//! seed (the simulation stack shares no mutable state between runs) and
//! results are committed by job index, not completion order. Worker
//! panics are caught per job and re-raised on the submitting thread,
//! first failing seed first.
//!
//! The thread count comes from the `QNP_THREADS` environment variable,
//! defaulting to the machine's available parallelism (see [`threads`]).
//!
//! Beyond across-seed parallelism, [`run_partitioned`] drives a single
//! partitioned simulation on the pool: per-shard states advance in
//! conservative-lookahead epochs with an mpsc barrier and a
//! deterministic cross-shard mailbox merge, bit-identical to the serial
//! reference executor in `qn_sim::shard` at any thread count.

mod pool;
mod shard_pool;
mod sweep;

pub use pool::ThreadPool;
pub use shard_pool::run_partitioned;
pub use sweep::{run_sweep, run_sweep_with, threads, Scenario};
