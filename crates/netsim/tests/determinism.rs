//! Determinism regression: two runs with the same seed must be
//! bit-identical — same event trace, same deliveries, same statistics.
//! This is the property the named RNG substreams of `qn_sim::SimRng`
//! exist to protect; any accidental nondeterminism (hash-map iteration
//! order, uninitialised state, wall-clock leakage) shows up here.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_routing::{dumbbell, wide_dumbbell, CutoffPolicy, Dumbbell};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// A workload busy enough to exercise swaps, cutoffs and multiplexing:
/// two circuits over the dumbbell bottleneck, three requests.
fn run_scenario(seed: u64) -> (NetSim, Dumbbell) {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .with_trace()
        .build();
    let vc0 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .expect("plan a0-b0");
    let vc1 = sim
        .open_circuit(d.a1, d.b1, 0.8, CutoffPolicy::short())
        .expect("plan a1-b1");
    sim.submit_at(SimTime::ZERO, vc0, keep(1, d.a0, d.b0, 0.85, 3));
    sim.submit_at(SimTime::ZERO, vc1, keep(2, d.a1, d.b1, 0.8, 2));
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_secs(2),
        vc0,
        keep(3, d.a0, d.b0, 0.85, 1),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
    (sim, d)
}

/// Everything observable about a run, with floats captured bit-exactly.
fn fingerprint(sim: &NetSim) -> (String, u64, u64, Vec<(u64, u32, u64, u64, Option<u64>)>) {
    let deliveries = sim
        .app()
        .deliveries
        .iter()
        .map(|r| {
            (
                r.time.as_ps(),
                r.node.0,
                r.request.0,
                r.sequence,
                r.oracle_fidelity.map(f64::to_bits),
            )
        })
        .collect();
    (
        sim.trace().render(),
        sim.events_processed(),
        sim.discarded_pairs(),
        deliveries,
    )
}

#[test]
fn same_seed_reproduces_trace_and_stats_exactly() {
    let (a, _) = run_scenario(2026);
    let (b, _) = run_scenario(2026);
    let fa = fingerprint(&a);
    let fb = fingerprint(&b);
    assert_eq!(fa.1, fb.1, "event counts diverged");
    assert_eq!(fa.2, fb.2, "discard counts diverged");
    assert_eq!(fa.3, fb.3, "deliveries diverged");
    assert_eq!(fa.0, fb.0, "event traces diverged");
    assert!(!fa.3.is_empty(), "scenario must actually deliver pairs");
    assert!(!fa.0.is_empty(), "trace must actually record rows");
}

#[test]
fn different_seeds_diverge() {
    let (a, _) = run_scenario(2026);
    let (b, _) = run_scenario(2027);
    // Entanglement generation is stochastic, so distinct seeds must give
    // distinct sample paths (equality here would mean the seed is ignored).
    assert_ne!(fingerprint(&a).0, fingerprint(&b).0);
}

/// One run over a `width`-wide dumbbell: a straight-across circuit per
/// end-node pair, one request per circuit, everything contending for
/// the MA–MB bottleneck.
fn run_wide_scenario(seed: u64, width: usize) -> NetSim {
    let (topology, w) = wide_dumbbell(width, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(seed)
        .with_trace()
        .build();
    for (i, (head, tail)) in w.straight_pairs().into_iter().enumerate() {
        let vc = sim
            .open_circuit(head, tail, 0.8, CutoffPolicy::short())
            .expect("straight-across circuit plan must be feasible");
        sim.submit_at(SimTime::ZERO, vc, keep(i as u64 + 1, head, tail, 0.8, 2));
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(12));
    sim
}

/// The determinism guarantee is not a width-2 special case: the
/// generalised `wide_dumbbell(width)` topologies must reproduce
/// bit-identically too (more circuits, more links, more RNG
/// substreams — more surface for ordering bugs).
#[test]
fn wide_dumbbells_reproduce_exactly() {
    for width in [3usize, 4] {
        let a = run_wide_scenario(4040 + width as u64, width);
        let b = run_wide_scenario(4040 + width as u64, width);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);
        assert_eq!(fa.1, fb.1, "width {width}: event counts diverged");
        assert_eq!(fa.2, fb.2, "width {width}: discard counts diverged");
        assert_eq!(fa.3, fb.3, "width {width}: deliveries diverged");
        assert_eq!(fa.0, fb.0, "width {width}: event traces diverged");
        assert!(
            !fa.3.is_empty(),
            "width {width}: scenario must actually deliver pairs"
        );
    }
}

/// Distinct widths are genuinely distinct workloads (a width regression
/// that quietly builds the same network would defeat the test above).
#[test]
fn wide_dumbbell_widths_diverge() {
    let w3 = run_wide_scenario(99, 3);
    let w4 = run_wide_scenario(99, 4);
    assert_ne!(fingerprint(&w3).0, fingerprint(&w4).0);
    assert!(fingerprint(&w4).1 > 0);
}

#[test]
fn completion_times_are_reproducible() {
    let (a, _) = run_scenario(77);
    let (b, _) = run_scenario(77);
    let mut ca: Vec<_> = a
        .app()
        .completed
        .iter()
        .map(|(k, v)| (*k, v.as_ps()))
        .collect();
    let mut cb: Vec<_> = b
        .app()
        .completed
        .iter()
        .map(|(k, v)| (*k, v.as_ps()))
        .collect();
    ca.sort();
    cb.sort();
    assert!(
        !ca.is_empty(),
        "scenario must complete at least one request"
    );
    assert_eq!(ca, cb);
}
