//! A hand-rolled, work-distributing thread pool.
//!
//! Plain `std::thread` workers pulling boxed jobs off a shared mpsc
//! channel — the minimal rayon substitute this offline workspace can
//! afford. Jobs are claimed one at a time, so an idle worker always
//! takes the next job (work distribution is greedy, not pre-partitioned)
//! and uneven seed costs balance themselves.

use std::panic;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing `FnOnce` jobs.
///
/// Dropping the pool (or calling [`ThreadPool::join`]) closes the job
/// channel, waits for the workers to drain the queue, and propagates the
/// first worker panic, if any. Higher-level users that need *all* jobs
/// to survive a panicking sibling should catch panics inside the job
/// (as [`crate::run_sweep`] does).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("qn-exec-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while claiming, never while
                        // running a job.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            // A sibling worker died while claiming; the
                            // queue is unusable, stop cleanly.
                            Err(_) => return,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // channel closed: shut down
                        }
                    })
                    .expect("failed to spawn qn-exec worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job. Panics if every worker has already died panicking
    /// (the queue has no consumers left).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool already joined")
            .send(Box::new(job))
            .expect("all qn-exec workers have died; cannot queue more jobs");
    }

    /// Wait for every queued job to finish and propagate the first
    /// worker panic, if any.
    pub fn join(mut self) {
        self.shutdown(true);
    }

    fn shutdown(&mut self, propagate: bool) {
        self.sender.take(); // close the channel: workers drain and exit
        let mut first_panic = None;
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if propagate {
            if let Some(payload) = first_panic {
                panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Don't double-panic while unwinding; `join()` is the loud path.
        self.shutdown(!thread::panicking());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4);
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(7, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn join_propagates_worker_panic() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom from a worker"));
        let err = panic::catch_unwind(panic::AssertUnwindSafe(|| pool.join()))
            .expect_err("the worker panic must surface in join()");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom from a worker"), "payload: {msg:?}");
    }
}
