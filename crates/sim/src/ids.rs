//! Entity identifiers shared by simulation models.
//!
//! Kept in the simulation core so that hardware, protocol and runtime
//! crates agree on node/link identity without depending on one another.

use std::fmt;

/// Identifies a network node (the paper's "locator").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a physical link (a quantum + classical channel between two
/// adjacent nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_hashable_and_display() {
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", LinkId(7)), "l7");
    }
}
