//! # qn-quantum — density-matrix quantum information engine
//!
//! The quantum substrate of the QNP reproduction (the role NetSquid's
//! qubit engine plays in the paper). It provides:
//!
//! * [`state::DensityMatrix`] — mixed states of 1–4 qubits with unitary
//!   application, Kraus channels, measurement and partial trace;
//! * [`pairstate`] — the dual-representation pair-state layer: the
//!   [`pairstate::BellDiagonal`] closed-form fast path (selected by the
//!   `QNP_QSTATE` knob) with the density matrix as general fallback,
//!   plus the exact conditional-map tables for swap and distillation;
//! * [`gates`] — standard gates plus the native NV controlled-√X;
//! * [`channels`] — the noise processes of the paper (P1–P4): depolarizing,
//!   dephasing, amplitude damping, and the fidelity↔parameter conversions;
//! * [`bell`] — the four Bell states and the XOR *lazy tracking* algebra
//!   the QNP uses instead of simulating intermediate states;
//! * [`measure`] — Pauli measurements and Bell-state measurements;
//! * [`formulas`] — closed-form Werner-state fidelity math used by the
//!   routing budget, cross-validated against the density-matrix engine.
//!
//! Design rule: this crate owns **no randomness** — all probabilistic
//! operations take a uniform sample from the caller, which keeps the
//! engine deterministic and lets the simulator control every stream.
//!
//! ## Example: entanglement swap with lazy tracking
//!
//! ```
//! use qn_quantum::bell::BellState;
//! use qn_quantum::measure::bell_measure_ideal;
//!
//! // Two perfect link pairs (A,B1) and (B2,C).
//! let joint = BellState::PHI_PLUS.density().tensor(&BellState::PSI_PLUS.density());
//! // Swap at node B: Bell-measure the middle qubits.
//! let (outcome, rest) = bell_measure_ideal(&joint, 1, 2, 0.42);
//! // The XOR algebra predicts the resulting end-to-end state …
//! let predicted = BellState::PHI_PLUS.combine(BellState::PSI_PLUS, outcome);
//! // … and the full quantum simulation agrees:
//! let fidelity = rest.unwrap().fidelity_pure(&predicted.amplitudes());
//! assert!((fidelity - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod bell;
pub mod channels;
pub mod complex;
pub mod formulas;
pub mod gates;
pub mod matrix;
pub mod measure;
pub mod pairstate;
pub mod state;

pub use bell::BellState;
pub use complex::C64;
pub use gates::Pauli;
pub use matrix::CMatrix;
pub use pairstate::{BellDiagonal, PairState, StateRep};
pub use state::DensityMatrix;
