//! **Figure 9** — average latency vs throughput of the A0-B0 circuit as
//! the rate of 3-pair requests increases, in an empty network and in a
//! congested one (long-running A1-B1 flow competing for the bottleneck).
//!
//! Paper shapes to reproduce:
//! * latency is flat until the circuit saturates, then blows up;
//! * the congested circuit saturates at **more than half** the empty
//!   network's rate (the bottleneck slows every circuit, so the other
//!   links more often have a pair ready when the bottleneck delivers).
//!
//! Run: `cargo bench --bench fig9_latency_throughput`
//! (knobs: `QNP_RUNS` default 3, `QNP_THREADS` sweep workers).

use qn_bench::{fig9_sweep, mean_finite, runs, seed_block, Baseline, Direction};
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let seeds = seed_block(2000, n_runs);
    println!("# Figure 9 — latency vs throughput (runs={n_runs})");
    // Request intervals from sparse to past saturation.
    let intervals_ms: [u64; 8] = [2000, 1000, 500, 300, 200, 150, 100, 70];

    let mut baseline = Baseline::new("fig9_latency_throughput")
        .config_num("runs", n_runs as f64)
        .direction("throughput_pairs_per_s", Direction::HigherIsBetter)
        .direction("mean_latency_s", Direction::LowerIsBetter)
        .direction("p5_s", Direction::LowerIsBetter)
        .direction("p95_s", Direction::LowerIsBetter)
        .direction("requests_measured", Direction::HigherIsBetter);

    let mut saturation = [0.0f64; 2];
    for (case_idx, congested) in [false, true].into_iter().enumerate() {
        let case_key = if congested { "congested" } else { "empty" };
        println!(
            "#\n# case: {}",
            if congested {
                "congested (A1-B1 busy)"
            } else {
                "empty network"
            }
        );
        println!(
            "# interval_ms   throughput_pairs_per_s   mean_latency_s   p5_s   p95_s   requests"
        );
        for interval in intervals_ms {
            let points = fig9_sweep(&seeds, congested, SimDuration::from_millis(interval));
            let thr = points.iter().map(|p| p.throughput).sum::<f64>() / n_runs as f64;
            let lat = mean_finite(points.iter().map(|p| p.mean_latency));
            let p5 = mean_finite(
                points
                    .iter()
                    .filter(|p| p.mean_latency.is_finite())
                    .map(|p| p.p5),
            );
            let p95 = mean_finite(
                points
                    .iter()
                    .filter(|p| p.mean_latency.is_finite())
                    .map(|p| p.p95),
            );
            let measured: usize = points.iter().map(|p| p.measured).sum();
            println!("{interval:11}   {thr:22.2}   {lat:14.3}   {p5:5.3}  {p95:6.3}   {measured}");
            baseline.point(
                format!("{case_key}/interval_ms={interval}"),
                &[
                    ("throughput_pairs_per_s", thr),
                    ("mean_latency_s", lat),
                    ("p5_s", p5),
                    ("p95_s", p95),
                    ("requests_measured", measured as f64),
                ],
            );
            saturation[case_idx] = saturation[case_idx].max(thr);
        }
    }

    println!("#\n# shape checks");
    let ratio = saturation[1] / saturation[0];
    println!(
        "# saturation: empty {:.2} pairs/s, congested {:.2} pairs/s, ratio {ratio:.2}",
        saturation[0], saturation[1]
    );
    println!(
        "# congested saturates at more than half the empty rate: {}",
        if ratio > 0.5 { "PASS" } else { "WARN" }
    );

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
