//! A minimal complex number type.
//!
//! The offline dependency set has no `num-complex`, and the engine needs
//! only basic field arithmetic, conjugation and magnitude — so we implement
//! exactly that.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.abs2().sqrt()
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Multiply by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// True when both components are within `eps` of the other value's.
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.abs2();
        C64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(1.5, -0.5);
        let b = C64::new(0.2, 0.9);
        let c = a * b / b;
        assert!(c.approx_eq(a, 1e-12));
    }

    #[test]
    fn conjugate_and_magnitude() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.abs2(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(C64::real(25.0), 1e-12));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let z = C64::cis(k as f64 * std::f64::consts::FRAC_PI_4);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(C64::cis(std::f64::consts::PI).approx_eq(C64::real(-1.0), 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C64::I * C64::I).approx_eq(C64::real(-1.0), 1e-15));
    }
}
