//! End-to-end fidelity test rounds (paper §4.1): estimate the delivered
//! fidelity purely from MEASURE-request statistics — no oracle — and
//! check the estimate against the simulation's ground truth.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::NetworkBuilder;
use qn_netsim::FidelityEstimator;
use qn_quantum::gates::Pauli;
use qn_routing::{dumbbell, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

#[test]
fn test_rounds_estimate_matches_oracle() {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(71).build();
    let fidelity = 0.9;
    let vc = sim
        .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
        .unwrap();

    // Three MEASURE requests — the test rounds — one per basis, plus one
    // KEEP request whose delivered pairs give the oracle reference.
    let rounds = 120u64;
    for (i, basis) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().enumerate() {
        sim.submit_at(
            SimTime::ZERO,
            vc,
            UserRequest {
                id: RequestId(i as u64 + 1),
                head: Address {
                    node: d.a0,
                    identifier: 1,
                },
                tail: Address {
                    node: d.b0,
                    identifier: 1,
                },
                min_fidelity: fidelity,
                demand: Demand::Pairs {
                    n: rounds,
                    deadline: None,
                },
                request_type: RequestType::Measure(basis),
                final_state: None,
            },
        );
    }
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(10),
            head: Address {
                node: d.a0,
                identifier: 2,
            },
            tail: Address {
                node: d.b0,
                identifier: 2,
            },
            min_fidelity: fidelity,
            demand: Demand::Pairs {
                n: 30,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));

    let app = sim.app();
    // Pool the test rounds into the estimator, matching ends by the
    // network's pair identifier.
    let alice = app.measurements(vc, d.a0);
    let bob = app.measurements(vc, d.b0);
    let mut est = FidelityEstimator::new();
    for (chain, a_out, a_basis, claimed) in &alice {
        if let Some((_, b_out, b_basis, _)) = bob.iter().find(|(c, _, _, _)| c == chain) {
            if a_basis == b_basis {
                est.record(*a_basis, *a_out, *b_out, *claimed);
            }
        }
    }
    let [rx, ry, rz] = est.rounds();
    assert!(rx > 25 && ry > 25 && rz > 25, "rounds: {rx},{ry},{rz}");
    let f_hat = est.estimate().expect("all bases sampled");
    let se = est.std_err().unwrap();

    // Ground truth from the KEEP deliveries' oracle annotations.
    let f_true = app.mean_fidelity(vc, d.a0).expect("keep pairs delivered");

    // Test rounds consume readout fidelity (2 × 0.998) on top of the pair
    // fidelity, so the estimate sits slightly below the oracle.
    assert!(
        (f_hat - f_true).abs() < 5.0 * se + 0.04,
        "estimate {f_hat:.3} ± {se:.3} vs oracle {f_true:.3}"
    );
    assert!(f_hat > 0.8, "estimate {f_hat} sanity");
}
