//! The entangled-pair store: the quantum memory content of the network.
//!
//! Every live entangled pair occupies one slot of a **generational
//! slab** — dense `Vec` storage plus a free list. A [`PairId`] packs
//! the slot index with the slot's generation, so handles to discarded
//! pairs are *detected* (lookups return `None`), never silently aliased
//! to the slot's next occupant. The per-pair fields the decoherence
//! sweep touches (end bookkeeping: `last_noise`, T1/T2; the state
//! representation) live in parallel arrays, so [`PairStore::advance_all`]
//! streams them cache-linearly instead of chasing a hash map.
//!
//! The store implements the physical operations of the data plane:
//!
//! * **lazy decoherence** — each end records when its noise was last
//!   advanced; every touch first applies T1 amplitude damping and T2*
//!   dephasing for the elapsed idle time (paper's P4);
//! * **entanglement swap** — the CNOT → H → measure circuit built from
//!   noisy primitives, joining two pairs into one (P2 + P3). The physical
//!   projection uses the *true* measurement outcomes while the announced
//!   two-bit result uses *readout-noisy* bits, exactly reproducing how
//!   readout errors corrupt entanglement tracking on real hardware;
//! * **measurement** of one end with readout error (MEASURE deliveries,
//!   fidelity test rounds);
//! * **Pauli correction**, extra dephasing (nuclear-spin noise), and end
//!   re-targeting (moving a qubit into carbon storage).
//!
//! The store is also the **oracle** used by the Fig 10 baseline: it can
//! report the true fidelity of any pair — the paper's "backdoor mechanism
//! … not available outside of simulations". The QNP itself never calls it.

use crate::device::QubitId;
use crate::params::{HardwareParams, ReadoutSpec};
use qn_quantum::bell::BellState;
use qn_quantum::channels;
use qn_quantum::gates::{self, Pauli};
use qn_quantum::measure::swap_circuit_outcome;
use qn_quantum::pairstate::{BellDiagonal, CondTable, PairState, StateRep};
use qn_quantum::DensityMatrix;
use qn_sim::{NodeId, SimRng, SimTime};

/// Identifier of a live entangled pair: slot index in the low 32 bits,
/// the slot's generation in the high 32. A store with no churn hands
/// out the same dense `0, 1, 2, …` values the old sequential counter
/// did; once slots are reused the generation half keeps every id ever
/// issued unique, so a stale handle can be detected rather than
/// resolving to the slot's next occupant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PairId(pub u64);

impl PairId {
    /// Pack a slot index and generation.
    pub fn from_parts(index: u32, generation: u32) -> Self {
        PairId(((generation as u64) << 32) | index as u64)
    }

    /// The slab slot this id names.
    pub fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    /// The slot generation this id was issued under.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One end of a pair: which qubit on which node holds it, with its
/// decoherence bookkeeping.
#[derive(Clone, Debug)]
pub struct PairEnd {
    /// The node holding this end.
    pub node: NodeId,
    /// The memory slot on that node.
    pub qubit: QubitId,
    /// T1 of the slot (seconds).
    pub t1: f64,
    /// T2* of the slot (seconds).
    pub t2: f64,
    /// When decoherence was last applied to this end.
    pub last_noise: SimTime,
    /// Set once the end has been measured (its qubit is classical).
    pub measured: bool,
}

/// Borrowed view of one live pair, stitched from the slab's parallel
/// arrays. Cheap to copy; the `id`/`announced`/`created` fields are
/// plain values, the state and ends borrow the store.
#[derive(Clone, Copy)]
pub struct PairView<'a> {
    /// The pair's identity in the store.
    pub id: PairId,
    /// The Bell state a *perfect* tracker would assign: the link layer's
    /// announced state for fresh pairs, XOR-combined through every swap.
    /// Protocol-level TRACK accounting must agree with this (tested), and
    /// the oracle measures fidelity against it.
    pub announced: BellState,
    /// Creation (heralding or swap-completion) time.
    pub created: SimTime,
    state: &'a PairState,
    ends: &'a [PairEnd; 2],
}

impl<'a> PairView<'a> {
    /// The two ends.
    pub fn ends(&self) -> &'a [PairEnd; 2] {
        self.ends
    }

    /// Index (0/1) of the end on `node`, if any.
    pub fn end_at(&self, node: NodeId) -> Option<usize> {
        self.ends.iter().position(|e| e.node == node)
    }

    /// The current two-qubit state (without advancing decoherence — use
    /// [`PairStore::fidelity_to`] for oracle reads).
    pub fn state(&self) -> &'a PairState {
        self.state
    }
}

/// Per-slot metadata: generation + liveness, and the two small
/// per-pair values that don't participate in the decoherence sweep.
#[derive(Clone, Debug)]
struct SlotMeta {
    generation: u32,
    live: bool,
    announced: BellState,
    created: SimTime,
}

/// Placeholder state parked in vacant slots (never observable: every
/// read goes through a generation check first).
fn vacant_state() -> PairState {
    PairState::Bell(BellDiagonal::from_bell_state(BellState::PHI_PLUS))
}

/// Noise model of the swap circuit, derived from [`HardwareParams`].
#[derive(Clone, Copy, Debug)]
pub struct SwapNoise {
    /// Two-qubit depolarizing probability (from the E-C gate fidelity).
    pub p_two_qubit: f64,
    /// Single-qubit depolarizing probability (from the electron gate).
    pub p_single: f64,
    /// Readout error model.
    pub readout: ReadoutSpec,
}

impl SwapNoise {
    /// Derive from a hardware parameter set.
    pub fn from_params(p: &HardwareParams) -> Self {
        SwapNoise {
            p_two_qubit: channels::depolarizing_param_for_fidelity(p.gates.two_qubit.fidelity, 4),
            p_single: channels::depolarizing_param_for_fidelity(
                p.gates.electron_single.fidelity,
                2,
            ),
            readout: p.gates.readout,
        }
    }
}

/// Result of an entanglement swap.
#[derive(Clone, Copy, Debug)]
pub struct SwapResult {
    /// The two-bit outcome *as announced* (includes readout error).
    pub outcome: BellState,
    /// The joined pair's id.
    pub new_pair: PairId,
    /// The qubits freed at the swapping node.
    pub freed: [(NodeId, QubitId); 2],
}

/// Result of measuring one end of a pair.
#[derive(Clone, Copy, Debug)]
pub struct MeasureResult {
    /// The physical outcome that collapsed the state.
    pub true_outcome: bool,
    /// The outcome reported by the (imperfect) readout.
    pub reported: bool,
}

/// Small sorted-`Vec` cache for the conditional-map tables. The key
/// space is tiny and static per run (one entry per noise parameter set
/// × circuit orientation), so a binary-searched flat array beats
/// hashing the key on every swap/distill.
struct TableCache<K> {
    entries: Vec<(K, Option<Box<CondTable>>)>,
}

impl<K: Ord + Copy> TableCache<K> {
    fn new() -> Self {
        TableCache {
            entries: Vec::new(),
        }
    }

    fn get_or_insert(
        &mut self,
        key: K,
        build: impl FnOnce() -> Option<Box<CondTable>>,
    ) -> Option<&CondTable> {
        let idx = match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, build()));
                i
            }
        };
        self.entries[idx].1.as_deref()
    }
}

/// All live pairs in the network, stored as a generational slab.
///
/// The store runs on one of two state representations (the `QNP_QSTATE`
/// knob, see [`StateRep`]): the Bell-diagonal closed-form fast path or
/// dense density matrices. Both follow the same trajectory — identical
/// RNG draw order and outcomes — the fast path just replaces every 4×4
/// (and, for swaps/distillation, 16×16) matrix operation with a few
/// dozen real multiplies.
///
/// Layout: three parallel arrays indexed by slot — `meta` (generation,
/// liveness, announced frame, creation time), `ends` (the decoherence
/// bookkeeping both sweep paths touch), `states` (the quantum state).
/// Freed slots go on a LIFO free list and are reused under a bumped
/// generation.
pub struct PairStore {
    meta: Vec<SlotMeta>,
    ends: Vec<[PairEnd; 2]>,
    states: Vec<PairState>,
    free: Vec<u32>,
    live: usize,
    rep: StateRep,
    /// Conditional-map tables for the noisy swap circuit, keyed by the
    /// noise parameters' bit patterns and the pair orientation
    /// `ia·2+ib`. `None` records a (never expected) X-closure failure:
    /// that noise set permanently uses the dense path.
    swap_tables: TableCache<(u64, u64, u8)>,
    /// Same for the distillation circuit, keyed by noise bits and the
    /// sacrificed pair's orientation.
    distill_tables: TableCache<(u64, bool)>,
}

impl Default for PairStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PairStore {
    /// An empty store on the representation selected by `QNP_QSTATE`
    /// (default: the Bell-diagonal fast path).
    pub fn new() -> Self {
        Self::with_rep(StateRep::from_env())
    }

    /// An empty store on an explicit representation (tests, A/B
    /// comparisons).
    pub fn with_rep(rep: StateRep) -> Self {
        PairStore {
            meta: Vec::new(),
            ends: Vec::new(),
            states: Vec::new(),
            free: Vec::new(),
            live: 0,
            rep,
            swap_tables: TableCache::new(),
            distill_tables: TableCache::new(),
        }
    }

    /// The active state representation.
    pub fn rep(&self) -> StateRep {
        self.rep
    }

    /// Number of live pairs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no pairs are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slab slots (live + vacant) — the sweep's stream length.
    pub fn slot_count(&self) -> usize {
        self.meta.len()
    }

    /// Resolve a handle to its slot: the slot must be live *and* on the
    /// same generation the handle was issued under.
    fn slot(&self, id: PairId) -> Option<usize> {
        let i = id.index();
        let m = self.meta.get(i)?;
        (m.live && m.generation == id.generation()).then_some(i)
    }

    /// Claim a slot (reusing the free list LIFO) and place a pair in it.
    fn insert_slot(
        &mut self,
        created: SimTime,
        state: PairState,
        announced: BellState,
        ends: [PairEnd; 2],
    ) -> PairId {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                let i = i as usize;
                let m = &mut self.meta[i];
                m.live = true;
                m.announced = announced;
                m.created = created;
                self.states[i] = state;
                self.ends[i] = ends;
                PairId::from_parts(i as u32, self.meta[i].generation)
            }
            None => {
                let i = self.meta.len() as u32;
                self.meta.push(SlotMeta {
                    generation: 0,
                    live: true,
                    announced,
                    created,
                });
                self.states.push(state);
                self.ends.push(ends);
                PairId::from_parts(i, 0)
            }
        }
    }

    /// Vacate a slot, bumping its generation so outstanding handles go
    /// stale. Returns the slot's state, announced frame, and ends.
    fn remove_parts(&mut self, id: PairId) -> Option<(PairState, BellState, [PairEnd; 2])> {
        let i = self.slot(id)?;
        let m = &mut self.meta[i];
        m.live = false;
        m.generation = m.generation.wrapping_add(1);
        let announced = m.announced;
        self.free.push(i as u32);
        self.live -= 1;
        let state = std::mem::replace(&mut self.states[i], vacant_state());
        Some((state, announced, self.ends[i].clone()))
    }

    /// Register a freshly heralded pair. `ends` lists `(node, qubit, t1,
    /// t2)` for each side; end 0 corresponds to qubit 0 of `state`. The
    /// dense input converts to the fast representation when the active
    /// [`StateRep`] allows it (every heralded state is X-form).
    pub fn create(
        &mut self,
        now: SimTime,
        state: DensityMatrix,
        announced: BellState,
        ends: [(NodeId, QubitId, f64, f64); 2],
    ) -> PairId {
        assert_eq!(state.num_qubits(), 2);
        self.create_pair(
            now,
            PairState::from_density(state, self.rep),
            announced,
            ends,
        )
    }

    /// [`PairStore::create`] for a state already in pair-state form
    /// (the heralding fast path constructs [`PairState`] directly).
    pub fn create_pair(
        &mut self,
        now: SimTime,
        state: PairState,
        announced: BellState,
        ends: [(NodeId, QubitId, f64, f64); 2],
    ) -> PairId {
        let mk = |(node, qubit, t1, t2): (NodeId, QubitId, f64, f64)| PairEnd {
            node,
            qubit,
            t1,
            t2,
            last_noise: now,
            measured: false,
        };
        self.insert_slot(now, state, announced, [mk(ends[0]), mk(ends[1])])
    }

    /// Look up a pair. Stale handles (the slot was freed, possibly
    /// reused) resolve to `None`.
    pub fn get(&self, id: PairId) -> Option<PairView<'_>> {
        let i = self.slot(id)?;
        let m = &self.meta[i];
        Some(PairView {
            id,
            announced: m.announced,
            created: m.created,
            state: &self.states[i],
            ends: &self.ends[i],
        })
    }

    /// Whether the pair is still live.
    pub fn contains(&self, id: PairId) -> bool {
        self.slot(id).is_some()
    }

    /// Remove a pair (cutoff discard, delivery consumption). Returns the
    /// qubits freed, for return to the memory manager.
    pub fn discard(&mut self, id: PairId) -> Option<[(NodeId, QubitId); 2]> {
        self.remove_parts(id)
            .map(|(_, _, ends)| [(ends[0].node, ends[0].qubit), (ends[1].node, ends[1].qubit)])
    }

    /// Advance decoherence on both ends to `now`.
    pub fn advance(&mut self, id: PairId, now: SimTime) {
        let i = self.slot(id).expect("advance on dead pair");
        advance_parts(&mut self.states[i], &mut self.ends[i], now);
    }

    /// Advance decoherence on **every** live pair to `now` in one sweep.
    ///
    /// Identical per-pair math to [`advance`] — pairs decay independently
    /// (each end applies only its own T1/T2 channels), so sweeping is
    /// order-insensitive and agrees with per-pair advancement to the
    /// same time bit-for-bit. The slab layout makes this a linear walk
    /// over three parallel arrays in slot order; the runtime drives it
    /// through its checkpoint policy (`CheckpointPolicy` in
    /// `qn_netsim`), which by default checkpoints at exactly the
    /// `SimTime`s the lazy path would touch, keeping baselines
    /// bit-identical.
    ///
    /// [`advance`]: PairStore::advance
    pub fn advance_all(&mut self, now: SimTime) {
        for ((m, ends), state) in self
            .meta
            .iter()
            .zip(self.ends.iter_mut())
            .zip(self.states.iter_mut())
        {
            if !m.live {
                continue;
            }
            advance_parts(state, ends, now);
        }
    }

    /// Oracle (bulk): true fidelities of all live pairs at `now`, in one
    /// decoherence sweep, appended to `out` in slot order. The caller
    /// owns (and reuses) the scratch buffer — the sweep itself never
    /// allocates. Diagnostic counterpart of [`fidelity_to`].
    ///
    /// [`fidelity_to`]: PairStore::fidelity_to
    pub fn fidelities_at(
        &mut self,
        expected: BellState,
        now: SimTime,
        out: &mut Vec<(PairId, f64)>,
    ) {
        self.advance_all(now);
        out.clear();
        for (i, m) in self.meta.iter().enumerate() {
            if !m.live {
                continue;
            }
            out.push((
                PairId::from_parts(i as u32, m.generation),
                self.states[i].fidelity_bell(expected),
            ));
        }
    }

    /// Oracle: the true fidelity of the pair to `expected` at time `now`.
    ///
    /// Used only by the Fig 10 baseline and by validation tests — the QNP
    /// itself has no access to this (the paper's point about the
    /// "physically impossible" oracle).
    pub fn fidelity_to(&mut self, id: PairId, expected: BellState, now: SimTime) -> f64 {
        self.advance(id, now);
        let i = self.slot(id).expect("fidelity on dead pair");
        self.states[i].fidelity_bell(expected)
    }

    /// Apply a (perfect, per Table 1) Pauli correction to the end on
    /// `node`.
    pub fn apply_pauli(&mut self, id: PairId, node: NodeId, pauli: Pauli, now: SimTime) {
        self.advance(id, now);
        let i = self.slot(id).expect("pauli on dead pair");
        let idx = self.ends[i]
            .iter()
            .position(|e| e.node == node)
            .expect("node does not hold this pair");
        if pauli != Pauli::I {
            self.states[i].apply_pauli(idx, pauli);
        }
        // Track the frame change on the reference state too, so the oracle
        // keeps measuring against what a perfect tracker would expect.
        let m = &mut self.meta[i];
        let target = match pauli {
            Pauli::I => m.announced,
            Pauli::X => BellState::from_bits(!m.announced.x, m.announced.z),
            Pauli::Z => BellState::from_bits(m.announced.x, !m.announced.z),
            Pauli::Y => BellState::from_bits(!m.announced.x, !m.announced.z),
        };
        m.announced = target;
    }

    /// Apply extra dephasing (nuclear-spin noise during entanglement
    /// attempts) with phase-flip probability `lambda` to the end on `node`.
    pub fn apply_dephasing(&mut self, id: PairId, node: NodeId, lambda: f64) {
        if lambda <= 0.0 {
            return;
        }
        let i = self.slot(id).expect("dephase on dead pair");
        let idx = self.ends[i]
            .iter()
            .position(|e| e.node == node)
            .expect("node does not hold this pair");
        self.states[i].dephase(idx, lambda.min(0.5));
    }

    /// Fully (or partially) depolarize the end on `node` — the fate of
    /// an abandoned end whose qubit is re-initialised for new attempts.
    pub fn depolarize_end(&mut self, id: PairId, node: NodeId, p: f64) {
        let i = self.slot(id).expect("depolarize on dead pair");
        let idx = self.ends[i]
            .iter()
            .position(|e| e.node == node)
            .expect("node does not hold this pair");
        self.states[i].depolarize(idx, p);
    }

    /// Move the end on `node` to a different memory slot (electron →
    /// carbon storage). `p_move` is the depolarizing probability charged
    /// for the transfer circuit; the end inherits the new slot's T1/T2.
    #[allow(clippy::too_many_arguments)] // a physical move has this many degrees of freedom
    pub fn retarget_end(
        &mut self,
        id: PairId,
        node: NodeId,
        new_qubit: QubitId,
        t1: f64,
        t2: f64,
        p_move: f64,
        now: SimTime,
    ) -> QubitId {
        self.advance(id, now);
        let i = self.slot(id).expect("retarget on dead pair");
        let idx = self.ends[i]
            .iter()
            .position(|e| e.node == node)
            .expect("node does not hold this pair");
        if p_move > 0.0 {
            self.states[i].depolarize(idx, p_move);
        }
        let end = &mut self.ends[i][idx];
        let old = end.qubit;
        end.qubit = new_qubit;
        end.t1 = t1;
        end.t2 = t2;
        old
    }

    /// Measure the end on `node` in the given Pauli basis with readout
    /// noise. The state collapses according to the *true* outcome; the
    /// caller receives both the true and the reported bit.
    pub fn measure_end(
        &mut self,
        id: PairId,
        node: NodeId,
        basis: Pauli,
        readout: &ReadoutSpec,
        now: SimTime,
        rng: &mut SimRng,
    ) -> MeasureResult {
        self.advance(id, now);
        let i = self.slot(id).expect("measure on dead pair");
        let idx = self.ends[i]
            .iter()
            .position(|e| e.node == node)
            .expect("node does not hold this pair");
        assert!(!self.ends[i][idx].measured, "end already measured");
        let true_outcome = self.states[i].measure_pauli(idx, basis, rng.f64());
        self.ends[i][idx].measured = true;
        let reported = apply_readout_error(true_outcome, readout, rng);
        MeasureResult {
            true_outcome,
            reported,
        }
    }

    /// Whether both ends have been measured (the pair carries no more
    /// quantum information and can be discarded).
    pub fn fully_measured(&self, id: PairId) -> bool {
        self.slot(id)
            .map(|i| self.ends[i].iter().all(|e| e.measured))
            .unwrap_or(true)
    }

    /// Entanglement swap at `shared`: join `pa` and `pb` via the noisy
    /// CNOT → H → measure circuit. Consumes both pairs, creates the joined
    /// pair, frees the two qubits at `shared`.
    ///
    /// Call at the *completion* time of the swap operation so that the
    /// decoherence suffered during the (long, 500 µs) gate is charged
    /// before the projection.
    pub fn swap(
        &mut self,
        pa: PairId,
        pb: PairId,
        shared: NodeId,
        now: SimTime,
        noise: &SwapNoise,
        rng: &mut SimRng,
    ) -> SwapResult {
        self.advance(pa, now);
        self.advance(pb, now);
        let (a_state, a_announced, a_ends) = self.remove_parts(pa).expect("swap: pair A dead");
        let (b_state, b_announced, b_ends) = self.remove_parts(pb).expect("swap: pair B dead");
        let ia = a_ends
            .iter()
            .position(|e| e.node == shared)
            .expect("pair A not at swap node");
        let ib = b_ends
            .iter()
            .position(|e| e.node == shared)
            .expect("pair B not at swap node");
        let oa = 1 - ia; // outer end of A
        let ob = 1 - ib;

        // Fast path: both states Bell-diagonal and the conditional-map
        // table for this noise/orientation is X-closed — the whole
        // noisy circuit collapses to one 36-term contraction.
        let fast = match (a_state.as_bell(), b_state.as_bell()) {
            (Some(x), Some(y)) => self
                .swap_table(noise, ia, ib)
                .map(|t| {
                    let u1 = rng.f64();
                    let u2 = rng.f64();
                    t.apply(x, y, u1, u2)
                })
                .map(|(m_control, m_target, post)| (m_control, m_target, PairState::Bell(post))),
            _ => None,
        };

        let (m_control, m_target, state) = match fast {
            Some(res) => res,
            None => {
                // Dense path: joint register [a0, a1, b0, b1].
                let mut joint = a_state.to_density().tensor(&b_state.to_density());
                let qa = ia; // control: A's qubit at the node
                let qb = 2 + ib; // target: B's qubit at the node

                // Noisy CNOT.
                joint.apply_unitary(&gates::cnot(), &[qa, qb]);
                if noise.p_two_qubit > 0.0 {
                    joint.apply_kraus(&channels::depolarizing_2q(noise.p_two_qubit), &[qa, qb]);
                }
                // Noisy H on the control.
                joint.apply_unitary(&gates::h(), &[qa]);
                if noise.p_single > 0.0 {
                    joint.apply_kraus(&channels::depolarizing(noise.p_single), &[qa]);
                }
                // Physical measurements: true outcomes collapse the state.
                let m_control = joint.measure_z(qa, rng.f64());
                let m_target = joint.measure_z(qb, rng.f64());
                // Remaining state on the outer ends (A's outer first).
                let keep = [oa, 2 + ob];
                let state = PairState::from_density(joint.partial_trace_keep(&keep), self.rep);
                (m_control, m_target, state)
            }
        };
        // Announced outcomes pass through the imperfect readout.
        let r_control = apply_readout_error(m_control, &noise.readout, rng);
        let r_target = apply_readout_error(m_target, &noise.readout, rng);
        let outcome = swap_circuit_outcome(r_control, r_target);

        let announced = a_announced.combine(b_announced, outcome);
        let freed = [
            (a_ends[ia].node, a_ends[ia].qubit),
            (b_ends[ib].node, b_ends[ib].qubit),
        ];
        let ends = [a_ends[oa].clone(), b_ends[ob].clone()];
        let id = self.insert_slot(now, state, announced, ends);
        SwapResult {
            outcome,
            new_pair: id,
            freed,
        }
    }

    /// Replace a pair's state and reference frame wholesale (used by the
    /// distillation circuit, which rebuilds the kept pair's state from
    /// the joint register).
    pub fn replace_state(&mut self, id: PairId, state: DensityMatrix, announced: BellState) {
        assert_eq!(state.num_qubits(), 2);
        self.replace_pair_state(id, PairState::from_density(state, self.rep), announced);
    }

    /// [`PairStore::replace_state`] for a state already in pair-state
    /// form.
    pub fn replace_pair_state(&mut self, id: PairId, state: PairState, announced: BellState) {
        let i = self.slot(id).expect("replace on dead pair");
        self.states[i] = state;
        self.meta[i].announced = announced;
    }

    /// Escape hatch for applications and experiments (teleportation
    /// example, tomography tests): mutate the raw pair state. Demotes
    /// the pair to the dense representation — arbitrary mutations can
    /// leave the Bell-diagonal family.
    pub fn with_state_mut<R>(
        &mut self,
        id: PairId,
        f: impl FnOnce(&mut DensityMatrix) -> R,
    ) -> Option<R> {
        let i = self.slot(id)?;
        Some(f(self.states[i].dm_mut()))
    }

    /// Iterate over all live pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = PairView<'_>> {
        self.meta.iter().enumerate().filter_map(move |(i, m)| {
            m.live.then(|| PairView {
                id: PairId::from_parts(i as u32, m.generation),
                announced: m.announced,
                created: m.created,
                state: &self.states[i],
                ends: &self.ends[i],
            })
        })
    }

    /// The cached conditional-map table for the swap circuit at this
    /// noise level and orientation (built on first use).
    fn swap_table(&mut self, noise: &SwapNoise, ia: usize, ib: usize) -> Option<&CondTable> {
        let key = (
            noise.p_two_qubit.to_bits(),
            noise.p_single.to_bits(),
            (ia * 2 + ib) as u8,
        );
        let (p2, p1) = (noise.p_two_qubit, noise.p_single);
        self.swap_tables
            .get_or_insert(key, || CondTable::swap(p2, p1, ia, ib).map(Box::new))
    }

    /// The cached conditional-map table for the distillation circuit.
    pub(crate) fn distill_table(&mut self, p_two: f64, b0_at_na: bool) -> Option<&CondTable> {
        let key = (p_two.to_bits(), b0_at_na);
        self.distill_tables
            .get_or_insert(key, || CondTable::distill(p_two, b0_at_na).map(Box::new))
    }
}

/// Apply elapsed-time T1/T2 decay to both ends of one pair. The single
/// decoherence kernel behind both the lazy per-access path
/// ([`PairStore::advance`]) and the batched sweep
/// ([`PairStore::advance_all`]) — one implementation, so the two paths
/// cannot drift apart.
fn advance_parts(state: &mut PairState, ends: &mut [PairEnd; 2], now: SimTime) {
    for (idx, end) in ends.iter_mut().enumerate() {
        if end.measured {
            end.last_noise = now;
            continue;
        }
        let dt = now.since(end.last_noise).as_secs_f64();
        end.last_noise = now;
        if dt <= 0.0 {
            continue;
        }
        let gamma = channels::damping_prob(dt, end.t1);
        if gamma > 0.0 {
            state.amplitude_damp(idx, gamma);
        }
        let p = channels::dephasing_prob(dt, end.t2);
        if p > 0.0 {
            state.dephase(idx, p);
        }
    }
}

/// Flip a measurement outcome according to the outcome-dependent readout
/// fidelities of Table 1.
fn apply_readout_error(true_outcome: bool, readout: &ReadoutSpec, rng: &mut SimRng) -> bool {
    let fid = if true_outcome {
        readout.fidelity1
    } else {
        readout.fidelity0
    };
    if rng.bernoulli(1.0 - fid) {
        !true_outcome
    } else {
        true_outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::SimDuration;

    fn perfect_readout() -> ReadoutSpec {
        ReadoutSpec {
            fidelity0: 1.0,
            fidelity1: 1.0,
            duration: 0.0,
        }
    }

    fn mk_pair(store: &mut PairStore, t2: f64, bell: BellState, now: SimTime) -> PairId {
        store.create(
            now,
            bell.density(),
            bell,
            [
                (NodeId(0), QubitId(0), 3600.0, t2),
                (NodeId(1), QubitId(0), 3600.0, t2),
            ],
        )
    }

    #[test]
    fn fresh_pair_has_unit_fidelity() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 60.0, BellState::PSI_PLUS, SimTime::ZERO);
        let f = store.fidelity_to(id, BellState::PSI_PLUS, SimTime::ZERO);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn churn_free_ids_are_dense_and_sequential() {
        // Without slot reuse the packed ids match the old sequential
        // counter: 0, 1, 2, … (generation half zero).
        let mut store = PairStore::new();
        for i in 0..5u64 {
            let id = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
            assert_eq!(id.0, i);
            assert_eq!(id.generation(), 0);
        }
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn slot_reuse_bumps_generation_and_detects_stale_handles() {
        let mut store = PairStore::new();
        let a = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
        store.discard(a).unwrap();
        let b = mk_pair(&mut store, 60.0, BellState::PSI_MINUS, SimTime::ZERO);
        // Same slot, new generation: the handle values differ.
        assert_eq!(b.index(), a.index());
        assert_eq!(b.generation(), a.generation() + 1);
        assert_ne!(a, b);
        // The stale handle does not alias the new occupant.
        assert!(store.get(a).is_none());
        assert!(!store.contains(a));
        assert!(store.discard(a).is_none());
        assert!(store.fully_measured(a));
        assert_eq!(store.get(b).unwrap().announced, BellState::PSI_MINUS);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fidelities_at_reuses_scratch_in_slot_order() {
        let mut store = PairStore::new();
        let a = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
        let b = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
        let mut out = vec![(PairId(99), 0.0)]; // stale content is cleared
        store.fidelities_at(BellState::PHI_PLUS, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, a);
        assert_eq!(out[1].0, b);
        assert!((out[0].1 - 1.0).abs() < 1e-12);
        // Free the first slot: the scratch shrinks and stays slot-ordered.
        store.discard(a);
        store.fidelities_at(BellState::PHI_PLUS, SimTime::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b);
    }

    #[test]
    fn idle_pair_decoheres() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 1.0, BellState::PHI_PLUS, SimTime::ZERO);
        let f1 = store.fidelity_to(
            id,
            BellState::PHI_PLUS,
            SimTime::ZERO + SimDuration::from_millis(100),
        );
        let f2 = store.fidelity_to(
            id,
            BellState::PHI_PLUS,
            SimTime::ZERO + SimDuration::from_secs(2),
        );
        assert!(f1 < 1.0);
        assert!(f2 < f1);
        // Fully dephased pair bottoms out at 0.5 (T1 is long).
        let f3 = store.fidelity_to(
            id,
            BellState::PHI_PLUS,
            SimTime::ZERO + SimDuration::from_secs(100),
        );
        assert!((f3 - 0.5).abs() < 0.02, "long-idle fidelity {f3}");
    }

    #[test]
    fn decoherence_matches_analytic_dephasing() {
        let mut store = PairStore::new();
        let t2 = 2.0;
        // Infinite T1 isolates pure dephasing for the analytic comparison.
        let id = store.create(
            SimTime::ZERO,
            BellState::PHI_PLUS.density(),
            BellState::PHI_PLUS,
            [
                (NodeId(0), QubitId(0), f64::INFINITY, t2),
                (NodeId(1), QubitId(0), f64::INFINITY, t2),
            ],
        );
        let t = 0.5;
        let f = store.fidelity_to(
            id,
            BellState::PHI_PLUS,
            SimTime::ZERO + SimDuration::from_secs_f64(t),
        );
        let p = channels::dephasing_prob(t, t2);
        let lambda = qn_quantum::formulas::combine_flip_probs(p, p);
        let expected = qn_quantum::formulas::dephased_pair_fidelity(1.0, lambda);
        assert!(
            (f - expected).abs() < 1e-6,
            "sim {f} vs analytic {expected}"
        );
    }

    #[test]
    fn noiseless_swap_preserves_tracking() {
        let mut store = PairStore::new();
        let now = SimTime::ZERO;
        let a = store.create(
            now,
            BellState::PSI_PLUS.density(),
            BellState::PSI_PLUS,
            [
                (NodeId(0), QubitId(0), 3600.0, 60.0),
                (NodeId(1), QubitId(0), 3600.0, 60.0),
            ],
        );
        let b = store.create(
            now,
            BellState::PSI_MINUS.density(),
            BellState::PSI_MINUS,
            [
                (NodeId(1), QubitId(1), 3600.0, 60.0),
                (NodeId(2), QubitId(0), 3600.0, 60.0),
            ],
        );
        let noise = SwapNoise {
            p_two_qubit: 0.0,
            p_single: 0.0,
            readout: perfect_readout(),
        };
        let mut rng = SimRng::from_seed(7);
        let res = store.swap(a, b, NodeId(1), now, &noise, &mut rng);
        let pair = store.get(res.new_pair).unwrap();
        assert_eq!(pair.ends()[0].node, NodeId(0));
        assert_eq!(pair.ends()[1].node, NodeId(2));
        assert_eq!(res.freed[0], (NodeId(1), QubitId(0)));
        assert_eq!(res.freed[1], (NodeId(1), QubitId(1)));
        let expected = BellState::PSI_PLUS.combine(BellState::PSI_MINUS, res.outcome);
        assert_eq!(pair.announced, expected);
        let f = store.fidelity_to(res.new_pair, expected, now);
        assert!((f - 1.0).abs() < 1e-9, "noiseless swap fidelity {f}");
        assert!(!store.contains(a));
        assert!(!store.contains(b));
    }

    #[test]
    fn noisy_swap_reduces_fidelity_as_formula_predicts() {
        let mut rng = SimRng::from_seed(11);
        let noise = SwapNoise {
            p_two_qubit: channels::depolarizing_param_for_fidelity(0.998, 4),
            p_single: 0.0,
            readout: perfect_readout(),
        };
        let mut total = 0.0;
        let n = 20;
        for _ in 0..n {
            let mut store = PairStore::new();
            let now = SimTime::ZERO;
            let a = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, now);
            let b = store.create(
                now,
                BellState::PHI_PLUS.density(),
                BellState::PHI_PLUS,
                [
                    (NodeId(1), QubitId(1), 3600.0, 60.0),
                    (NodeId(2), QubitId(0), 3600.0, 60.0),
                ],
            );
            let res = store.swap(a, b, NodeId(1), now, &noise, &mut rng);
            let announced = store.get(res.new_pair).unwrap().announced;
            total += store.fidelity_to(res.new_pair, announced, now);
        }
        let mean = total / n as f64;
        // Perfect inputs through a 0.998-fidelity gate: expect ≈ 0.998
        // minus small residuals; allow generous tolerance for sampling.
        assert!(mean > 0.99 && mean < 1.0, "mean post-swap fidelity {mean}");
    }

    #[test]
    fn readout_error_corrupts_announcement_not_projection() {
        // With fidelity-0 readout the announced bits are always flipped:
        // the announced Bell state is wrong in a *predictable* way.
        let mut store = PairStore::new();
        let now = SimTime::ZERO;
        let a = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, now);
        let b = store.create(
            now,
            BellState::PHI_PLUS.density(),
            BellState::PHI_PLUS,
            [
                (NodeId(1), QubitId(1), 3600.0, 60.0),
                (NodeId(2), QubitId(0), 3600.0, 60.0),
            ],
        );
        let noise = SwapNoise {
            p_two_qubit: 0.0,
            p_single: 0.0,
            readout: ReadoutSpec {
                fidelity0: 0.0,
                fidelity1: 0.0,
                duration: 0.0,
            },
        };
        let mut rng = SimRng::from_seed(3);
        let res = store.swap(a, b, NodeId(1), now, &noise, &mut rng);
        // Announced state uses double-flipped bits: fidelity of the DM to
        // the announced state is 0 (orthogonal Bell state).
        let announced = store.get(res.new_pair).unwrap().announced;
        let f = store.fidelity_to(res.new_pair, announced, now);
        assert!(f < 1e-9, "fully wrong readout must mistrack: {f}");
    }

    #[test]
    fn measurement_of_bell_pair_correlates() {
        let mut rng = SimRng::from_seed(5);
        let readout = perfect_readout();
        let mut agree = 0;
        let n = 50;
        for _ in 0..n {
            let mut store = PairStore::new();
            let id = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
            let m0 = store.measure_end(id, NodeId(0), Pauli::Z, &readout, SimTime::ZERO, &mut rng);
            let m1 = store.measure_end(id, NodeId(1), Pauli::Z, &readout, SimTime::ZERO, &mut rng);
            assert!(store.fully_measured(id));
            if m0.true_outcome == m1.true_outcome {
                agree += 1;
            }
        }
        assert_eq!(agree, n, "Φ+ must give perfectly correlated Z outcomes");
    }

    #[test]
    fn psi_pairs_anticorrelate_in_z() {
        let mut rng = SimRng::from_seed(9);
        let readout = perfect_readout();
        for _ in 0..20 {
            let mut store = PairStore::new();
            let id = mk_pair(&mut store, 60.0, BellState::PSI_PLUS, SimTime::ZERO);
            let m0 = store.measure_end(id, NodeId(0), Pauli::Z, &readout, SimTime::ZERO, &mut rng);
            let m1 = store.measure_end(id, NodeId(1), Pauli::Z, &readout, SimTime::ZERO, &mut rng);
            assert_ne!(m0.true_outcome, m1.true_outcome);
        }
    }

    #[test]
    fn pauli_correction_changes_frame() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 60.0, BellState::PSI_PLUS, SimTime::ZERO);
        store.apply_pauli(id, NodeId(1), Pauli::X, SimTime::ZERO);
        let pair = store.get(id).unwrap();
        assert_eq!(pair.announced, BellState::PHI_PLUS);
        let f = store.fidelity_to(id, BellState::PHI_PLUS, SimTime::ZERO);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_dephasing_reduces_fidelity() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
        store.apply_dephasing(id, NodeId(0), 0.1);
        let f = store.fidelity_to(id, BellState::PHI_PLUS, SimTime::ZERO);
        assert!((f - 0.9).abs() < 1e-9, "lambda=0.1 should cost 0.1: {f}");
    }

    #[test]
    fn retarget_moves_end_and_charges_noise() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 1.46, BellState::PHI_PLUS, SimTime::ZERO);
        let old = store.retarget_end(id, NodeId(0), QubitId(5), 360.0, 60.0, 0.02, SimTime::ZERO);
        assert_eq!(old, QubitId(0));
        let pair = store.get(id).unwrap();
        let end = &pair.ends()[pair.end_at(NodeId(0)).unwrap()];
        assert_eq!(end.qubit, QubitId(5));
        assert_eq!(end.t2, 60.0);
        let f = store.fidelity_to(id, BellState::PHI_PLUS, SimTime::ZERO);
        assert!(f < 1.0 && f > 0.97, "move noise charged once: {f}");
    }

    #[test]
    fn discard_frees_qubits() {
        let mut store = PairStore::new();
        let id = mk_pair(&mut store, 60.0, BellState::PHI_PLUS, SimTime::ZERO);
        let freed = store.discard(id).unwrap();
        assert_eq!(freed[0], (NodeId(0), QubitId(0)));
        assert!(!store.contains(id));
        assert!(store.discard(id).is_none());
    }
}
