//! The QNP node state machine.
//!
//! One [`QnpNode`] per network node, holding per-circuit protocol state.
//! Rule implementations live in [`crate::rules`]: endpoint rules
//! (Algorithms 1–6 of Appendix C, head-end and tail-end) and repeater
//! rules (Algorithms 7–9).
//!
//! The machine is sans-IO and deterministic: all effects are returned as
//! [`NetOutput`] values, all timing lives in the runtime.

use crate::demux::SymmetricDemux;
use crate::events::{NetInput, NetOutput};
use crate::ids::{CircuitId, Correlator, Epoch, PairRef, RequestId};
use crate::messages::Track;
use crate::policing::Policer;
use crate::request::RequestType;
use crate::routing_table::{Role, RoutingEntry};
use qn_quantum::bell::BellState;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// A set remembering (at most) the `cap` most recently inserted keys,
/// evicting oldest-first: the bounded-memory record books (discard
/// records, retired requests) a faulty classical plane can otherwise
/// grow without limit.
#[derive(Debug)]
pub(crate) struct BoundedSet<T> {
    set: HashSet<T>,
    order: VecDeque<T>,
    cap: usize,
}

impl<T: Eq + Hash + Copy> BoundedSet<T> {
    pub fn new(cap: usize) -> Self {
        BoundedSet {
            set: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Insert `v`, evicting the oldest keys beyond capacity.
    pub fn insert(&mut self, v: T) {
        if !self.set.insert(v) {
            return;
        }
        self.order.push_back(v);
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &T) -> bool {
        self.set.contains(v)
    }
}

/// A map remembering (at most) the `cap` most recently inserted keys,
/// evicting oldest-first: the repeater's relayed-TRACK memory, which a
/// duplicating classical plane would otherwise grow without limit.
#[derive(Debug)]
pub(crate) struct BoundedMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Eq + Hash + Copy, V> BoundedMap<K, V> {
    pub fn new(cap: usize) -> Self {
        BoundedMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Insert `k → v`, evicting the oldest keys beyond capacity. An
    /// existing key is overwritten in place (its eviction slot stays).
    pub fn insert(&mut self, k: K, v: V) {
        if self.map.insert(k, v).is_some() {
            return;
        }
        self.order.push_back(k);
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    /// Look up a key.
    pub fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }
}

/// State of one request known at an end-node.
#[derive(Clone, Debug)]
pub(crate) struct ReqState {
    pub head_identifier: u32,
    pub tail_identifier: u32,
    pub request_type: RequestType,
    pub final_state: Option<BellState>,
    /// Total pairs, `None` for rate-based requests.
    pub count: Option<u64>,
    /// Confirmed deliveries at this end.
    pub delivered: u64,
    /// Next delivery sequence number.
    pub next_seq: u64,
    /// Pairs assigned by the local demultiplexer.
    pub assigned: u64,
    /// Set once the request finished (kept for late TRACKs).
    pub completed: bool,
}

impl ReqState {
    pub fn take_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    pub fn is_full(&self) -> bool {
        matches!(self.count, Some(n) if self.delivered >= n)
    }
}

/// A pair tracked at an end-node between link delivery and confirmation.
#[derive(Clone, Debug)]
pub(crate) struct InTransit {
    pub request: RequestId,
    pub pair: PairRef,
    /// Epoch stamped on the head-originated TRACK (head-end only).
    pub epoch: Epoch,
    pub delivered_early: bool,
    /// MEASURE bookkeeping: outcome arrives asynchronously.
    pub awaiting_measure: bool,
    pub measure_outcome: Option<bool>,
    /// TRACK that arrived before the measurement outcome.
    pub pending_track: Option<Track>,
}

/// End-node (head or tail) circuit state.
#[derive(Debug)]
pub(crate) struct EndpointState {
    pub is_head: bool,
    pub requests: BTreeMap<RequestId, ReqState>,
    pub demux: SymmetricDemux,
    pub in_transit: HashMap<Correlator, InTransit>,
    /// Head-end only: admission control and bandwidth bookkeeping.
    pub policer: Policer,
    /// Whether the circuit's link request is live on our single link.
    pub link_submitted: bool,
    /// Discard records for link pairs this end could not assign to any
    /// request (or expired locally): when the peer's TRACK for such a
    /// chain arrives, it is answered with an EXPIRE so the peer's qubit
    /// is freed (the end-node analogue of the repeater's discard
    /// records; without it a timing window leaks an `assigned` slot at
    /// the peer forever).
    pub discard_records: BoundedSet<Correlator>,
}

impl EndpointState {
    /// Fresh endpoint state for one end of a circuit.
    pub fn new(is_head: bool, max_eer: f64) -> Self {
        EndpointState {
            is_head,
            requests: BTreeMap::new(),
            demux: SymmetricDemux::new(),
            in_transit: HashMap::new(),
            policer: Policer::new(max_eer),
            link_submitted: false,
            discard_records: BoundedSet::new(4096),
        }
    }
}

/// A pair queued at a repeater awaiting its matching pair.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingPair {
    pub pair: PairRef,
    pub announced: BellState,
}

/// Swap record (paper §4.1 "Swap records"): logged when a swap completes
/// before the corresponding TRACK arrives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SwapRecord {
    /// The pair continuing the chain on the other link.
    pub other: PendingPair,
    /// The two-bit announced swap outcome.
    pub outcome: BellState,
}

/// Intermediate-node circuit state.
#[derive(Debug)]
pub(crate) struct MidState {
    /// FIFO of unswapped pairs on the upstream link (oldest first — the
    /// evaluation's "prefer the oldest unexpired pairs").
    pub up_queue: VecDeque<PendingPair>,
    pub down_queue: VecDeque<PendingPair>,
    /// The swap currently executing, if any (one processor per node).
    pub swapping: Option<(PendingPair, PendingPair)>,
    /// TRACKs waiting for their pair's swap, keyed by the local pair
    /// correlator on the respective link.
    pub up_track: HashMap<Correlator, Track>,
    pub down_track: HashMap<Correlator, Track>,
    /// Swap records waiting for their TRACK.
    pub up_record: HashMap<Correlator, SwapRecord>,
    pub down_record: HashMap<Correlator, SwapRecord>,
    /// Discard records (paper: "temporary discard record") for qubits
    /// dropped by the cutoff before their TRACK arrived. Kept (bounded)
    /// after the first matching TRACK so a duplicated TRACK re-bounces
    /// the EXPIRE instead of parking forever.
    pub up_expired: BoundedSet<Correlator>,
    pub down_expired: BoundedSet<Correlator>,
    /// Rewritten TRACKs this repeater already forwarded, keyed by the
    /// incoming `link` correlator: a duplicated TRACK (retransmission
    /// racing the ack, or a duplication fault) finds its swap record
    /// consumed, so the stored copy is re-forwarded verbatim.
    pub up_relayed: BoundedMap<Correlator, Track>,
    pub down_relayed: BoundedMap<Correlator, Track>,
    /// Requests currently active on the circuit (from FORWARD/COMPLETE).
    pub active_requests: u64,
    /// Request ids currently counted in `active_requests` — lets a
    /// faulty plane's duplicated FORWARD/COMPLETE be absorbed without
    /// corrupting the count (the link would otherwise generate forever).
    pub counted_requests: HashSet<RequestId>,
    /// Recently retired request ids: a FORWARD duplicate arriving after
    /// its COMPLETE must not resurrect the request.
    pub retired_requests: BoundedSet<RequestId>,
    pub link_submitted: bool,
}

impl Default for MidState {
    fn default() -> Self {
        MidState {
            up_queue: VecDeque::new(),
            down_queue: VecDeque::new(),
            swapping: None,
            up_track: HashMap::new(),
            down_track: HashMap::new(),
            up_record: HashMap::new(),
            down_record: HashMap::new(),
            up_expired: BoundedSet::new(1024),
            down_expired: BoundedSet::new(1024),
            up_relayed: BoundedMap::new(1024),
            down_relayed: BoundedMap::new(1024),
            active_requests: 0,
            counted_requests: HashSet::new(),
            retired_requests: BoundedSet::new(1024),
            link_submitted: false,
        }
    }
}

/// Per-circuit state at one node.
#[derive(Debug)]
pub(crate) enum CircuitState {
    Endpoint(EndpointState),
    Mid(MidState),
}

pub(crate) struct Circuit {
    /// The node this circuit state lives on (for delivery addresses).
    pub node: qn_sim::NodeId,
    pub entry: RoutingEntry,
    pub state: CircuitState,
}

/// Resilience counters: anomalous classical-plane inputs the node
/// absorbed instead of acting on. All zero on a reliable, in-order
/// plane; a faulty classical plane (drops, duplicates, reordering,
/// corruption — `qn_netsim`'s `ClassicalFaults`) makes them tick.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NodeStats {
    /// FORWARDs for an already-known request (duplication faults).
    pub duplicate_forwards: u64,
    /// COMPLETEs for an already-retired request.
    pub duplicate_completes: u64,
    /// Role-inconsistent messages ignored (e.g. a FORWARD arriving at a
    /// head-end — only possible via corruption).
    pub misrouted: u64,
    /// TRACKs matching no in-transit pair, record or discard record
    /// (duplicated or corrupted TRACKs).
    pub stale_tracks: u64,
    /// EXPIREs matching no in-transit pair.
    pub stale_expires: u64,
    /// In-transit pairs expired by the local track-timeout (their
    /// TRACK/EXPIRE never arrived).
    pub expired_in_transit: u64,
    /// Messages for circuits not installed at this node.
    pub unknown_circuit: u64,
    /// Duplicated TRACKs a repeater re-relayed from its bounded
    /// relayed-TRACK memory (retransmissions racing their ack).
    pub duplicate_tracks_relayed: u64,
}

impl NodeStats {
    /// Element-wise sum (for aggregating across nodes).
    pub fn merge(&mut self, other: &NodeStats) {
        self.duplicate_forwards += other.duplicate_forwards;
        self.duplicate_completes += other.duplicate_completes;
        self.misrouted += other.misrouted;
        self.stale_tracks += other.stale_tracks;
        self.stale_expires += other.stale_expires;
        self.expired_in_transit += other.expired_in_transit;
        self.unknown_circuit += other.unknown_circuit;
        self.duplicate_tracks_relayed += other.duplicate_tracks_relayed;
    }

    /// Total anomalies absorbed.
    pub fn total(&self) -> u64 {
        self.duplicate_forwards
            + self.duplicate_completes
            + self.misrouted
            + self.stale_tracks
            + self.stale_expires
            + self.expired_in_transit
            + self.unknown_circuit
            + self.duplicate_tracks_relayed
    }
}

/// The QNP protocol instance at one node.
pub struct QnpNode {
    node: qn_sim::NodeId,
    pub(crate) circuits: HashMap<u64, Circuit>,
    /// Resilience counters (see [`NodeStats`]).
    pub stats: NodeStats,
}

impl QnpNode {
    /// A node with no circuits installed.
    pub fn new(node: qn_sim::NodeId) -> Self {
        QnpNode {
            node,
            circuits: HashMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's identity.
    pub fn node(&self) -> qn_sim::NodeId {
        self.node
    }

    /// Whether a circuit is installed.
    pub fn has_circuit(&self, circuit: CircuitId) -> bool {
        self.circuits.contains_key(&circuit.0)
    }

    /// The node's role on a circuit, if installed.
    pub fn role(&self, circuit: CircuitId) -> Option<Role> {
        self.circuits.get(&circuit.0).map(|c| c.entry.role())
    }

    /// Zero-copy ingress: validate an encoded data-plane frame as a
    /// borrowed view (`crate::wire::MessageView`) and run the rules on
    /// it, materialising the owned message only here — the single place
    /// the receive path copies out of the frame buffer. Returns the
    /// frame's circuit alongside the effects so the runtime can demux
    /// without re-decoding.
    pub fn handle_frame(
        &mut self,
        from_upstream: bool,
        frame: &[u8],
    ) -> Result<(CircuitId, Vec<NetOutput>), crate::wire::DecodeError> {
        let view = crate::wire::MessageView::parse(frame)?;
        let circuit = view.circuit();
        let msg = view.to_message();
        Ok((
            circuit,
            self.handle(NetInput::Message { from_upstream, msg }),
        ))
    }

    /// Handle one input, producing the effects for the runtime.
    pub fn handle(&mut self, input: NetInput) -> Vec<NetOutput> {
        let mut out = Vec::new();
        match input {
            NetInput::InstallCircuit { entry } => {
                let state = match entry.role() {
                    Role::HeadEnd => {
                        CircuitState::Endpoint(EndpointState::new(true, entry.max_eer))
                    }
                    Role::TailEnd => {
                        CircuitState::Endpoint(EndpointState::new(false, entry.max_eer))
                    }
                    Role::Intermediate => CircuitState::Mid(MidState::default()),
                };
                self.circuits.insert(
                    entry.circuit.0,
                    Circuit {
                        node: self.node,
                        entry,
                        state,
                    },
                );
            }
            NetInput::TeardownCircuit { circuit } => {
                if let Some(c) = self.circuits.remove(&circuit.0) {
                    crate::rules::teardown(circuit, c, &mut out);
                }
            }
            NetInput::UserRequest { circuit, request } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::endpoint::user_request(circuit, c, request, &mut out);
                }
            }
            NetInput::CancelRequest { circuit, request } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::endpoint::cancel_request(circuit, c, request, &mut out);
                }
            }
            NetInput::LinkPair {
                circuit,
                side,
                info,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    match &mut c.state {
                        CircuitState::Endpoint(_) => {
                            crate::rules::endpoint::link_rule(circuit, c, info, &mut out)
                        }
                        CircuitState::Mid(_) => {
                            crate::rules::repeater::link_rule(c, side, info, &mut out)
                        }
                    }
                }
            }
            NetInput::Message { from_upstream, msg } => {
                let circuit = msg.circuit();
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::dispatch_message(
                        circuit,
                        c,
                        from_upstream,
                        msg,
                        &mut out,
                        &mut self.stats,
                    );
                } else {
                    // A message for a circuit not installed here: torn
                    // down, or the circuit id was corrupted in flight.
                    self.stats.unknown_circuit += 1;
                }
            }
            NetInput::SwapCompleted {
                circuit,
                up,
                down,
                outcome,
                new_handle,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::repeater::swap_completed(
                        c, up, down, outcome, new_handle, &mut out,
                    );
                }
            }
            NetInput::MeasureCompleted {
                circuit,
                correlator,
                outcome,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::endpoint::measure_completed(
                        circuit, c, correlator, outcome, &mut out,
                    );
                }
            }
            NetInput::TrackTimeout {
                circuit,
                correlator,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    if matches!(c.state, CircuitState::Endpoint(_)) {
                        crate::rules::endpoint::track_timeout(
                            c,
                            correlator,
                            &mut out,
                            &mut self.stats,
                        );
                    }
                }
            }
            NetInput::LinkOrphaned {
                circuit,
                side,
                correlator,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    match &mut c.state {
                        CircuitState::Endpoint(_) => {
                            crate::rules::endpoint::link_orphaned(c, correlator)
                        }
                        CircuitState::Mid(_) => {
                            crate::rules::repeater::link_orphaned(c, side, correlator, &mut out)
                        }
                    }
                }
            }
            NetInput::CutoffExpired {
                circuit,
                side,
                correlator,
            } => {
                if let Some(c) = self.circuits.get_mut(&circuit.0) {
                    crate::rules::repeater::cutoff_expired(c, side, correlator, &mut out);
                }
            }
        }
        out
    }

    /// Whether an end-node still holds `correlator` unconfirmed (in
    /// transit between link delivery and TRACK/EXPIRE). Retransmitting
    /// runtimes use this to stop retrying a chain that already resolved.
    pub fn holds_in_transit(&self, circuit: CircuitId, correlator: Correlator) -> bool {
        match self.circuits.get(&circuit.0).map(|c| &c.state) {
            Some(CircuitState::Endpoint(ep)) => ep.in_transit.contains_key(&correlator),
            _ => false,
        }
    }

    /// Whether this node's protocol state references the link pair at
    /// all: in transit at an end-node, or queued/swapping at a repeater.
    /// A runtime whose PAIR_READY notifications can be lost in flight
    /// uses this to tell an orphaned physical qubit (the protocol never
    /// learned of it — nothing will ever free it) from one the protocol
    /// is still working on.
    pub fn knows_pair(&self, circuit: CircuitId, correlator: Correlator) -> bool {
        match self.circuits.get(&circuit.0).map(|c| &c.state) {
            Some(CircuitState::Endpoint(ep)) => ep.in_transit.contains_key(&correlator),
            Some(CircuitState::Mid(m)) => {
                m.up_queue.iter().any(|p| p.pair.correlator == correlator)
                    || m.down_queue.iter().any(|p| p.pair.correlator == correlator)
                    || m.swapping.as_ref().is_some_and(|(a, b)| {
                        a.pair.correlator == correlator || b.pair.correlator == correlator
                    })
            }
            None => false,
        }
    }

    /// Test/diagnostic access: number of in-transit pairs at an end-node.
    pub fn in_transit_len(&self, circuit: CircuitId) -> usize {
        match self.circuits.get(&circuit.0).map(|c| &c.state) {
            Some(CircuitState::Endpoint(ep)) => ep.in_transit.len(),
            _ => 0,
        }
    }

    /// Test/diagnostic access: queued unswapped pairs at a repeater
    /// (upstream, downstream).
    pub fn queued_pairs(&self, circuit: CircuitId) -> (usize, usize) {
        match self.circuits.get(&circuit.0).map(|c| &c.state) {
            Some(CircuitState::Mid(m)) => (m.up_queue.len(), m.down_queue.len()),
            _ => (0, 0),
        }
    }

    /// Test/diagnostic access: delivered count of a request at this end.
    pub fn delivered(&self, circuit: CircuitId, request: RequestId) -> u64 {
        match self.circuits.get(&circuit.0).map(|c| &c.state) {
            Some(CircuitState::Endpoint(ep)) => {
                ep.requests.get(&request).map(|r| r.delivered).unwrap_or(0)
            }
            _ => 0,
        }
    }
}
