//! Property tests for the single-click heralding model and the pair
//! store's physical invariants, plus a `qn_testkit` model test of the
//! store's bookkeeping under chain extension / swap / discard.

use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::pairs::{PairId, PairStore, SwapNoise};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};
use qn_testkit::{ModelSpec, ModelTest};
use std::collections::VecDeque;

fn lab() -> LinkPhysics {
    LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m())
}

/// Chain bookkeeping model for the pair store: a repeater chain is
/// extended pair by pair, swapped at its left end, and discarded —
/// exactly the lifecycle the QNP runtime drives. The model tracks pair
/// liveness, endpoint nodes and the announced-state XOR algebra; the
/// system is the real `PairStore` with its noisy swap circuit.
mod chain_model {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ChainOp {
        /// Create a pair extending the chain one node to the right,
        /// announced as Ψ⁻ (`minus`) or Ψ⁺.
        Extend { minus: bool },
        /// Entanglement-swap the two leftmost pairs at their shared node.
        SwapFront,
        /// Discard the leftmost pair.
        DiscardFront,
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Segment {
        pub left: u32,
        pub right: u32,
        pub announced: BellState,
    }

    pub struct ChainSystem {
        pub store: PairStore,
        pub pairs: VecDeque<PairId>,
        pub noise: SwapNoise,
        pub rng: SimRng,
        pub next_node: u32,
    }

    pub struct ChainSpec;

    impl ModelSpec for ChainSpec {
        type Op = ChainOp;
        type Model = VecDeque<Segment>;
        type System = ChainSystem;

        fn new_model(&self) -> VecDeque<Segment> {
            VecDeque::new()
        }

        fn new_system(&self) -> ChainSystem {
            ChainSystem {
                store: PairStore::new(),
                pairs: VecDeque::new(),
                noise: SwapNoise::from_params(&HardwareParams::simulation()),
                rng: SimRng::from_seed(7),
                next_node: 0,
            }
        }

        fn op_strategy(&self) -> BoxedStrategy<ChainOp> {
            prop_oneof![
                any::<bool>().prop_map(|minus| ChainOp::Extend { minus }),
                Just(ChainOp::SwapFront),
                Just(ChainOp::DiscardFront),
            ]
            .boxed()
        }

        fn precondition(&self, model: &VecDeque<Segment>, op: &ChainOp) -> bool {
            match op {
                ChainOp::Extend { .. } => model.len() < 6,
                ChainOp::SwapFront => model.len() >= 2,
                ChainOp::DiscardFront => !model.is_empty(),
            }
        }

        fn apply(
            &self,
            model: &mut VecDeque<Segment>,
            system: &mut ChainSystem,
            op: &ChainOp,
        ) -> Result<(), String> {
            match *op {
                ChainOp::Extend { minus } => {
                    let announced = if minus {
                        BellState::PSI_MINUS
                    } else {
                        BellState::PSI_PLUS
                    };
                    let (l, r) = (system.next_node, system.next_node + 1);
                    system.next_node += 1;
                    let id = system.store.create(
                        SimTime::ZERO,
                        announced.density(),
                        announced,
                        [
                            (NodeId(l), QubitId(0), 3600.0, 60.0),
                            (NodeId(r), QubitId(1), 3600.0, 60.0),
                        ],
                    );
                    system.pairs.push_back(id);
                    model.push_back(Segment {
                        left: l,
                        right: r,
                        announced,
                    });
                    Ok(())
                }
                ChainOp::SwapFront => {
                    let (sa, sb) = (model[0], model[1]);
                    if sa.right != sb.left {
                        return Err(format!("model chain discontiguous: {sa:?} then {sb:?}"));
                    }
                    let (pa, pb) = (system.pairs[0], system.pairs[1]);
                    let res = system.store.swap(
                        pa,
                        pb,
                        NodeId(sa.right),
                        SimTime::ZERO,
                        &system.noise,
                        &mut system.rng,
                    );
                    if system.store.contains(pa) || system.store.contains(pb) {
                        return Err("swap must consume both input pairs".to_string());
                    }
                    let joined = system
                        .store
                        .get(res.new_pair)
                        .ok_or("joined pair missing from the store")?;
                    let ends = joined.ends();
                    if ends[0].node != NodeId(sa.left) || ends[1].node != NodeId(sb.right) {
                        return Err(format!(
                            "joined pair spans ({}, {}), model expected ({}, {})",
                            ends[0].node, ends[1].node, sa.left, sb.right
                        ));
                    }
                    if res.freed.iter().any(|(n, _)| *n != NodeId(sa.right)) {
                        return Err(format!(
                            "freed qubits {:?} not all at the swap node n{}",
                            res.freed, sa.right
                        ));
                    }
                    // The announced state must follow the XOR algebra.
                    let expected = sa.announced.combine(sb.announced, res.outcome);
                    if joined.announced != expected {
                        return Err(format!(
                            "announced {} after swap, model expected {expected}",
                            joined.announced
                        ));
                    }
                    system.pairs.pop_front();
                    system.pairs.pop_front();
                    system.pairs.push_front(res.new_pair);
                    model.pop_front();
                    model.pop_front();
                    model.push_front(Segment {
                        left: sa.left,
                        right: sb.right,
                        announced: expected,
                    });
                    Ok(())
                }
                ChainOp::DiscardFront => {
                    let seg = model.pop_front().expect("precondition");
                    let id = system.pairs.pop_front().expect("precondition");
                    let freed = system
                        .store
                        .discard(id)
                        .ok_or("discard of a live pair returned None")?;
                    let nodes: Vec<u32> = freed.iter().map(|(n, _)| n.0).collect();
                    if nodes != vec![seg.left, seg.right] {
                        return Err(format!(
                            "discard freed {nodes:?}, model expected [{}, {}]",
                            seg.left, seg.right
                        ));
                    }
                    if system.store.contains(id) {
                        return Err("discarded pair still in the store".to_string());
                    }
                    Ok(())
                }
            }
        }

        fn invariants(
            &self,
            model: &VecDeque<Segment>,
            system: &ChainSystem,
        ) -> Result<(), String> {
            if system.store.len() != model.len() {
                return Err(format!(
                    "live pairs: store {} vs model {}",
                    system.store.len(),
                    model.len()
                ));
            }
            Ok(())
        }
    }
}

/// Random extend/swap/discard sequences: the pair store's bookkeeping
/// (liveness, endpoints, freed qubits, announced-state algebra) must
/// match the chain model.
#[test]
fn pair_store_matches_chain_model() {
    ModelTest::new("hardware_pair_store_matches_model", chain_model::ChainSpec)
        .cases(128)
        .max_ops(40)
        .run();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rate–fidelity trade-off is a genuine trade-off: on the
    /// operating branch, raising alpha raises the success probability
    /// and lowers the fidelity, monotonically.
    #[test]
    fn alpha_tradeoff_is_monotone(a in 0.01f64..0.45, delta in 0.01f64..0.05) {
        let physics = lab();
        let (_, alpha_peak) = physics.max_fidelity();
        prop_assume!(a >= alpha_peak);
        let b = (a + delta).min(0.5);
        prop_assert!(physics.success_prob(b) > physics.success_prob(a));
        prop_assert!(physics.fidelity(b) <= physics.fidelity(a) + 1e-12);
    }

    /// `alpha_for_fidelity` is a right inverse of `fidelity` wherever it
    /// succeeds, and it always returns the *fastest* compliant alpha
    /// (any higher alpha violates the target).
    #[test]
    fn alpha_for_fidelity_is_tight(target in 0.75f64..0.97) {
        let physics = lab();
        if let Some(alpha) = physics.alpha_for_fidelity(target) {
            prop_assert!(physics.fidelity(alpha) >= target - 1e-6);
            if alpha < 0.5 {
                let above = (alpha * 1.05).min(0.5);
                prop_assert!(
                    physics.fidelity(above) < target + 1e-6,
                    "a faster alpha also satisfies the target — not tight"
                );
            }
        }
    }

    /// Heralded states are valid density matrices for any alpha, and
    /// their fidelity matches the analytic expression.
    #[test]
    fn heralded_states_are_valid(alpha in 0.005f64..0.5, minus in any::<bool>()) {
        let physics = lab();
        let announced = if minus { BellState::PSI_MINUS } else { BellState::PSI_PLUS };
        let rho = physics.heralded_state(alpha, announced);
        prop_assert!((rho.trace() - 1.0).abs() < 1e-9);
        prop_assert!(rho.purity() <= 1.0 + 1e-9);
        let f = rho.fidelity_pure(&announced.amplitudes());
        prop_assert!((f - physics.fidelity(alpha)).abs() < 1e-9);
    }

    /// Pair-store physical invariants under random idle/swap sequences:
    /// trace stays 1, fidelity stays in [0,1] and never *increases* from
    /// idling.
    #[test]
    fn decoherence_never_raises_fidelity(
        t2 in 0.1f64..10.0,
        waits_ms in proptest::collection::vec(1u64..2000, 1..8),
    ) {
        let mut store = PairStore::new();
        let id = store.create(
            SimTime::ZERO,
            BellState::PHI_PLUS.density(),
            BellState::PHI_PLUS,
            [
                (NodeId(0), QubitId(0), 3600.0, t2),
                (NodeId(1), QubitId(0), 3600.0, t2),
            ],
        );
        let mut now = SimTime::ZERO;
        let mut last_f = 1.0;
        for w in waits_ms {
            now += SimDuration::from_millis(w);
            let f = store.fidelity_to(id, BellState::PHI_PLUS, now);
            prop_assert!(f <= last_f + 1e-9, "idling increased fidelity: {f} > {last_f}");
            prop_assert!((0.0..=1.0).contains(&f));
            let pair = store.get(id).unwrap();
            prop_assert!((pair.state().trace() - 1.0).abs() < 1e-6);
            last_f = f;
        }
    }

    /// Random chains of noisy swaps keep valid states and the announced
    /// Bell state tracks the physical state's dominant component while
    /// fidelity stays above the mistracking floor.
    #[test]
    fn random_swap_chains_stay_physical(seed in 0u64..500, n_links in 2usize..5) {
        let params = HardwareParams::simulation();
        let noise = SwapNoise::from_params(&params);
        let mut rng = SimRng::from_seed(seed);
        let mut store = PairStore::new();
        let mut pairs = Vec::new();
        for i in 0..n_links {
            let announced = if rng.bernoulli(0.5) { BellState::PSI_PLUS } else { BellState::PSI_MINUS };
            let mut state = BellState::PHI_PLUS.density();
            let corr = BellState::PHI_PLUS.correction_to(announced);
            if corr != qn_quantum::Pauli::I {
                state.apply_unitary(&corr.matrix(), &[1]);
            }
            pairs.push(store.create(
                SimTime::ZERO,
                state,
                announced,
                [
                    (NodeId(i as u32), QubitId(1), 3600.0, 60.0),
                    (NodeId(i as u32 + 1), QubitId(0), 3600.0, 60.0),
                ],
            ));
        }
        // Swap left to right.
        let mut current = pairs[0];
        for (i, next) in pairs.iter().enumerate().skip(1) {
            let res = store.swap(current, *next, NodeId(i as u32), SimTime::ZERO, &noise, &mut rng);
            current = res.new_pair;
        }
        let pair = store.get(current).unwrap();
        prop_assert!((pair.state().trace() - 1.0).abs() < 1e-6);
        let announced = pair.announced;
        let f = store.fidelity_to(current, announced, SimTime::ZERO);
        // With 0.998 gates and 0.998 readout over ≤3 swaps, the announced
        // state should almost always be the dominant component.
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
