//! Component-fault chaos scenarios: scheduled link outages and node
//! crashes from a [`FaultPlan`], the PR-9 robustness tentpole. The
//! acceptance bar: a mid-run outage of the middle link of a wired
//! 4-chain (and separately a crash/restart of a repeater) degrades
//! gracefully — bounded requests still complete exactly once per end
//! after recovery, torn-down circuits are reported to their end-nodes,
//! and after a settle window no pairs, timers, or correlator state
//! leak. Every faulted run is a pure function of its seed, and an
//! empty plan is bit-invisible.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, AppEvent, CircuitId, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_netsim::{ClassicalFaults, FaultPlan};
use qn_routing::{chain, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// Delivery trajectory fingerprint, byte-for-byte comparable.
fn trajectory(sim: &NetSim) -> Vec<(u64, u32, u64, u64)> {
    sim.app()
        .deliveries
        .iter()
        .map(|d| (d.time.as_ps(), d.node.0, d.request.0, d.sequence))
        .collect()
}

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Settle, then assert the run left nothing behind: no live pairs, no
/// armed timers (cutoffs / track expiries / retransmits / signal
/// retries), no retained correlator state (pair ends + dedup records).
fn assert_zero_leak(sim: &mut NetSim, what: &str) {
    sim.run_until(sim.now() + SimDuration::from_secs(10));
    assert_eq!(sim.live_pairs(), 0, "{what}: pairs leaked");
    assert_eq!(sim.armed_timers(), 0, "{what}: timers leaked");
    assert_eq!(
        sim.retained_correlators(),
        0,
        "{what}: correlator state leaked"
    );
}

/// A wired 4-chain run with an optional fault plan: one bounded Keep
/// request across the full chain (fault-free it completes in ~170 ms),
/// run to `horizon_s` seconds.
fn wired_chaos_run(seed: u64, plan: Option<FaultPlan>, n: u64, horizon_s: u64) -> NetSim {
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut b = NetworkBuilder::new(topology)
        .seed(seed)
        .signalling_on_wire()
        .track_timeout(SimDuration::from_secs(2));
    if let Some(p) = plan {
        b = b.fault_plan(p);
    }
    let mut sim = b.build();
    let (head, tail) = (NodeId(0), NodeId(3));
    let vc = sim
        .open_circuit(head, tail, 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, head, tail, 0.8, n));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(horizon_s));
    sim
}

#[test]
fn empty_fault_plan_is_bit_invisible() {
    // Configuring an explicitly empty plan must not perturb a single
    // RNG draw, event or counter relative to a build without one.
    let base = wired_chaos_run(4100, None, 6, 60);
    let with_plan = wired_chaos_run(4100, Some(FaultPlan::new()), 6, 60);
    assert_eq!(trajectory(&base), trajectory(&with_plan));
    assert_eq!(base.events_processed(), with_plan.events_processed());
    assert_eq!(base.classical_stats(), with_plan.classical_stats());
    assert_eq!(base.node_stats(), with_plan.node_stats());
    assert_eq!(base.discarded_pairs(), with_plan.discarded_pairs());
}

#[test]
fn mid_run_middle_link_outage_completes_exactly_once() {
    // The acceptance scenario: the middle link (1–2) of the wired
    // 4-chain goes dark from 50 ms to 250 ms, squarely inside the
    // request's fault-free lifetime. Generation on the hop halts, its
    // live pairs are scrapped through the expiry machinery, frames on
    // the hop are eaten — and after recovery the bounded request still
    // completes with exactly n confirmed pairs per end, because lost
    // TRACKs are retransmitted and reclaimed qubits regenerate.
    let plan = || {
        FaultPlan::new().link_outage(
            NodeId(1),
            NodeId(2),
            at_ms(50),
            SimDuration::from_millis(200),
        )
    };
    let run = |seed| wired_chaos_run(seed, Some(plan()), 8, 60);
    let mut sim = run(4207);
    let app = sim.app();
    assert!(
        app.completed.contains_key(&(CircuitId(1), RequestId(1))),
        "request did not complete after the outage"
    );
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(CircuitId(1), node, SimTime::ZERO, SimTime::MAX),
            8,
            "{node}: over- or under-delivery across the outage"
        );
    }
    // The outage actually interrupted the run: no end-to-end pair can
    // form without the middle hop, so the request finished only after
    // the link came back.
    let last = trajectory(&sim).last().unwrap().0;
    assert!(
        last > at_ms(250).as_ps(),
        "request finished at {last} ps, before the link recovered"
    );
    // Frames really were eaten on the dead hop (TRACK retransmits keep
    // probing it during the outage).
    let s = sim.classical_stats();
    assert!(s.dropped > 0, "no frames dropped on the dead hop: {s:?}");
    // Determinism: the faulted run is a pure function of the seed.
    let again = run(4207);
    assert_eq!(trajectory(&sim), trajectory(&again));
    assert_eq!(sim.classical_stats(), again.classical_stats());
    assert_eq!(sim.node_stats(), again.node_stats());
    assert_eq!(sim.events_processed(), again.events_processed());
    // Different seeds sample different trajectories around the outage.
    assert_ne!(trajectory(&sim), trajectory(&run(4208)));
    assert_zero_leak(&mut sim, "link outage");
}

#[test]
fn repeater_crash_reports_circuit_down_and_serves_after_restart() {
    // Repeater 1 crashes at 50 ms (volatile protocol state lost, its
    // qubits freed, timers disarmed) and restarts at 150 ms. The
    // unbounded-ish request through it cannot survive: the circuit is
    // torn down end-to-end and both end-nodes hear CircuitDown. After
    // the restart the node re-registers its links: a fresh circuit over
    // the same path completes a new request.
    let run = |seed: u64| -> NetSim {
        let plan =
            FaultPlan::new().node_outage(NodeId(1), at_ms(50), SimDuration::from_millis(100));
        let mut sim = wired_chaos_run(seed, Some(plan), 1_000, 1);
        // Past the restart: the crashed node is live again with empty
        // protocol state. Re-provision and go again.
        let vc2 = sim
            .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(sim.now(), vc2, keep(2, NodeId(0), NodeId(3), 0.8, 4));
        sim.run_until(sim.now() + SimDuration::from_secs(30));
        sim
    };
    let mut sim = run(4301);
    let app = sim.app();
    // The crash killed circuit 1 and both end-nodes were told.
    for node in [NodeId(0), NodeId(3)] {
        assert!(
            app.events.iter().any(|(_, n, ev)| *n == node
                && matches!(ev, AppEvent::CircuitDown(c) if *c == CircuitId(1))),
            "{node}: no CircuitDown for the circuit through the crashed repeater"
        );
    }
    assert!(
        !app.completed.contains_key(&(CircuitId(1), RequestId(1))),
        "a request through a crashed repeater cannot complete"
    );
    // The replacement circuit over the restarted repeater delivered
    // exactly once per end.
    assert!(
        app.completed.contains_key(&(CircuitId(2), RequestId(2))),
        "restarted repeater did not serve the replacement circuit"
    );
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(CircuitId(2), node, SimTime::ZERO, SimTime::MAX),
            4,
            "{node}: replacement circuit over- or under-delivered"
        );
    }
    // Determinism across repeats.
    let again = run(4301);
    assert_eq!(trajectory(&sim), trajectory(&again));
    assert_eq!(sim.classical_stats(), again.classical_stats());
    assert_eq!(sim.node_stats(), again.node_stats());
    assert_eq!(sim.events_processed(), again.events_processed());
    assert_zero_leak(&mut sim, "repeater crash");
}

#[test]
fn stochastic_fault_schedule_is_deterministic_and_leak_free() {
    // MTBF/MTTR churn on the middle link: failures drawn from the
    // dedicated "component-faults" substream, so the run stays a pure
    // function of the seed and every outage recovers.
    let plan = || {
        FaultPlan::new()
            .horizon(SimTime::ZERO + SimDuration::from_secs(2))
            .link_mtbf(
                NodeId(1),
                NodeId(2),
                SimDuration::from_millis(300),
                SimDuration::from_millis(100),
            )
    };
    assert!(!plan().expand(4400).is_empty(), "churn plan drew no faults");
    let run = |seed| wired_chaos_run(seed, Some(plan()), 8, 30);
    let mut sim = run(4400);
    let again = run(4400);
    assert_eq!(trajectory(&sim), trajectory(&again));
    assert_eq!(sim.classical_stats(), again.classical_stats());
    assert_eq!(sim.node_stats(), again.node_stats());
    assert_eq!(sim.events_processed(), again.events_processed());
    assert_ne!(trajectory(&sim), trajectory(&run(4401)));
    // Progress under churn: the 100 ms repairs leave enough up-time for
    // the bounded request to finish inside the 30 s horizon.
    assert!(
        sim.app()
            .completed
            .contains_key(&(CircuitId(1), RequestId(1))),
        "request starved under churn"
    );
    assert_zero_leak(&mut sim, "stochastic churn");
}

// ---------------------------------------------------------------------
// Per-link message-fault overrides (satellite a)
// ---------------------------------------------------------------------

fn override_run(
    seed: u64,
    global: ClassicalFaults,
    overrides: &[(NodeId, NodeId, ClassicalFaults)],
) -> NetSim {
    let topology = chain(4, HardwareParams::simulation(), FibreParams::lab_2m());
    let mut b = NetworkBuilder::new(topology)
        .seed(seed)
        .signalling_on_wire()
        .classical_faults(global)
        .track_timeout(SimDuration::from_secs(2));
    for (a, x, f) in overrides {
        b = b.link_faults(*a, *x, *f);
    }
    let mut sim = b.build();
    let vc = sim
        .open_circuit(NodeId(0), NodeId(3), 0.8, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, NodeId(0), NodeId(3), 0.8, 4));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    sim
}

#[test]
fn link_override_equal_to_global_is_bit_identical() {
    // Installing a per-link override whose value matches the global
    // model must not change a thing: the override table is a pure
    // routing of the same fault parameters.
    let faults = ClassicalFaults {
        drop: 0.1,
        ..ClassicalFaults::OFF
    };
    let base = override_run(4500, faults, &[]);
    let routed = override_run(4500, faults, &[(NodeId(1), NodeId(2), faults)]);
    assert_eq!(trajectory(&base), trajectory(&routed));
    assert_eq!(base.classical_stats(), routed.classical_stats());
    assert_eq!(base.node_stats(), routed.node_stats());
    assert_eq!(base.events_processed(), routed.events_processed());
}

#[test]
fn lossy_middle_hop_override_localizes_faults() {
    // A clean global plane with one lossy middle hop: drops are
    // sampled, the protocol retransmits across them, and the bounded
    // request still completes exactly once per end — deterministically.
    let lossy = ClassicalFaults {
        drop: 0.2,
        ..ClassicalFaults::OFF
    };
    let run = |seed| override_run(seed, ClassicalFaults::OFF, &[(NodeId(1), NodeId(2), lossy)]);
    let sim = run(4601);
    let s = sim.classical_stats();
    assert!(s.dropped > 0, "lossy hop sampled no drops: {s:?}");
    let app = sim.app();
    assert!(app.completed.contains_key(&(CircuitId(1), RequestId(1))));
    for node in [NodeId(0), NodeId(3)] {
        assert_eq!(
            app.confirmed_deliveries(CircuitId(1), node, SimTime::ZERO, SimTime::MAX),
            4,
            "{node}: exactly-once violated across the lossy hop"
        );
    }
    let again = run(4601);
    assert_eq!(trajectory(&sim), trajectory(&again));
    assert_eq!(sim.classical_stats(), again.classical_stats());
}
