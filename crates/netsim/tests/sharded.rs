//! Sharded-engine equivalence: a `shards(n)` run must reproduce the
//! single-queue engine's trajectory **bit-identically** — same event
//! trace, same deliveries (oracle fidelities compared bit-exact), same
//! `events_processed`, same final clock — while additionally reporting
//! epoch/mailbox statistics. This is the verification gate of the
//! conservative-lookahead sharding: any divergence means the per-shard
//! queues reordered something the global `(time, seq)` order forbids.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_routing::{dumbbell, wide_dumbbell, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn keep(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// The determinism-suite workload (two circuits, three requests over
/// the dumbbell bottleneck), on the engine selected by `shards`.
fn run_scenario(seed: u64, shards: Option<usize>) -> NetSim {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut builder = NetworkBuilder::new(topology).seed(seed).with_trace();
    if let Some(n) = shards {
        builder = builder.shards(n);
    }
    let mut sim = builder.build();
    let vc0 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .expect("plan a0-b0");
    let vc1 = sim
        .open_circuit(d.a1, d.b1, 0.8, CutoffPolicy::short())
        .expect("plan a1-b1");
    sim.submit_at(SimTime::ZERO, vc0, keep(1, d.a0, d.b0, 0.85, 3));
    sim.submit_at(SimTime::ZERO, vc1, keep(2, d.a1, d.b1, 0.8, 2));
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_secs(2),
        vc0,
        keep(3, d.a0, d.b0, 0.85, 1),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
    sim
}

/// Everything observable about a run, floats captured bit-exactly.
fn fingerprint(
    sim: &NetSim,
) -> (
    String,
    u64,
    u64,
    u64,
    Vec<(u64, u32, u64, u64, Option<u64>)>,
) {
    let deliveries = sim
        .app()
        .deliveries
        .iter()
        .map(|r| {
            (
                r.time.as_ps(),
                r.node.0,
                r.request.0,
                r.sequence,
                r.oracle_fidelity.map(f64::to_bits),
            )
        })
        .collect();
    (
        sim.trace().render(),
        sim.events_processed(),
        sim.discarded_pairs(),
        sim.now().as_ps(),
        deliveries,
    )
}

fn assert_same_trajectory(label: &str, sharded: &NetSim, single: &NetSim) {
    let fs = fingerprint(sharded);
    let fu = fingerprint(single);
    assert_eq!(fs.1, fu.1, "{label}: events_processed diverged");
    assert_eq!(fs.2, fu.2, "{label}: discard counts diverged");
    assert_eq!(fs.3, fu.3, "{label}: final clocks diverged");
    assert_eq!(fs.4, fu.4, "{label}: deliveries diverged");
    assert_eq!(fs.0, fu.0, "{label}: event traces diverged");
    assert!(!fs.4.is_empty(), "{label}: scenario must deliver pairs");
}

/// A 1-shard run is the degenerate case: one heap behind the epoch
/// machinery. It must match the plain engine exactly, including the
/// `events_processed` count, and still report shard statistics.
#[test]
fn one_shard_is_bit_identical_to_unsharded() {
    let single = run_scenario(2026, None);
    let sharded = run_scenario(2026, Some(1));
    assert_same_trajectory("1 shard", &sharded, &single);
    assert!(single.shard_stats().is_none(), "unsharded reports no stats");
    assert_eq!(single.shards(), 1);
    let stats = sharded.shard_stats().expect("sharded run reports stats");
    assert_eq!(stats.shards, 1);
    assert_eq!(
        stats.cross_shard_events, 0,
        "one shard has nowhere to cross to"
    );
    assert!(stats.epochs > 0, "the run advanced through epochs");
}

/// The real gate: a 4-shard run over the dumbbell (nodes split across
/// four regions, traffic crossing all of them) dispatches the exact
/// single-queue trajectory while the mailbox counters show genuine
/// cross-shard traffic.
#[test]
fn four_shards_reproduce_the_unsharded_trajectory() {
    let single = run_scenario(2026, None);
    let sharded = run_scenario(2026, Some(4));
    assert_same_trajectory("4 shards", &sharded, &single);
    let stats = sharded.shard_stats().expect("sharded run reports stats");
    assert_eq!(stats.shards, 4);
    assert!(stats.epochs > 0);
    assert!(
        stats.cross_shard_events > 0,
        "dumbbell traffic must cross shards: {stats:?}"
    );
    assert_eq!(
        stats.lookahead_violations, 0,
        "the channel lower bound must hold for inter-node messages: {stats:?}"
    );
}

/// Shard counts that do not divide the topology evenly (3 shards over
/// 6 nodes, 5 shards over a width-3 dumbbell's 8 nodes) are just as
/// bit-identical — the contiguous-range split has no even-divisor
/// special case.
#[test]
fn uneven_shard_counts_match_too() {
    let single = run_scenario(909, None);
    for shards in [2usize, 3, 5] {
        let sharded = run_scenario(909, Some(shards));
        assert_same_trajectory(&format!("{shards} shards"), &sharded, &single);
    }
}

/// The wider topology (more nodes, more RNG substreams, more circuits
/// contending) under a sharded engine: same trajectory, and the
/// mailbox digest is reproducible run-to-run.
#[test]
fn sharded_wide_dumbbell_matches_and_digest_reproduces() {
    let run = |shards: Option<usize>| {
        let (topology, w) = wide_dumbbell(3, HardwareParams::simulation(), FibreParams::lab_2m());
        let mut builder = NetworkBuilder::new(topology).seed(4043).with_trace();
        if let Some(n) = shards {
            builder = builder.shards(n);
        }
        let mut sim = builder.build();
        for (i, (head, tail)) in w.straight_pairs().into_iter().enumerate() {
            let vc = sim
                .open_circuit(head, tail, 0.8, CutoffPolicy::short())
                .expect("straight-across circuit plan must be feasible");
            sim.submit_at(SimTime::ZERO, vc, keep(i as u64 + 1, head, tail, 0.8, 2));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(12));
        sim
    };
    let single = run(None);
    let a = run(Some(4));
    let b = run(Some(4));
    assert_same_trajectory("wide 4 shards", &a, &single);
    let (sa, sb) = (a.shard_stats().unwrap(), b.shard_stats().unwrap());
    assert_eq!(sa, sb, "shard statistics must reproduce run-to-run");
    assert_ne!(
        sa.mailbox_digest, 0,
        "a run with cross-shard traffic leaves a digest"
    );
}
