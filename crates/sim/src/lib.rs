//! # qn-sim — deterministic discrete-event simulation core
//!
//! The simulation engine underlying the QNP reproduction (substitute for
//! the NetSquid engine used in the paper). Design goals, in order:
//!
//! 1. **Determinism** — integer picosecond clock, `(time, insertion)` event
//!    ordering, named RNG substreams. Same seed ⇒ same run, bit for bit.
//! 2. **Simplicity** — single-threaded, no async runtime, no trait-object
//!    event dispatch; the model is a plain state machine handling a typed
//!    event enum (the smoltcp philosophy applied to simulation).
//! 3. **Testability** — every piece is usable standalone; protocol cores in
//!    the higher crates never depend on this crate's engine, only on its
//!    time types.
//!
//! ## Example
//!
//! ```
//! use qn_sim::{Model, Context, Simulation, SimTime, SimDuration};
//!
//! struct Pinger { pongs: u32 }
//! enum Ev { Ping, Pong }
//!
//! impl Model for Pinger {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, ev: Ev, ctx: &mut Context<'_, Ev>) {
//!         match ev {
//!             Ev::Ping => { ctx.schedule_in(SimDuration::from_micros(5), Ev::Pong); }
//!             Ev::Pong => { self.pongs += 1; }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Pinger { pongs: 0 });
//! sim.schedule_at(SimTime::ZERO, Ev::Ping);
//! sim.run();
//! assert_eq!(sim.model().pongs, 1);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_micros(5));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod ids;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Context, Model, RunOutcome, Simulation};
pub use ids::{LinkId, NodeId};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use shard::{ShardStats, ShardedQueues, ShardedSimulation};
pub use stats::{OnlineStats, RateMeter, Samples};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceKind, TraceRow};
