//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Provides the harness surface used by `crates/bench/benches/micro.rs`:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched, iter_batched_ref}`, `BatchSize` and
//! `black_box`. Measurement is deliberately simple — warm up, then run
//! enough iterations to cover a fixed wall-clock window and report
//! mean/min/max per iteration as plain text. No statistics, plots or
//! HTML reports.
//!
//! One deliberate extension beyond the real criterion: `criterion_main!`
//! writes a JSON baseline (`<QNP_BASELINE_DIR>/<bench>.json`, default
//! `target/qnp-bench/`) in the same schema as the `qn_bench::report`
//! figure baselines, so `cargo run --example bench_diff` can track
//! micro-benchmark timings alongside the figure metrics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched setup amortises across iterations. The shim times every
/// routine invocation individually, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration timing sink handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    measure_window: Duration,
    warmup_iters: u64,
}

impl Bencher {
    fn new(measure_window: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            measure_window,
            warmup_iters: 3,
        }
    }

    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let window_start = Instant::now();
        while window_start.elapsed() < self.measure_window || self.samples.is_empty() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        let window_start = Instant::now();
        while window_start.elapsed() < self.measure_window || self.samples.is_empty() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// One completed benchmark's timing summary (nanoseconds/iteration).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// The `bench_function` id.
    pub id: String,
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_window: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let window_ms = std::env::var("QNP_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            measure_window: Duration::from_millis(window_ms),
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Parse harness CLI arguments (`cargo bench -- <filter>`); flags the
    /// real criterion accepts are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        self.filter = filter;
        self
    }

    /// Override the measurement window (API-compatible knob).
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measure_window = window;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher::new(self.measure_window);
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = *bencher.samples.iter().min().unwrap();
        let max = *bencher.samples.iter().max().unwrap();
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            bencher.samples.len()
        );
        self.results.push(BenchResult {
            id: id.to_string(),
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            max_ns: max.as_nanos() as f64,
            samples: bencher.samples.len(),
        });
        self
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Write `results` as a JSON baseline named `bench_name`, in the schema
/// of `qn_bench::report` (hand-rolled here: the shim cannot depend on
/// the workspace it serves). Timings are host-dependent wall-clock
/// noise, so every metric is declared `informational`: the baseline
/// differ reports movements but never classifies them as regressions —
/// a committed micro baseline documents a reference machine, it does
/// not gate CI. `wall_clock_s` (the whole bench run) lands in `meta`.
pub fn write_baseline(
    bench_name: &str,
    results: &[BenchResult],
    wall_clock_s: f64,
) -> std::io::Result<()> {
    // A name filter (`cargo bench --bench micro -- <substring>`) runs
    // only a subset; writing that subset would clobber the full
    // baseline and make every skipped benchmark diff as "missing".
    let filter_active = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && a != "benches");
    if filter_active {
        println!("# baseline skipped (benchmark name filter active)");
        return Ok(());
    }
    let dir = std::env::var_os("QNP_BASELINE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // Anchor at the workspace target dir: bench executables run
            // with the package dir as cwd, not the workspace root.
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/qnp-bench")
        });
    std::fs::create_dir_all(&dir)?;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"figure\": {:?},\n", bench_name));
    out.push_str("  \"config\": {},\n");
    out.push_str("  \"directions\": {\n");
    out.push_str("    \"mean_ns\": \"informational\",\n");
    out.push_str("    \"min_ns\": \"informational\",\n");
    out.push_str("    \"max_ns\": \"informational\",\n");
    out.push_str("    \"events_per_sec\": \"informational\",\n");
    out.push_str("    \"samples\": \"informational\"\n");
    out.push_str("  },\n");
    out.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Guard division and stay valid JSON ({:?} on NaN would emit a
        // bare `NaN` token the hand-rolled parser rejects).
        let events_per_sec = if r.mean_ns > 0.0 {
            1e9 / r.mean_ns
        } else {
            0.0
        };
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": {:?},\n", r.id));
        out.push_str("      \"metrics\": {\n");
        out.push_str(&format!("        \"mean_ns\": {:?},\n", r.mean_ns));
        out.push_str(&format!("        \"min_ns\": {:?},\n", r.min_ns));
        out.push_str(&format!("        \"max_ns\": {:?},\n", r.max_ns));
        out.push_str(&format!(
            "        \"events_per_sec\": {:?},\n",
            events_per_sec
        ));
        out.push_str(&format!("        \"samples\": {:?}\n", r.samples as f64));
        out.push_str("      }\n");
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"wall_clock_s\": {:?}\n", wall_clock_s));
    out.push_str("  }\n");
    out.push_str("}\n");
    let path = dir.join(format!("{bench_name}.json"));
    std::fs::write(&path, out)?;
    println!("# baseline: {}", path.display());
    Ok(())
}

/// Bundle benchmark functions into a group runner, as in real criterion.
/// The generated function returns the group's timing results so
/// `criterion_main!` can write the combined JSON baseline.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> ::std::vec::Vec<$crate::BenchResult> {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.results().to_vec()
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() -> ::std::vec::Vec<$crate::BenchResult> {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.results().to_vec()
        }
    };
}

/// Generate `fn main` running the given groups and writing the bench
/// target's JSON baseline (named after the invoking crate, i.e. the
/// bench target).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let wall_start = ::std::time::Instant::now();
            let mut all: ::std::vec::Vec<$crate::BenchResult> = ::std::vec::Vec::new();
            $( all.extend($group()); )+
            let wall_clock_s = wall_start.elapsed().as_secs_f64();
            if let Err(e) =
                $crate::write_baseline(env!("CARGO_CRATE_NAME"), &all, wall_clock_s)
            {
                eprintln!("warning: could not write bench baseline: {e}");
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            measure_window: Duration::from_millis(5),
            filter: None,
            results: Vec::new(),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.into_iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(!b.samples.is_empty());
    }
}
