//! End-to-end protocol-flow tests for the QNP state machines.
//!
//! A miniature deterministic "wire" harness drives a chain of
//! [`QnpNode`]s: messages hop instantly in FIFO order, swaps complete
//! with scripted outcomes, and the test injects link pairs by hand. No
//! simulator, no randomness — every Appendix C rule is exercised under
//! full control, including message orderings the event-driven runtime
//! would only produce rarely.

use qn_net::events::{AppEvent, Delivery, DeliveryKind, NetInput, NetOutput, PairInfo};
use qn_net::ids::{Address, CircuitId, Correlator, PairHandle, PairRef, RequestId};
use qn_net::request::{Demand, RequestType, UserRequest};
use qn_net::routing_table::{DownstreamHop, LinkSide, RoutingEntry, UpstreamHop};
use qn_net::QnpNode;
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_sim::NodeId;
use std::collections::{HashMap, VecDeque};

const VC: CircuitId = CircuitId(1);

/// Pending physical operations the harness "hardware" owes the nodes.
#[derive(Debug)]
struct PendingSwap {
    node: usize,
    up: Correlator,
    down: Correlator,
}

struct Harness {
    nodes: Vec<QnpNode>,
    queue: VecDeque<(usize, NetInput)>,
    /// Scripted Bell outcomes for swaps, consumed in order.
    swap_outcomes: VecDeque<BellState>,
    pending_swaps: VecDeque<PendingSwap>,
    /// Auto-complete swaps as soon as they start.
    auto_swap: bool,
    /// Pending measurements (node, pair, basis).
    pending_measures: VecDeque<(usize, PairRef, Pauli)>,
    auto_measure: Option<bool>,
    // Observed effects.
    deliveries: Vec<(usize, Delivery)>,
    notifications: Vec<(usize, AppEvent)>,
    discards: Vec<(usize, PairRef)>,
    link_submits: Vec<(usize, LinkSide)>,
    link_stops: Vec<(usize, LinkSide)>,
    armed_cutoffs: HashMap<Correlator, (usize, LinkSide)>,
    sent_messages: Vec<(usize, &'static str)>,
    next_seq: u64,
    next_handle: u64,
}

impl Harness {
    /// A linear circuit over `n` nodes (node ids 0..n-1, head = 0).
    fn chain(n: usize) -> Self {
        let mut nodes: Vec<QnpNode> = (0..n).map(|i| QnpNode::new(NodeId(i as u32))).collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            let upstream = (i > 0).then(|| UpstreamHop {
                node: NodeId((i - 1) as u32),
                label: qn_link::LinkLabel((i - 1) as u32),
            });
            let downstream = (i + 1 < n).then(|| DownstreamHop {
                node: NodeId((i + 1) as u32),
                label: qn_link::LinkLabel(i as u32),
                min_fidelity: 0.95,
                max_lpr: 50.0,
            });
            let entry = RoutingEntry {
                circuit: VC,
                upstream,
                downstream,
                max_eer: 10.0,
                cutoff: qn_sim::SimDuration::from_millis(100),
            };
            let outs = node.handle(NetInput::InstallCircuit { entry });
            assert!(outs.is_empty(), "install produces no effects");
        }
        Harness {
            nodes,
            queue: VecDeque::new(),
            swap_outcomes: VecDeque::new(),
            pending_swaps: VecDeque::new(),
            auto_swap: true,
            pending_measures: VecDeque::new(),
            auto_measure: None,
            deliveries: Vec::new(),
            notifications: Vec::new(),
            discards: Vec::new(),
            link_submits: Vec::new(),
            link_stops: Vec::new(),
            armed_cutoffs: HashMap::new(),
            sent_messages: Vec::new(),
            next_seq: 0,
            next_handle: 0,
        }
    }

    fn submit_request(&mut self, req: UserRequest) {
        self.queue.push_back((
            0,
            NetInput::UserRequest {
                circuit: VC,
                request: req,
            },
        ));
        self.drive();
    }

    /// Inject a link pair on link (i, i+1) of the chain.
    fn link_pair(&mut self, link: usize, announced: BellState) -> PairRef {
        let corr = Correlator {
            node_a: NodeId(link as u32),
            node_b: NodeId((link + 1) as u32),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let pair = PairRef {
            correlator: corr,
            handle: PairHandle(self.next_handle),
        };
        self.next_handle += 1;
        let info = PairInfo { pair, announced };
        self.queue.push_back((
            link,
            NetInput::LinkPair {
                circuit: VC,
                side: LinkSide::Downstream,
                info,
            },
        ));
        self.queue.push_back((
            link + 1,
            NetInput::LinkPair {
                circuit: VC,
                side: LinkSide::Upstream,
                info,
            },
        ));
        self.drive();
        pair
    }

    fn fire_cutoff(&mut self, corr: Correlator) {
        let (node, side) = self
            .armed_cutoffs
            .remove(&corr)
            .expect("cutoff must be armed");
        self.queue.push_back((
            node,
            NetInput::CutoffExpired {
                circuit: VC,
                side,
                correlator: corr,
            },
        ));
        self.drive();
    }

    fn complete_next_swap(&mut self) {
        let swap = self.pending_swaps.pop_front().expect("a swap is pending");
        let outcome = self
            .swap_outcomes
            .pop_front()
            .unwrap_or(BellState::PHI_PLUS);
        let handle = PairHandle(1_000_000 + self.next_handle);
        self.next_handle += 1;
        self.queue.push_back((
            swap.node,
            NetInput::SwapCompleted {
                circuit: VC,
                up: swap.up,
                down: swap.down,
                outcome,
                new_handle: handle,
            },
        ));
        self.drive();
    }

    fn complete_next_measure(&mut self, outcome: bool) {
        let (node, pair, _basis) = self
            .pending_measures
            .pop_front()
            .expect("a measurement is pending");
        self.queue.push_back((
            node,
            NetInput::MeasureCompleted {
                circuit: VC,
                correlator: pair.correlator,
                outcome,
            },
        ));
        self.drive();
    }

    fn drive(&mut self) {
        while let Some((node_idx, input)) = self.queue.pop_front() {
            let outs = self.nodes[node_idx].handle(input);
            for out in outs {
                self.process(node_idx, out);
            }
            // Auto-complete hardware ops if configured.
            if self.auto_swap {
                while !self.pending_swaps.is_empty() {
                    let swap = self.pending_swaps.pop_front().unwrap();
                    let outcome = self
                        .swap_outcomes
                        .pop_front()
                        .unwrap_or(BellState::PHI_PLUS);
                    let handle = PairHandle(1_000_000 + self.next_handle);
                    self.next_handle += 1;
                    self.queue.push_back((
                        swap.node,
                        NetInput::SwapCompleted {
                            circuit: VC,
                            up: swap.up,
                            down: swap.down,
                            outcome,
                            new_handle: handle,
                        },
                    ));
                }
            }
            if let Some(outcome) = self.auto_measure {
                while let Some((node, pair, _)) = self.pending_measures.pop_front() {
                    self.queue.push_back((
                        node,
                        NetInput::MeasureCompleted {
                            circuit: VC,
                            correlator: pair.correlator,
                            outcome,
                        },
                    ));
                }
            }
        }
    }

    fn process(&mut self, node_idx: usize, out: NetOutput) {
        match out {
            NetOutput::SendUpstream(msg) => {
                assert!(node_idx > 0, "head cannot send upstream");
                self.sent_messages.push((node_idx, msg.kind_name()));
                self.queue.push_back((
                    node_idx - 1,
                    NetInput::Message {
                        from_upstream: false,
                        msg,
                    },
                ));
            }
            NetOutput::SendDownstream(msg) => {
                assert!(
                    node_idx + 1 < self.nodes.len(),
                    "tail cannot send downstream"
                );
                self.sent_messages.push((node_idx, msg.kind_name()));
                self.queue.push_back((
                    node_idx + 1,
                    NetInput::Message {
                        from_upstream: true,
                        msg,
                    },
                ));
            }
            NetOutput::StartSwap { up, down } => {
                self.pending_swaps.push_back(PendingSwap {
                    node: node_idx,
                    up: up.correlator,
                    down: down.correlator,
                });
            }
            NetOutput::SetCutoff { pair, side, .. } => {
                self.armed_cutoffs.insert(pair.correlator, (node_idx, side));
            }
            NetOutput::CancelCutoff { pair } => {
                self.armed_cutoffs.remove(&pair.correlator);
            }
            NetOutput::MeasureNow { pair, basis } => {
                self.pending_measures.push_back((node_idx, pair, basis));
            }
            NetOutput::Deliver(d) => self.deliveries.push((node_idx, d)),
            NetOutput::Notify(ev) => self.notifications.push((node_idx, ev)),
            NetOutput::DiscardPair { pair } => self.discards.push((node_idx, pair)),
            NetOutput::LinkSubmit { side, .. } => self.link_submits.push((node_idx, side)),
            NetOutput::LinkStop { side, .. } => self.link_stops.push((node_idx, side)),
            NetOutput::LinkSetWeight { .. }
            | NetOutput::ApplyCorrection { .. }
            | NetOutput::TrackAcked { .. } => {}
        }
    }

    fn deliveries_at(&self, node: usize) -> Vec<&Delivery> {
        self.deliveries
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, d)| d)
            .collect()
    }
}

fn keep_request(id: u64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: NodeId(0),
            identifier: 10,
        },
        tail: Address {
            node: NodeId(3),
            identifier: 20,
        },
        min_fidelity: 0.8,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

#[test]
fn four_node_chain_delivers_pair_at_both_ends() {
    let mut h = Harness::chain(4);
    h.submit_request(keep_request(1, 1));
    // FORWARD propagated: head + both mids submit on their downstream link.
    assert_eq!(h.link_submits.len(), 3);
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestAccepted(RequestId(1)))));

    // Pairs appear on all three links (Fig 6's flow).
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_MINUS);
    h.link_pair(2, BellState::PSI_PLUS);

    // Both ends deliver exactly once.
    let head = h.deliveries_at(0);
    let tail = h.deliveries_at(3);
    assert_eq!(head.len(), 1, "head delivers one pair");
    assert_eq!(tail.len(), 1, "tail delivers one pair");

    // The tracked state must XOR-combine all announced states and swap
    // outcomes; auto-swaps used Φ+ (identity), so:
    let expected = BellState::PSI_PLUS
        .combine(BellState::PSI_MINUS, BellState::PHI_PLUS)
        .combine(BellState::PSI_PLUS, BellState::PHI_PLUS);
    for d in head.iter().chain(tail.iter()) {
        match d.kind {
            DeliveryKind::Qubit { state, .. } => assert_eq!(state, expected),
            _ => panic!("KEEP delivers qubits"),
        }
        assert_eq!(d.request, RequestId(1));
        assert_eq!(d.sequence, 0);
    }
    // Addresses point at the right endpoints.
    assert_eq!(
        head[0].address,
        Address {
            node: NodeId(0),
            identifier: 10
        }
    );
    assert_eq!(
        tail[0].address,
        Address {
            node: NodeId(3),
            identifier: 20
        }
    );

    // Request completed at the head; COMPLETE reached everyone; links stop.
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestCompleted(RequestId(1)))));
    assert_eq!(h.link_stops.len(), 3, "all three links stopped");
}

#[test]
fn both_ends_same_state_with_random_swap_outcomes() {
    // Scripted non-identity outcomes: both ends must still report the
    // same (correct) Bell state.
    let mut h = Harness::chain(4);
    h.swap_outcomes = VecDeque::from(vec![BellState::PSI_MINUS, BellState::PHI_MINUS]);
    h.submit_request(keep_request(1, 1));
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    h.link_pair(2, BellState::PSI_MINUS);

    let states: Vec<BellState> = h
        .deliveries
        .iter()
        .map(|(_, d)| match d.kind {
            DeliveryKind::Qubit { state, .. } => state,
            _ => panic!(),
        })
        .collect();
    assert_eq!(states.len(), 2);
    assert_eq!(states[0], states[1], "ends must agree on the Bell state");
    let expected = BellState::PSI_PLUS
        .combine(BellState::PSI_PLUS, BellState::PSI_MINUS)
        .combine(BellState::PSI_MINUS, BellState::PHI_MINUS);
    assert_eq!(states[0], expected);
}

#[test]
fn track_before_swap_waits_for_swap_record() {
    // Disable auto-swap: pairs on links 0 and 2 arrive and send TRACKs
    // through node 1/2 before any swap happens.
    let mut h = Harness::chain(4);
    h.auto_swap = false;
    h.submit_request(keep_request(1, 1));
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(2, BellState::PSI_PLUS);
    assert!(h.deliveries.is_empty());
    // Now the middle link pair arrives; swaps become possible.
    h.link_pair(1, BellState::PSI_PLUS);
    assert!(h.deliveries.is_empty(), "swaps still pending");
    h.complete_next_swap();
    h.complete_next_swap();
    assert_eq!(h.deliveries.len(), 2, "both ends deliver after swaps");
}

#[test]
fn swap_serialisation_one_at_a_time() {
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    h.submit_request(keep_request(1, 2));
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    // Only one swap may start although two matches exist.
    assert_eq!(h.pending_swaps.len(), 1);
    h.complete_next_swap();
    // Completion triggers the next one.
    assert_eq!(h.pending_swaps.len(), 1);
    h.complete_next_swap();
    assert_eq!(h.deliveries.len(), 4, "two pairs × two ends");
}

#[test]
fn cutoff_discard_generates_expire_and_frees_both_ends() {
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    h.submit_request(keep_request(1, 1));
    // Pair on link 0 only; the repeater (node 1) holds a qubit with a
    // cutoff armed; both end TRACKs … head's TRACK sits at node 1.
    let pair = h.link_pair(0, BellState::PSI_PLUS);
    assert!(h.armed_cutoffs.contains_key(&pair.correlator));
    // Cutoff fires: node 1 discards and (TRACK already arrived) bounces
    // EXPIRE back to the head.
    h.fire_cutoff(pair.correlator);
    // Node 1 discarded its view of the pair; the head discarded its end.
    assert_eq!(h.discards.len(), 2);
    assert!(h.discards.iter().any(|(n, _)| *n == 1));
    assert!(h.discards.iter().any(|(n, _)| *n == 0));
    // Chain can still complete afterwards with fresh pairs.
    h.auto_swap = true;
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    assert_eq!(h.deliveries.len(), 2);
}

#[test]
fn cutoff_before_track_uses_discard_record() {
    // The discard record path of Algorithm 9/8: the qubit expires before
    // the TRACK arrives (possible with slow control planes).
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    h.submit_request(keep_request(1, 1));

    // Build the pair by hand so we can delay the head's LINK rule (and
    // therefore its TRACK) until after the cutoff fired at node 1.
    let corr = Correlator {
        node_a: NodeId(0),
        node_b: NodeId(1),
        seq: 999,
    };
    let pair = PairRef {
        correlator: corr,
        handle: PairHandle(999),
    };
    let info = PairInfo {
        pair,
        announced: BellState::PSI_PLUS,
    };
    // Node 1 (repeater) learns of the pair first.
    h.queue.push_back((
        1,
        NetInput::LinkPair {
            circuit: VC,
            side: LinkSide::Upstream,
            info,
        },
    ));
    h.drive();
    // Cutoff fires before the head's TRACK exists anywhere.
    h.fire_cutoff(corr);
    assert_eq!(h.discards.len(), 1, "repeater discarded only");
    // Now the head processes its link pair and sends its TRACK; node 1
    // must convert it into an EXPIRE (via the discard record).
    h.queue.push_back((
        0,
        NetInput::LinkPair {
            circuit: VC,
            side: LinkSide::Downstream,
            info,
        },
    ));
    h.drive();
    assert_eq!(h.discards.len(), 2, "head freed its end after EXPIRE");
    assert!(h
        .sent_messages
        .iter()
        .any(|(n, k)| *n == 1 && *k == "EXPIRE"));
}

#[test]
fn measure_request_withholds_result_until_track() {
    let mut h = Harness::chain(3);
    h.auto_swap = true;
    h.auto_measure = None; // manual measurement completion
    let mut req = keep_request(1, 1);
    req.request_type = RequestType::Measure(Pauli::Z);
    h.submit_request(req);

    h.link_pair(0, BellState::PSI_PLUS);
    // Only the head saw a pair so far; it issued MeasureNow.
    assert_eq!(h.pending_measures.len(), 1);
    h.link_pair(1, BellState::PSI_PLUS);
    // The tail's pair arrived too; its MeasureNow is pending as well.
    assert_eq!(h.pending_measures.len(), 2);
    // Swap done, TRACKs delivered — but the outcomes are missing, so no
    // delivery yet ("the result is withheld until the tracking messages
    // arrive").
    assert!(h.deliveries.is_empty());
    h.complete_next_measure(true);
    h.complete_next_measure(false);
    assert_eq!(h.deliveries.len(), 2);
    for (_, d) in &h.deliveries {
        match d.kind {
            DeliveryKind::Measurement { basis, .. } => assert_eq!(basis, Pauli::Z),
            _ => panic!("MEASURE requests deliver measurement outcomes"),
        }
    }
}

#[test]
fn measure_outcome_before_track_also_works() {
    let mut h = Harness::chain(3);
    h.auto_swap = false; // keep the TRACKs stuck at the repeater
    h.auto_measure = None;
    let mut req = keep_request(1, 1);
    req.request_type = RequestType::Measure(Pauli::X);
    h.submit_request(req);
    h.link_pair(0, BellState::PSI_PLUS);
    // Outcomes arrive while the swap (and thus TRACK forwarding) is stuck.
    h.complete_next_measure(true);
    assert!(h.deliveries.is_empty());
    h.link_pair(1, BellState::PSI_PLUS);
    h.complete_next_measure(false);
    assert!(h.deliveries.is_empty(), "swap still pending");
    h.auto_swap = true;
    h.complete_next_swap();
    assert_eq!(h.deliveries.len(), 2);
}

#[test]
fn early_request_delivers_qubit_immediately() {
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    let mut req = keep_request(1, 1);
    req.request_type = RequestType::Early;
    h.submit_request(req);
    h.link_pair(0, BellState::PSI_PLUS);
    // Head and tail … only the head's link has a pair; the head delivered
    // the qubit early, the tail has nothing yet.
    let head = h.deliveries_at(0);
    assert_eq!(head.len(), 1);
    assert!(matches!(head[0].kind, DeliveryKind::EarlyQubit { .. }));
    // Tracking confirmation arrives after the swap.
    h.link_pair(1, BellState::PSI_PLUS);
    h.complete_next_swap();
    let head = h.deliveries_at(0);
    assert_eq!(head.len(), 2);
    assert!(matches!(head[1].kind, DeliveryKind::EarlyTracking { .. }));
}

#[test]
fn early_pair_expiry_notifies_app_instead_of_discarding() {
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    let mut req = keep_request(1, 1);
    req.request_type = RequestType::Early;
    h.submit_request(req);
    let pair = h.link_pair(0, BellState::PSI_PLUS);
    assert_eq!(h.deliveries_at(0).len(), 1, "early qubit handed out");
    h.fire_cutoff(pair.correlator);
    // The head must NOT discard a qubit the app owns; it notifies instead.
    assert!(h.discards.iter().all(|(n, _)| *n != 0));
    assert!(h.notifications.iter().any(|(n, ev)| *n == 0
        && matches!(ev, AppEvent::EarlyPairExpired { request, .. } if *request == RequestId(1))));
}

#[test]
fn final_state_correction_applied_at_head() {
    let mut h = Harness::chain(3);
    let mut req = keep_request(1, 1);
    req.final_state = Some(BellState::PHI_PLUS);
    h.submit_request(req);
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    // Both ends must report the corrected state.
    for (_, d) in &h.deliveries {
        match d.kind {
            DeliveryKind::Qubit { state, .. } => assert_eq!(state, BellState::PHI_PLUS),
            _ => panic!(),
        }
    }
    assert_eq!(h.deliveries.len(), 2);
}

#[test]
fn two_requests_aggregate_on_one_circuit() {
    let mut h = Harness::chain(3);
    h.submit_request(keep_request(1, 2));
    h.submit_request(keep_request(2, 2));
    for _ in 0..4 {
        h.link_pair(0, BellState::PSI_PLUS);
        h.link_pair(1, BellState::PSI_PLUS);
    }
    // All four chains delivered; both requests completed.
    assert_eq!(h.deliveries_at(0).len(), 4);
    assert_eq!(h.deliveries_at(2).len(), 4);
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestCompleted(RequestId(1)))));
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestCompleted(RequestId(2)))));
    // Sequence numbers are per request.
    let mut per_req: HashMap<RequestId, Vec<u64>> = HashMap::new();
    for d in h.deliveries_at(0) {
        per_req.entry(d.request).or_default().push(d.sequence);
    }
    for (_, seqs) in per_req {
        assert_eq!(seqs, vec![0, 1]);
    }
}

#[test]
fn head_and_tail_assign_consistently() {
    // With symmetric round-robin demux and clean in-order chains the
    // cross-check should pass every time: no discards at the end-nodes.
    let mut h = Harness::chain(3);
    h.submit_request(keep_request(1, 3));
    h.submit_request(keep_request(2, 3));
    for _ in 0..6 {
        h.link_pair(0, BellState::PSI_PLUS);
        h.link_pair(1, BellState::PSI_PLUS);
    }
    assert_eq!(h.deliveries.len(), 12);
    assert!(h.discards.is_empty(), "no cross-check failures expected");
}

#[test]
fn policing_rejects_and_shapes() {
    let mut h = Harness::chain(3);
    // max_eer = 10 in the harness.
    let mut r1 = keep_request(1, 100);
    r1.demand = Demand::Rate { pairs_per_sec: 8.0 };
    h.submit_request(r1);
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestAccepted(RequestId(1)))));

    let mut r2 = keep_request(2, 100);
    r2.demand = Demand::Rate { pairs_per_sec: 5.0 };
    h.submit_request(r2);
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestShaped(RequestId(2)))));

    let mut r3 = keep_request(3, 100);
    r3.demand = Demand::Rate {
        pairs_per_sec: 50.0,
    };
    h.submit_request(r3);
    assert!(h
        .notifications
        .iter()
        .any(|(n, ev)| *n == 0 && matches!(ev, AppEvent::RequestRejected(RequestId(3), _))));

    // Cancelling request 1 frees bandwidth; request 2 activates.
    h.queue.push_back((
        0,
        NetInput::CancelRequest {
            circuit: VC,
            request: RequestId(1),
        },
    ));
    h.drive();
    assert!(h
        .notifications
        .contains(&(0, AppEvent::RequestAccepted(RequestId(2)))));
}

#[test]
fn duplicate_request_id_rejected() {
    let mut h = Harness::chain(3);
    h.submit_request(keep_request(1, 5));
    h.submit_request(keep_request(1, 5));
    assert!(h
        .notifications
        .iter()
        .any(|(_, ev)| matches!(ev, AppEvent::RequestRejected(RequestId(1), _))));
}

#[test]
fn unsolicited_pairs_are_discarded() {
    // A pair arriving with no active requests must be released.
    let mut h = Harness::chain(3);
    h.submit_request(keep_request(1, 1));
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    let before = h.discards.len();
    // Request complete; the link keeps producing one more pair.
    h.link_pair(0, BellState::PSI_PLUS);
    assert!(h.discards.len() > before, "surplus pair must be discarded");
}

#[test]
fn teardown_aborts_and_notifies() {
    let mut h = Harness::chain(3);
    h.auto_swap = false;
    h.submit_request(keep_request(1, 2));
    h.link_pair(0, BellState::PSI_PLUS);
    h.queue
        .push_back((0, NetInput::TeardownCircuit { circuit: VC }));
    h.drive();
    assert!(h
        .notifications
        .iter()
        .any(|(n, ev)| *n == 0 && matches!(ev, AppEvent::CircuitDown(_))));
    // The head's in-transit pair was released.
    assert!(h.discards.iter().any(|(n, _)| *n == 0));
}

#[test]
fn two_node_circuit_single_link_works() {
    // Degenerate circuit: head and tail adjacent, no swaps at all.
    let mut h = Harness::chain(2);
    h.submit_request(UserRequest {
        tail: Address {
            node: NodeId(1),
            identifier: 20,
        },
        ..keep_request(1, 2)
    });
    h.link_pair(0, BellState::PSI_MINUS);
    h.link_pair(0, BellState::PSI_PLUS);
    assert_eq!(h.deliveries.len(), 4);
    // States delivered must equal the announced link states.
    let states: Vec<BellState> = h
        .deliveries
        .iter()
        .map(|(_, d)| match d.kind {
            DeliveryKind::Qubit { state, .. } => state,
            _ => panic!(),
        })
        .collect();
    assert!(states.contains(&BellState::PSI_MINUS));
    assert!(states.contains(&BellState::PSI_PLUS));
}

#[test]
fn five_node_chain_three_swaps() {
    let mut h = Harness::chain(5);
    h.swap_outcomes = VecDeque::from(vec![
        BellState::PHI_MINUS,
        BellState::PSI_PLUS,
        BellState::PSI_MINUS,
    ]);
    h.submit_request(UserRequest {
        tail: Address {
            node: NodeId(4),
            identifier: 20,
        },
        ..keep_request(1, 1)
    });
    let links = [
        BellState::PSI_PLUS,
        BellState::PSI_MINUS,
        BellState::PSI_PLUS,
        BellState::PSI_MINUS,
    ];
    for (i, b) in links.iter().enumerate() {
        h.link_pair(i, *b);
    }
    assert_eq!(h.deliveries.len(), 2);
    let states: Vec<BellState> = h
        .deliveries
        .iter()
        .map(|(_, d)| match d.kind {
            DeliveryKind::Qubit { state, .. } => state,
            _ => panic!(),
        })
        .collect();
    assert_eq!(states[0], states[1]);
}

#[test]
fn middle_link_expiry_breaks_only_the_affected_side() {
    // Four nodes; pairs exist on links 0 and 1 and have been swapped at
    // node 1, so a chain spans nodes 0..2. The pair on link 1 also has a
    // queued twin at node 2 (downstream side). When node 2's cutoff for
    // its upstream pair fires, the head-side chain must break (EXPIRE to
    // the head), while the tail side — which has no chain yet — is
    // unaffected and can still complete once fresh pairs arrive.
    let mut h = Harness::chain(4);
    h.auto_swap = true;
    h.submit_request(keep_request(1, 1));

    h.link_pair(0, BellState::PSI_PLUS);
    let p1 = h.link_pair(1, BellState::PSI_PLUS);
    // Swap happened at node 1 (auto); node 2 still holds its end of p1
    // in the upstream queue with a cutoff armed.
    assert!(h.armed_cutoffs.contains_key(&p1.correlator));
    let discards_before = h.discards.len();
    h.fire_cutoff(p1.correlator);
    // Node 2 discarded its end; the head's TRACK (waiting at node 2)
    // converts into an EXPIRE that travels to node 0 which frees its end.
    assert!(h.discards.len() >= discards_before + 2);
    assert!(h
        .sent_messages
        .iter()
        .any(|(n, k)| *n == 2 && *k == "EXPIRE"));
    assert!(h.deliveries.is_empty());

    // Fresh pairs on all three links complete the request.
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    h.link_pair(2, BellState::PSI_PLUS);
    assert_eq!(h.deliveries.len(), 2, "request completes after recovery");
}

#[test]
fn expire_relays_through_multiple_intermediates() {
    // Five-node chain; the tail-adjacent pair expires at node 3 after the
    // head's TRACK has travelled through nodes 1 and 2 (their swaps done).
    let mut h = Harness::chain(5);
    h.auto_swap = true;
    h.submit_request(UserRequest {
        tail: Address {
            node: NodeId(4),
            identifier: 20,
        },
        ..keep_request(1, 1)
    });
    h.link_pair(0, BellState::PSI_PLUS);
    h.link_pair(1, BellState::PSI_PLUS);
    let p = h.link_pair(2, BellState::PSI_PLUS);
    // Chain now spans nodes 0..3 (two swaps done); node 3 holds the end
    // of p with a cutoff armed, and the head's TRACK waits there.
    h.fire_cutoff(p.correlator);
    // The EXPIRE must traverse nodes 2 and 1 on its way to the head.
    let expire_hops: Vec<usize> = h
        .sent_messages
        .iter()
        .filter(|(_, k)| *k == "EXPIRE")
        .map(|(n, _)| *n)
        .collect();
    assert!(expire_hops.contains(&3), "origin of the EXPIRE");
    assert!(
        expire_hops.contains(&2) && expire_hops.contains(&1),
        "relay hops"
    );
    // The head freed its qubit.
    assert!(h.discards.iter().any(|(n, _)| *n == 0));
    assert!(h.deliveries.is_empty());
}
