//! Network-layer tests: model-based checking of the demultiplexer and
//! routing table, plus the shrinkable policer property.
//!
//! The old lock-step demux properties (two instances fed the same ops
//! stay synchronised) are replaced by the `qn_testkit` model test,
//! which is strictly stronger: two real demultiplexers agreeing with
//! each other could both be wrong, whereas the reference model
//! re-derives every observable — epoch counters, monotone activation,
//! auto-activation, round-robin assignment — from the specification.
//! Symmetry follows a fortiori: both ends are checked against the same
//! deterministic model.

use proptest::prelude::*;
use qn_net::ids::RequestId;
use qn_net::policing::Policer;
use qn_net::request::{Demand, RequestType, UserRequest};
use qn_net::Address;
use qn_sim::NodeId;
use qn_testkit::models::demux::DemuxSpec;
use qn_testkit::models::routing::RoutingSpec;
use qn_testkit::ModelTest;

/// Random add/remove/activate/assign sequences: the demultiplexer must
/// agree with the reference model on every epoch, active set and
/// assignment. Divergences shrink to a minimal operation sequence.
#[test]
fn demux_matches_reference_model() {
    ModelTest::new("net_demux_matches_model", DemuxSpec)
        .cases(192)
        .max_ops(64)
        .run();
}

/// Routing-table behaviour: install/uninstall/query sequences must
/// agree with the role truth table of paper §4.1.
#[test]
fn routing_table_matches_reference_model() {
    ModelTest::new("net_routing_table_matches_model", RoutingSpec)
        .cases(128)
        .max_ops(48)
        .run();
}

fn rate_request(id: u64, rate: f64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: NodeId(0),
            identifier: 0,
        },
        tail: Address {
            node: NodeId(1),
            identifier: 0,
        },
        min_fidelity: 0.8,
        demand: Demand::Rate {
            pairs_per_sec: rate,
        },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Policer invariant: the sum of admitted EERs never exceeds the
    /// circuit allocation, regardless of the admission/release sequence.
    #[test]
    fn admitted_bandwidth_never_exceeds_allocation(
        max_eer in 1.0f64..50.0,
        ops in proptest::collection::vec((0u8..3, 1u64..20, 1u32..200), 1..100),
    ) {
        let mut p = Policer::new(max_eer);
        let mut next_id = 1000u64;
        for (kind, id, rate_tenths) in ops {
            let rate = rate_tenths as f64 / 10.0;
            match kind {
                0 => {
                    next_id += 1;
                    let req = rate_request(next_id, rate);
                    match p.decide(&req) {
                        qn_net::AdmitDecision::Accept => p.admit(&req),
                        qn_net::AdmitDecision::Shape => p.shape(req),
                        qn_net::AdmitDecision::Reject(_) => {
                            prop_assert!(rate > max_eer + 1e-9);
                        }
                    }
                }
                1 => {
                    p.release(RequestId(id));
                    for r in p.admissible_shaped() {
                        prop_assert!(r.demand.min_eer() <= max_eer + 1e-9);
                    }
                }
                _ => {
                    for r in p.admissible_shaped() {
                        prop_assert!(r.demand.min_eer() <= max_eer + 1e-9);
                    }
                }
            }
            prop_assert!(
                p.total_eer() <= max_eer + 1e-6,
                "admitted {} over allocation {}",
                p.total_eer(),
                max_eer
            );
            prop_assert!(p.advertised_rate() <= max_eer + 1e-6);
        }
    }
}
