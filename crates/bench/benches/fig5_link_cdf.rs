//! **Figure 5** — CDF of the time to generate a link-pair of fidelity
//! 0.95 over a 2 m fibre with the simulation hardware parameters.
//!
//! Paper anchor: "on average we have to wait 10 ms and … 95 % of
//! link-pairs are generated within 30 ms."
//!
//! Run: `cargo bench --bench fig5_link_cdf` (knobs: `QNP_RUNS` samples,
//! default 5000; `QNP_THREADS` sweep workers).

use qn_bench::{env_u64, fig5_sweep, Baseline, Direction};
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_sim::Samples;

fn main() {
    let wall_start = std::time::Instant::now();
    let samples_n = env_u64("QNP_RUNS", 5_000);
    let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
    let fidelity = 0.95;
    let alpha = physics
        .alpha_for_fidelity(fidelity)
        .expect("0.95 attainable in the lab configuration");
    let p = physics.success_prob(alpha);
    let cycle = physics.cycle_time();

    println!("# Figure 5 — link-pair generation time CDF");
    println!("# fidelity {fidelity}, 2 m fibre, simulation parameters");
    println!(
        "# alpha = {alpha:.5}, p_succ/attempt = {p:.3e}, cycle = {:.3} us",
        cycle.as_micros_f64()
    );

    // Chunked sweep: each chunk draws its samples from its own RNG
    // substream, so the sample set is thread-count independent.
    let mut samples = Samples::new();
    for chunk_samples in fig5_sweep(250, samples_n, fidelity) {
        samples.extend(chunk_samples);
    }

    println!("#\n# time_ms   fraction_generated");
    for (t, q) in samples.cdf_points(40) {
        println!("{t:9.3}   {q:.4}");
    }
    let mean = samples.mean().unwrap();
    let p95 = samples.percentile(0.95).unwrap();
    let p50 = samples.median().unwrap();
    println!("#\n# mean   = {mean:7.2} ms   (paper: ≈10 ms)");
    println!("# median = {p50:7.2} ms");
    println!("# p95    = {p95:7.2} ms   (paper: ≈30 ms)");

    assert!(
        (5.0..20.0).contains(&mean),
        "mean drifted outside the Fig 5 anchor window"
    );
    assert!(
        (15.0..60.0).contains(&p95),
        "p95 drifted outside the Fig 5 anchor window"
    );
    println!("# shape check: PASS (geometric CDF, mean and p95 in anchor windows)");

    let mut baseline = Baseline::new("fig5_link_cdf")
        .config_num("samples", samples.len() as f64)
        .config_num("fidelity", fidelity)
        .direction("mean_ms", Direction::LowerIsBetter)
        .direction("median_ms", Direction::LowerIsBetter)
        .direction("p95_ms", Direction::LowerIsBetter);
    baseline.point(
        "link_generation_time",
        &[("mean_ms", mean), ("median_ms", p50), ("p95_ms", p95)],
    );
    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
