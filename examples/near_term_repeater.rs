//! The paper's §5.3 scenario: entanglement delivery on **near-future
//! hardware** (Fig 11). Three nodes, 25 km telecom fibre between them,
//! one communication qubit per node, carbon storage with nuclear-spin
//! dephasing, manually populated routing tables, hand-tuned cutoff.
//!
//! ```sh
//! cargo run --release --example near_term_repeater
//! ```

use qnp::prelude::*;
use qnp::routing::chain;

fn main() {
    let topology = chain(
        3,
        HardwareParams::near_term(),
        FibreParams::telecom(25_000.0),
    );
    // One electron + two carbons per node; the repeater must shuffle
    // pairs into storage before serving its second link.
    let mut sim = NetworkBuilder::new(topology).seed(13).near_term(2).build();

    // "As our routing protocol does not work well in this environment we
    // manually populate the routing tables. We set the link-fidelities as
    // high as possible … and we tune the cutoff timer."
    let plan = CircuitPlan {
        path: vec![NodeId(0), NodeId(1), NodeId(2)],
        e2e_fidelity: 0.5, // "sufficient to demonstrate quantum entanglement"
        link_fidelity: 0.82,
        alpha: 0.1,
        cutoff: SimDuration::from_millis(1500),
        max_lpr: 5.0,
        max_eer: 1.0,
    };
    let vc = sim.install_plan(plan);
    sim.submit_at(
        SimTime::ZERO,
        vc,
        UserRequest {
            id: RequestId(1),
            head: Address {
                node: NodeId(0),
                identifier: 1,
            },
            tail: Address {
                node: NodeId(2),
                identifier: 1,
            },
            min_fidelity: 0.5,
            demand: Demand::Pairs {
                n: 10,
                deadline: None,
            },
            request_type: RequestType::Keep,
            final_state: None,
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));

    let app = sim.app();
    println!("# near-future hardware: 10 pairs over 2 × 25 km (Fig 11)");
    println!("# pair   arrival_s   oracle_fidelity");
    for (i, rec) in app
        .deliveries
        .iter()
        .filter(|r| r.node == NodeId(0))
        .enumerate()
    {
        println!(
            "{:6}   {:9.1}   {:.3}",
            i + 1,
            rec.time.as_secs_f64(),
            rec.oracle_fidelity.unwrap_or(f64::NAN)
        );
    }
    let n = app.confirmed_deliveries(vc, NodeId(0), SimTime::ZERO, SimTime::MAX);
    let f = app.mean_fidelity(vc, NodeId(0)).unwrap_or(f64::NAN);
    println!("#\n# delivered {n}/10 pairs, mean fidelity {f:.3} (requested 0.5)");
    println!("# discarded along the way: {}", sim.discarded_pairs());
    println!(
        "# the protocol remains functional on extremely limited hardware — the paper's §5.3 claim"
    );
}
