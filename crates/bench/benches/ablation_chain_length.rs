//! **Ablation** — path-length scaling.
//!
//! The paper motivates entanglement distillation (§4.3) by noting that
//! the fidelity loss of entanglement swapping "ultimately limits the
//! achievable path length". This sweep quantifies that limit in our
//! model: per-pair latency, the link-fidelity budget the routing
//! controller demands, and the point where a fixed end-to-end target
//! becomes infeasible.
//!
//! Run: `cargo bench --bench ablation_chain_length` (knob: `QNP_RUNS`).

use qn_bench::{keep_request, runs};
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_netsim::build::NetworkBuilder;
use qn_routing::{chain, Controller, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};

fn main() {
    let n_runs = runs(3);
    let fidelity = 0.8;
    println!("# Ablation — chain-length scaling at end-to-end F = {fidelity} (runs={n_runs})");
    println!("# nodes   links   link_F_budget   per_pair_latency_s   mean_fidelity");

    for n_nodes in [2usize, 3, 4, 5, 6] {
        let topology = chain(n_nodes, HardwareParams::simulation(), FibreParams::lab_2m());
        let controller = Controller::new(&topology, CutoffPolicy::short());
        let tail = NodeId(n_nodes as u32 - 1);
        let plan = match controller.plan(NodeId(0), tail, fidelity) {
            Ok(p) => p,
            Err(e) => {
                println!("{n_nodes:7}   {:5}   infeasible: {e}", n_nodes - 1);
                continue;
            }
        };
        let link_budget = plan.link_fidelity;
        let mut latency = 0.0;
        let mut latency_runs = 0usize;
        let mut fid = 0.0;
        let mut fid_runs = 0usize;
        let n_pairs = 8u64;
        for seed in 0..n_runs {
            let topology = chain(n_nodes, HardwareParams::simulation(), FibreParams::lab_2m());
            let mut sim = NetworkBuilder::new(topology).seed(7000 + seed).build();
            let vc = sim.install_plan(plan.clone());
            sim.submit_at(
                SimTime::ZERO,
                vc,
                keep_request(1, NodeId(0), tail, fidelity, n_pairs),
            );
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(300));
            let app = sim.app();
            if let Some(l) = app.request_latency(vc, qn_net::RequestId(1)) {
                latency += l.as_secs_f64() / n_pairs as f64;
                latency_runs += 1;
            }
            if let Some(f) = app.mean_fidelity(vc, NodeId(0)) {
                fid += f;
                fid_runs += 1;
            }
        }
        let latency = if latency_runs > 0 {
            latency / latency_runs as f64
        } else {
            f64::NAN
        };
        let fid = if fid_runs > 0 {
            fid / fid_runs as f64
        } else {
            f64::NAN
        };
        let n_links = n_nodes - 1;
        println!("{n_nodes:7}   {n_links:5}   {link_budget:13.4}   {latency:18.3}   {fid:13.4}");
    }
    println!("#\n# expected shape: the link budget climbs towards the hardware's");
    println!("# maximum as the chain grows; per-pair latency grows super-linearly;");
    println!("# past the feasibility wall only distillation (paper §4.3) helps.");
}
