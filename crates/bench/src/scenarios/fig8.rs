//! Fig 8 — circuit multiplexing latency.

use super::keep_request;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::CircuitId;
use qn_netsim::build::NetworkBuilder;
use qn_routing::{dumbbell, CutoffPolicy, Dumbbell};
use qn_sim::{NodeId, SimDuration, SimTime};

/// The circuit sets of the Fig 8 panels: 1, 2 or 4 circuits over the
/// dumbbell, all sharing the MA–MB bottleneck.
pub fn circuit_pairs(d: &Dumbbell, n_circuits: usize) -> Vec<(NodeId, NodeId)> {
    match n_circuits {
        1 => vec![(d.a0, d.b0)],
        2 => vec![(d.a0, d.b0), (d.a1, d.b1)],
        4 => vec![(d.a0, d.b0), (d.a1, d.b1), (d.a0, d.b1), (d.a1, d.b0)],
        _ => panic!("Fig 8 uses 1, 2 or 4 circuits"),
    }
}

/// Result of one Fig 8 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Point {
    /// Mean latency of the completed A0-B0 requests, seconds.
    pub mean_latency: f64,
    /// Completed A0-B0 requests.
    pub completed: usize,
    /// A0-B0 requests issued.
    pub issued: usize,
}

/// Fig 8: `n_requests` simultaneous requests for `n_pairs` each, spread
/// round-robin over `n_circuits` circuits; returns the A0-B0 request
/// latency statistics.
pub fn fig8_scenario(
    seed: u64,
    n_circuits: usize,
    n_requests: usize,
    n_pairs: u64,
    fidelity: f64,
    cutoff: CutoffPolicy,
    horizon: SimDuration,
) -> Fig8Point {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(seed).build();
    let pairs = circuit_pairs(&d, n_circuits);
    let vcs: Vec<CircuitId> = pairs
        .iter()
        .map(|(h, t)| {
            sim.open_circuit(*h, *t, fidelity, cutoff)
                .expect("circuit plan must be feasible")
        })
        .collect();
    // Requests distributed round-robin (paper: "the circuit A0-B0 handles
    // the 1st and 5th requests …").
    let mut a0b0_requests = Vec::new();
    for i in 0..n_requests {
        let vc_idx = i % vcs.len();
        let (h, t) = pairs[vc_idx];
        let req = keep_request(i as u64 + 1, h, t, fidelity, n_pairs);
        if vc_idx == 0 {
            a0b0_requests.push(req.id);
        }
        sim.submit_at(SimTime::ZERO, vcs[vc_idx], req);
    }
    sim.run_until(SimTime::ZERO + horizon);
    let app = sim.app();
    let latencies: Vec<f64> = a0b0_requests
        .iter()
        .filter_map(|r| app.request_latency(vcs[0], *r))
        .map(|l| l.as_secs_f64())
        .collect();
    Fig8Point {
        mean_latency: if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        completed: latencies.len(),
        issued: a0b0_requests.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_single_circuit_single_request_completes() {
        let p = fig8_scenario(
            1,
            1,
            1,
            5,
            0.8,
            CutoffPolicy::short(),
            SimDuration::from_secs(60),
        );
        assert_eq!(p.completed, 1);
        assert!(p.mean_latency > 0.0 && p.mean_latency < 60.0);
    }
}
