//! Lightweight event tracing.
//!
//! Scenario code and examples record human-readable protocol events
//! (message sends, swaps, deliveries) through a [`Trace`]. The recorder is
//! deliberately simple: an in-memory list of `(time, category, text)` rows
//! that can be printed as a sequence log (used by `examples/sequence_trace`
//! to reproduce the paper's Fig 6).

use crate::time::SimTime;
use std::fmt;

/// Category of a trace row, used for filtering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Classical control message transmitted.
    Message,
    /// Quantum operation (swap, measurement, move).
    Quantum,
    /// Link-layer pair generated.
    LinkPair,
    /// Pair delivered to an application.
    Delivery,
    /// Qubit discarded (cutoff or expiry notification).
    Discard,
    /// Anything else.
    Info,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Message => "MSG",
            TraceKind::Quantum => "QOP",
            TraceKind::LinkPair => "LNK",
            TraceKind::Delivery => "DLV",
            TraceKind::Discard => "DSC",
            TraceKind::Info => "INF",
        };
        f.write_str(s)
    }
}

/// One recorded trace row.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// When the event happened.
    pub time: SimTime,
    /// Event category.
    pub kind: TraceKind,
    /// Node or component that produced the event.
    pub source: String,
    /// Human-readable description.
    pub text: String,
}

/// An in-memory trace recorder. Disabled recorders drop rows, so leaving
/// trace calls in hot paths is cheap for production runs.
#[derive(Debug, Default)]
pub struct Trace {
    rows: Vec<TraceRow>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace: records nothing.
    pub fn disabled() -> Self {
        Trace {
            rows: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            rows: Vec::new(),
            enabled: true,
        }
    }

    /// Whether rows are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a row (no-op when disabled).
    pub fn record(
        &mut self,
        time: SimTime,
        kind: TraceKind,
        source: impl Into<String>,
        text: impl Into<String>,
    ) {
        if self.enabled {
            self.rows.push(TraceRow {
                time,
                kind,
                source: source.into(),
                text: text.into(),
            });
        }
    }

    /// All recorded rows in order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Rows of a given kind.
    pub fn rows_of(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRow> {
        self.rows.iter().filter(move |r| r.kind == kind)
    }

    /// Render the trace as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let src_w = self
            .rows
            .iter()
            .map(|r| r.source.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for r in &self.rows {
            out.push_str(&format!(
                "{:>14}  {}  {:<w$}  {}\n",
                format!("{}", r.time),
                r.kind,
                r.source,
                r.text,
                w = src_w
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceKind::Info, "n0", "hello");
        assert!(t.rows().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, TraceKind::Message, "n0", "FORWARD");
        t.record(
            SimTime::ZERO + SimDuration::from_micros(3),
            TraceKind::Quantum,
            "n1",
            "SWAP",
        );
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].text, "FORWARD");
        assert_eq!(t.rows_of(TraceKind::Quantum).count(), 1);
    }

    #[test]
    fn render_contains_rows() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, TraceKind::Delivery, "alice", "pair #1");
        let s = t.render();
        assert!(s.contains("DLV"));
        assert!(s.contains("alice"));
        assert!(s.contains("pair #1"));
    }
}
