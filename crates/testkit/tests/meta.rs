//! Meta-tests of the model-based harness itself: deliberately-injected
//! protocol bugs must be *caught*, and the reported counterexample must
//! be a *minimal, reproducible* operation sequence (the PR's acceptance
//! demonstration for the shrinking engine + model harness).

use qn_testkit::models::demux::DemuxSpec;
use qn_testkit::models::link::{LinkFault, LinkOp, LinkSpec};
use qn_testkit::models::queue::QueueSpec;
use qn_testkit::models::routing::RoutingSpec;
use qn_testkit::models::slab::SlabSpec;
use qn_testkit::{run_ops, ModelFailure, ModelSpec, ModelTest};

/// Every op-drop from a reported minimal sequence must make the model
/// and system agree again — the definition of local minimality.
fn assert_locally_minimal<S: ModelSpec>(spec: &S, failure: &ModelFailure<S::Op>) {
    assert!(
        run_ops(spec, &failure.minimal).is_err(),
        "the minimal sequence must still diverge"
    );
    for drop in 0..failure.minimal.len() {
        let mut shorter = failure.minimal.clone();
        shorter.remove(drop);
        assert!(
            run_ops(spec, &shorter).is_ok(),
            "dropping op {drop} from the minimal sequence must remove the divergence; \
             sequence: {:?}",
            failure.minimal
        );
    }
}

#[test]
fn faithful_link_protocol_matches_its_model() {
    ModelTest::new("meta_faithful_link", LinkSpec::new())
        .cases(64)
        .run();
}

/// The acceptance scenario: a protocol that silently ignores COMPLETE
/// (stop) is caught, and the counterexample shrinks to exactly the two
/// operations that matter — submit a request, stop it.
#[test]
fn swallowed_stop_is_caught_with_minimal_counterexample() {
    let spec = LinkSpec::with_fault(LinkFault::SwallowStop);
    let test = ModelTest::new("meta_swallowed_stop", spec);
    let failure = test.check().expect_err("the injected bug must be caught");
    assert_eq!(
        failure.minimal.len(),
        2,
        "minimal sequence must be Submit + Stop, got: {:?}",
        failure.minimal
    );
    match (&failure.minimal[0], &failure.minimal[1]) {
        (LinkOp::Submit { label: a, .. }, LinkOp::Stop { label: b }) => {
            assert_eq!(a, b, "the stop must target the submitted request");
        }
        other => panic!("unexpected minimal sequence shape: {other:?}"),
    }
    assert!(failure.shrinks > 0, "the original sequence should shrink");
    assert_locally_minimal(&LinkSpec::with_fault(LinkFault::SwallowStop), &failure);
}

/// Dropped RequestDone lifecycle events shrink to: submit a 1-pair
/// request, drive one generation.
#[test]
fn dropped_request_done_is_caught_with_minimal_counterexample() {
    let spec = LinkSpec::with_fault(LinkFault::DropRequestDone);
    let failure = ModelTest::new("meta_dropped_done", spec)
        .check()
        .expect_err("the injected bug must be caught");
    assert_eq!(
        failure.minimal.len(),
        2,
        "minimal sequence must be Submit(count=1) + Drive, got: {:?}",
        failure.minimal
    );
    match (&failure.minimal[0], &failure.minimal[1]) {
        (LinkOp::Submit { count, .. }, LinkOp::Drive { .. }) => {
            assert_eq!(*count, Some(1), "demand must shrink to a single pair");
        }
        other => panic!("unexpected minimal sequence shape: {other:?}"),
    }
    assert_locally_minimal(&LinkSpec::with_fault(LinkFault::DropRequestDone), &failure);
}

/// An uncharged abort skews the fair-share schedule; the counterexample
/// needs two competing requests, one abort, and one drive to observe
/// the wrong label being scheduled.
#[test]
fn skipped_abort_charge_is_caught() {
    let spec = LinkSpec::with_fault(LinkFault::SkipAbortCharge);
    let failure = ModelTest::new("meta_skipped_charge", spec)
        .check()
        .expect_err("the injected bug must be caught");
    assert!(
        failure.minimal.len() <= 4,
        "Submit + Submit + Abort + Drive suffices, got: {:?}",
        failure.minimal
    );
    assert!(
        failure
            .minimal
            .iter()
            .any(|op| matches!(op, LinkOp::Abort { .. })),
        "the abort is essential: {:?}",
        failure.minimal
    );
    assert_locally_minimal(&LinkSpec::with_fault(LinkFault::SkipAbortCharge), &failure);
}

/// The harness is deterministic end to end: same spec + same test name
/// ⇒ the same generated sequences, the same divergence, and the same
/// minimised counterexample, run after run.
#[test]
fn failures_are_reproducible_across_runs() {
    let run = || {
        ModelTest::new(
            "meta_reproducible",
            LinkSpec::with_fault(LinkFault::SwallowStop),
        )
        .check()
        .expect_err("the injected bug must be caught")
    };
    let first = run();
    let second = run();
    assert_eq!(
        format!("{:?}", first.minimal),
        format!("{:?}", second.minimal),
        "minimal counterexamples must be identical across runs"
    );
    assert_eq!(first.message, second.message);
    assert_eq!(first.step, second.step);
    assert_eq!(
        format!("{:?}", first.original),
        format!("{:?}", second.original)
    );
}

/// A system under test that *panics* (rather than merely diverging) is
/// still caught, shrunk, and reported with a minimal sequence — the
/// crash-bug class must not escape the harness.
#[test]
fn panicking_systems_shrink_to_minimal_sequences() {
    use proptest::prelude::*;

    /// Ops increment a counter; the "system" crashes at 3.
    struct CrashSpec;

    impl ModelSpec for CrashSpec {
        type Op = u8;
        type Model = u32;
        type System = u32;

        fn new_model(&self) -> u32 {
            0
        }

        fn new_system(&self) -> u32 {
            0
        }

        fn op_strategy(&self) -> BoxedStrategy<u8> {
            (0u8..4).boxed()
        }

        fn apply(&self, model: &mut u32, system: &mut u32, _op: &u8) -> Result<(), String> {
            *model += 1;
            *system += 1;
            assert!(*system < 3, "system crashed at the third operation");
            Ok(())
        }
    }

    let failure = ModelTest::new("meta_panicking_system", CrashSpec)
        .check()
        .expect_err("the crash must surface as a divergence, not an unwind");
    assert_eq!(
        failure.minimal.len(),
        3,
        "three ops are needed to reach the crash: {:?}",
        failure.minimal
    );
    assert_eq!(failure.step, 2, "the third op is the one that crashes");
    assert!(
        failure.message.contains("panic: system crashed"),
        "message: {}",
        failure.message
    );
    assert_eq!(failure.minimal, vec![0, 0, 0], "ops shrink to minimum too");
}

/// The reference models themselves hold against the real
/// implementations (the faithful direction of every meta-test above).
#[test]
fn all_reference_models_agree_with_their_systems() {
    ModelTest::new("meta_queue_model", QueueSpec)
        .cases(64)
        .run();
    ModelTest::new("meta_demux_model", DemuxSpec)
        .cases(64)
        .run();
    ModelTest::new("meta_routing_model", RoutingSpec)
        .cases(64)
        .run();
    ModelTest::new("meta_slab_model", SlabSpec).cases(64).run();
}
