//! Property tests for the symmetric demultiplexer and the policer.

use proptest::prelude::*;
use qn_net::demux::SymmetricDemux;
use qn_net::ids::RequestId;
use qn_net::policing::Policer;
use qn_net::request::{Demand, RequestType, UserRequest};
use qn_net::Address;
use qn_sim::NodeId;

#[derive(Clone, Debug)]
enum DemuxOp {
    Add(u8),
    Remove(u8),
    ActivateLatest,
    Next,
}

fn demux_op() -> impl Strategy<Value = DemuxOp> {
    prop_oneof![
        (0u8..8).prop_map(DemuxOp::Add),
        (0u8..8).prop_map(DemuxOp::Remove),
        Just(DemuxOp::ActivateLatest),
        Just(DemuxOp::Next),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two demultiplexers fed the same operation sequence stay in
    /// lock-step — the symmetry property the protocol's cross-check
    /// relies on.
    #[test]
    fn identical_histories_stay_synchronised(ops in proptest::collection::vec(demux_op(), 1..200)) {
        let mut a = SymmetricDemux::new();
        let mut b = SymmetricDemux::new();
        for op in ops {
            match op {
                DemuxOp::Add(id) => {
                    prop_assert_eq!(
                        a.add_request(RequestId(id as u64)),
                        b.add_request(RequestId(id as u64))
                    );
                }
                DemuxOp::Remove(id) => {
                    prop_assert_eq!(
                        a.remove_request(RequestId(id as u64)),
                        b.remove_request(RequestId(id as u64))
                    );
                }
                DemuxOp::ActivateLatest => {
                    let e = a.latest();
                    a.activate(e);
                    b.activate(e);
                }
                DemuxOp::Next => {
                    prop_assert_eq!(a.next_request(), b.next_request());
                }
            }
            prop_assert_eq!(a.active(), b.active());
            prop_assert_eq!(a.active_set(), b.active_set());
        }
    }

    /// The active set only ever contains requests that were added and
    /// not yet removed *as of the active epoch*; assignments only name
    /// active-set members.
    #[test]
    fn assignments_come_from_the_active_set(ops in proptest::collection::vec(demux_op(), 1..150)) {
        let mut d = SymmetricDemux::new();
        for op in ops {
            match op {
                DemuxOp::Add(id) => { d.add_request(RequestId(id as u64)); }
                DemuxOp::Remove(id) => { d.remove_request(RequestId(id as u64)); }
                DemuxOp::ActivateLatest => { let e = d.latest(); d.activate(e); }
                DemuxOp::Next => {
                    let set: Vec<_> = d.active_set().to_vec();
                    if let Some(r) = d.next_request() {
                        prop_assert!(set.contains(&r), "assigned {r} outside active set");
                    } else {
                        prop_assert!(set.is_empty());
                    }
                }
            }
            prop_assert!(d.active() <= d.latest());
        }
    }
}

fn rate_request(id: u64, rate: f64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: NodeId(0),
            identifier: 0,
        },
        tail: Address {
            node: NodeId(1),
            identifier: 0,
        },
        min_fidelity: 0.8,
        demand: Demand::Rate {
            pairs_per_sec: rate,
        },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Policer invariant: the sum of admitted EERs never exceeds the
    /// circuit allocation, regardless of the admission/release sequence.
    #[test]
    fn admitted_bandwidth_never_exceeds_allocation(
        max_eer in 1.0f64..50.0,
        ops in proptest::collection::vec((0u8..3, 1u64..20, 1u32..200), 1..100),
    ) {
        let mut p = Policer::new(max_eer);
        let mut next_id = 1000u64;
        for (kind, id, rate_tenths) in ops {
            let rate = rate_tenths as f64 / 10.0;
            match kind {
                0 => {
                    next_id += 1;
                    let req = rate_request(next_id, rate);
                    match p.decide(&req) {
                        qn_net::AdmitDecision::Accept => p.admit(&req),
                        qn_net::AdmitDecision::Shape => p.shape(req),
                        qn_net::AdmitDecision::Reject(_) => {
                            prop_assert!(rate > max_eer + 1e-9);
                        }
                    }
                }
                1 => {
                    p.release(RequestId(id));
                    for r in p.admissible_shaped() {
                        prop_assert!(r.demand.min_eer() <= max_eer + 1e-9);
                    }
                }
                _ => {
                    for r in p.admissible_shaped() {
                        prop_assert!(r.demand.min_eer() <= max_eer + 1e-9);
                    }
                }
            }
            prop_assert!(
                p.total_eer() <= max_eer + 1e-6,
                "admitted {} over allocation {}",
                p.total_eer(),
                max_eer
            );
            prop_assert!(p.advertised_rate() <= max_eer + 1e-6);
        }
    }
}
