//! Pin the batched decoherence sweep (`PairStore::advance_all`) to the
//! lazy per-pair path (`PairStore::advance`):
//!
//! * same-time sweep vs per-pair advancement is **exact** under the
//!   Bell-diagonal representation (and pinned at 1e-12 under `dm` —
//!   in practice also exact, since both paths run the identical
//!   per-pair kernel);
//! * a sweep at an intermediate checkpoint followed by per-pair
//!   advancement composes with the direct path to within 1e-12 (the
//!   T1/T2 channels are divisible: `exp(-dt1/T) · exp(-dt2/T) =
//!   exp(-(dt1+dt2)/T)` up to rounding).

use proptest::collection::vec;
use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::pairs::{PairId, PairStore};
use qn_quantum::bell::BellState;
use qn_quantum::pairstate::StateRep;
use qn_sim::{NodeId, SimTime};

#[derive(Clone, Debug)]
struct PairSpec {
    t1: f64,
    t2: f64,
    bell: usize,
    created_ps: u64,
}

fn arb_pair() -> BoxedStrategy<PairSpec> {
    (
        0.5f64..3600.0,
        0.05f64..60.0,
        0usize..4,
        0u64..1_000_000_000,
    )
        .prop_map(|(t1, t2, bell, created_ps)| PairSpec {
            t1,
            t2,
            bell,
            created_ps,
        })
        .boxed()
}

fn build(rep: StateRep, specs: &[PairSpec]) -> (PairStore, Vec<PairId>) {
    let mut store = PairStore::with_rep(rep);
    let ids = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let bell = BellState::from_index(s.bell);
            store.create(
                SimTime::from_ps(s.created_ps),
                bell.density(),
                bell,
                [
                    (NodeId(0), QubitId(i as u32), s.t1, s.t2),
                    (NodeId(1), QubitId(i as u32), s.t1, s.t2),
                ],
            )
        })
        .collect();
    (store, ids)
}

fn fidelities(store: &mut PairStore, ids: &[PairId], now: SimTime) -> Vec<f64> {
    let mut out = Vec::new();
    for &id in ids {
        for b in 0..4 {
            out.push(store.fidelity_to(id, BellState::from_index(b), now));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One sweep to `now` == per-pair advancement to `now`: exact under
    /// `bell`, ≤ 1e-12 under `dm`.
    #[test]
    fn sweep_matches_per_pair_advancement(
        specs in vec(arb_pair(), 1..12),
        dt_ps in 1u64..5_000_000_000,
    ) {
        let now = SimTime::from_ps(1_000_000_000 + dt_ps);
        for rep in [StateRep::Bell, StateRep::Dm] {
            let (mut lazy, ids) = build(rep, &specs);
            let (mut swept, ids_b) = build(rep, &specs);
            prop_assert_eq!(&ids, &ids_b);
            for &id in &ids {
                lazy.advance(id, now);
            }
            swept.advance_all(now);
            let fa = fidelities(&mut lazy, &ids, now);
            let fb = fidelities(&mut swept, &ids, now);
            for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
                match rep {
                    StateRep::Bell => prop_assert_eq!(a, b, "bell rep must be exact (entry {})", i),
                    StateRep::Dm => prop_assert!((a - b).abs() <= 1e-12,
                        "dm entry {} diverged: {} vs {}", i, a, b),
                }
            }
        }
    }

    /// A sweep at an intermediate checkpoint composes with later
    /// advancement: the T1/T2 channels are divisible in time.
    #[test]
    fn sweep_checkpoint_composes_with_later_advancement(
        specs in vec(arb_pair(), 1..12),
        dt1_ps in 1u64..2_000_000_000,
        dt2_ps in 1u64..2_000_000_000,
    ) {
        let mid = SimTime::from_ps(1_000_000_000 + dt1_ps);
        let end = mid + qn_sim::SimDuration::from_ps(dt2_ps);
        for rep in [StateRep::Bell, StateRep::Dm] {
            let (mut direct, ids) = build(rep, &specs);
            let (mut stepped, _) = build(rep, &specs);
            stepped.advance_all(mid);
            stepped.advance_all(end);
            for &id in &ids {
                direct.advance(id, end);
            }
            let fa = fidelities(&mut direct, &ids, end);
            let fb = fidelities(&mut stepped, &ids, end);
            for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
                prop_assert!((a - b).abs() <= 1e-12,
                    "{:?} entry {} diverged: {} vs {}", rep, i, a, b);
            }
        }
    }
}
