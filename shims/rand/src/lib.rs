//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen` and
//! `gen_range`. The generator is xoshiro256++ seeded through splitmix64 —
//! deterministic, fast, and statistically strong enough for simulation
//! sampling and the moment-matching unit tests in `qn_sim`.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their full value range (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sampling within a range (the `SampleUniform` machinery of real
/// `rand`, collapsed to the one entry point the workspace uses).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty sampling range");
    // Lemire's widening-multiply method with rejection: unbiased.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Extension methods over any `RngCore` (the `Rng` trait of real `rand`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via
    /// splitmix64 so every 64-bit seed yields a well-mixed full state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
        }
        for _ in 0..1_000 {
            let x = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_centred() {
        let mut r = StdRng::seed_from_u64(13);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
