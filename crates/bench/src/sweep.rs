//! Sweep definitions: each figure's per-seed loop, hoisted out of the
//! bench targets and run through the `qn_exec` parallel engine.
//!
//! Every function here takes an explicit seed list and returns the
//! per-seed points **in seed order**; `qn_exec` guarantees the result is
//! bit-identical to the serial loop at any `QNP_THREADS`. Aggregation
//! (means over seeds) always folds in seed order for the same reason.

use crate::scenarios::{
    chain_point_scenario, cutoff_point_scenario, fig10ab_scenario, fig10c_scenario, fig11_scenario,
    fig8_scenario, fig9_scenario, wide_dumbbell_scenario, ChainPoint, CutoffPoint, Fig10Point,
    Fig10Variant, Fig10cPoint, Fig8Point, Fig9Point, WideDumbbellPoint,
};
use qn_exec::run_sweep;
use qn_hardware::device::QubitId;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::pairs::PairStore;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_hardware::StateRep;
use qn_routing::{CircuitPlan, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};

/// Read an env-var knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `QNP_RUNS` (seeds per configuration).
pub fn runs(default: u64) -> u64 {
    env_u64("QNP_RUNS", default)
}

/// `QNP_PAIRS` (pairs per request for Fig 8).
pub fn pairs(default: u64) -> u64 {
    env_u64("QNP_PAIRS", default)
}

/// `QNP_WIRE` — run wire-aware scenarios with `signalling_on_wire`
/// (link announcements + routing INSTALL/TEARDOWN as classical-plane
/// frames, acked and retransmitted). Off by default: the committed
/// baselines pin the idealised planes, so a `QNP_WIRE=1` run is
/// informational and must not be diffed against them.
pub fn wire_on() -> bool {
    env_u64("QNP_WIRE", 0) != 0
}

/// The consecutive seed block `base..base + n` every figure sweeps over.
pub fn seed_block(base: u64, n: u64) -> Vec<u64> {
    (base..base + n).collect()
}

/// Mean over the finite entries; NaN if none are finite.
pub fn mean_finite(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        if v.is_finite() {
            sum += v;
            count += 1;
        }
    }
    if count > 0 {
        sum / count as f64
    } else {
        f64::NAN
    }
}

/// One Fig 5 sample: the wall-clock wait for a heralded link-pair and
/// the oracle fidelity of the *previous* pair after idling in electron
/// memory for that wait (the steady-state link pipeline: each pair
/// waits for its successor before being consumed).
#[derive(Clone, Copy, Debug)]
pub struct Fig5Sample {
    /// Generation time of the pair (ms).
    pub time_ms: f64,
    /// Oracle fidelity to the announced Bell state after idling for
    /// `time_ms` with the simulation hardware's electron T1/T2.
    pub fidelity: f64,
}

/// Fig 5 sweep: the `total`-sample budget is split into chunks of
/// `chunk`, each drawing from its own RNG substream (chunk index =
/// sweep seed, computed here — unlike the figure sweeps there is no
/// meaningful external seed axis), so the sample set is independent of
/// the thread count. The last chunk draws only the remainder: exactly
/// `total` samples come back.
///
/// Each sample also drives the full quantum kernel — heralded-state
/// construction, T1/T2 memory decay, oracle fidelity — through the
/// representation selected by `QNP_QSTATE`, from a *separate* RNG
/// substream so the generation-time statistics stay bit-identical to
/// the pre-quantum-leg baselines.
pub fn fig5_sweep(chunk: u64, total: u64, fidelity: f64) -> Vec<Vec<Fig5Sample>> {
    let physics = LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m());
    let alpha = physics
        .alpha_for_fidelity(fidelity)
        .expect("fidelity attainable in the lab configuration");
    let p = physics.success_prob(alpha);
    let cycle_ms = physics.cycle_time().as_millis_f64();
    let rep = StateRep::from_env();
    let chunk_indices = seed_block(0, total.div_ceil(chunk));
    run_sweep(
        move |index: u64| {
            let mut rng = SimRng::substream_indexed(1, "fig5", index);
            let mut qrng = SimRng::substream_indexed(1, "fig5q", index);
            let mut store = PairStore::with_rep(rep);
            let params = *physics.params();
            let n = chunk.min(total.saturating_sub(index * chunk));
            (0..n)
                .map(|_| {
                    let time_ms = cycle_ms * rng.geometric(p) as f64;
                    let announced = physics.sample_announced(&mut qrng);
                    let state = physics.heralded_pair(alpha, announced, rep);
                    let id = store.create_pair(
                        SimTime::ZERO,
                        state,
                        announced,
                        [
                            (
                                NodeId(0),
                                QubitId(0),
                                params.electron_t1,
                                params.electron_t2,
                            ),
                            (
                                NodeId(1),
                                QubitId(0),
                                params.electron_t1,
                                params.electron_t2,
                            ),
                        ],
                    );
                    let idle = SimTime::ZERO + SimDuration::from_secs_f64(time_ms / 1e3);
                    let f = store.fidelity_to(id, announced, idle);
                    store.discard(id);
                    Fig5Sample {
                        time_ms,
                        fidelity: f,
                    }
                })
                .collect()
        },
        &chunk_indices,
    )
}

/// Fig 8 sweep: one multiplexing run per seed.
#[allow(clippy::too_many_arguments)]
pub fn fig8_sweep(
    seeds: &[u64],
    n_circuits: usize,
    n_requests: usize,
    n_pairs: u64,
    fidelity: f64,
    cutoff: CutoffPolicy,
    horizon: SimDuration,
) -> Vec<Fig8Point> {
    run_sweep(
        move |seed: u64| {
            fig8_scenario(
                seed, n_circuits, n_requests, n_pairs, fidelity, cutoff, horizon,
            )
        },
        seeds,
    )
}

/// Fig 9 sweep: one latency/throughput run per seed.
pub fn fig9_sweep(seeds: &[u64], congested: bool, interval: SimDuration) -> Vec<Fig9Point> {
    run_sweep(
        move |seed: u64| fig9_scenario(seed, congested, interval),
        seeds,
    )
}

/// Open-world workload sweep: one sustained-traffic run per seed.
pub fn openworld_sweep(
    seeds: &[u64],
    cfg: &crate::scenarios::OpenWorldConfig,
) -> Vec<crate::scenarios::OpenWorldPoint> {
    let cfg = cfg.clone();
    run_sweep(
        move |seed: u64| crate::scenarios::openworld_scenario(seed, &cfg),
        seeds,
    )
}

/// Chaos workload sweep: one component-fault churn run per seed.
pub fn chaos_sweep(
    seeds: &[u64],
    cfg: &crate::scenarios::ChaosConfig,
) -> Vec<crate::scenarios::ChaosPoint> {
    let cfg = cfg.clone();
    run_sweep(
        move |seed: u64| crate::scenarios::chaos_scenario(seed, &cfg),
        seeds,
    )
}

/// Fig 10a,b sweep: one decoherence run per seed.
pub fn fig10ab_sweep(seeds: &[u64], t2: f64, variant: Fig10Variant) -> Vec<Fig10Point> {
    run_sweep(move |seed: u64| fig10ab_scenario(seed, t2, variant), seeds)
}

/// Fig 10c sweep: one message-delay run per seed.
pub fn fig10c_sweep(seeds: &[u64], extra_delay: SimDuration) -> Vec<Fig10cPoint> {
    run_sweep(move |seed: u64| fig10c_scenario(seed, extra_delay), seeds)
}

/// Fig 11 sweep: one near-term run per seed.
pub fn fig11_sweep(seeds: &[u64], n_pairs: u64) -> Vec<(Vec<f64>, f64)> {
    run_sweep(move |seed: u64| fig11_scenario(seed, n_pairs), seeds)
}

/// Chain-length ablation sweep: one chain run per seed.
pub fn chain_sweep(
    seeds: &[u64],
    n_nodes: usize,
    plan: &CircuitPlan,
    fidelity: f64,
    n_pairs: u64,
    horizon: SimDuration,
) -> Vec<ChainPoint> {
    let plan = plan.clone();
    run_sweep(
        move |seed: u64| chain_point_scenario(seed, n_nodes, &plan, fidelity, n_pairs, horizon),
        seeds,
    )
}

/// Cutoff ablation sweep: one dumbbell run per seed.
pub fn cutoff_sweep(
    seeds: &[u64],
    t2: f64,
    plan: &CircuitPlan,
    horizon: SimDuration,
) -> Vec<CutoffPoint> {
    let plan = plan.clone();
    run_sweep(
        move |seed: u64| cutoff_point_scenario(seed, t2, &plan, horizon),
        seeds,
    )
}

/// Widened-dumbbell diversity sweep: one run per seed.
pub fn wide_dumbbell_sweep(
    seeds: &[u64],
    width: usize,
    n_pairs: u64,
    fidelity: f64,
    cutoff: CutoffPolicy,
    horizon: SimDuration,
) -> Vec<WideDumbbellPoint> {
    run_sweep(
        move |seed: u64| wide_dumbbell_scenario(seed, width, n_pairs, fidelity, cutoff, horizon),
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse() {
        assert_eq!(env_u64("QNP_NOT_SET_EVER", 7), 7);
    }

    #[test]
    fn seed_block_is_consecutive() {
        assert_eq!(seed_block(1000, 3), vec![1000, 1001, 1002]);
        assert!(seed_block(5, 0).is_empty());
    }

    #[test]
    fn mean_finite_skips_nan() {
        assert_eq!(mean_finite([1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean_finite([f64::NAN]).is_nan());
    }
}
