//! Network topology description used by the routing controller.

use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_sim::{LinkId, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One physical link of the network.
#[derive(Clone)]
pub struct LinkSpec {
    /// The link's identity.
    pub id: LinkId,
    /// Lower endpoint.
    pub a: NodeId,
    /// Upper endpoint.
    pub b: NodeId,
    /// The physics of the link (hardware + fibre).
    pub physics: LinkPhysics,
}

impl LinkSpec {
    /// The endpoint opposite `n`.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b);
            self.a
        }
    }
}

/// The network graph: nodes and links with their physics.
#[derive(Clone, Default)]
pub struct Topology {
    links: Vec<LinkSpec>,
    adjacency: BTreeMap<NodeId, Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link between `a` and `b` with the given physics. Node ids
    /// are implicit — any id mentioned by a link exists.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, physics: LinkPhysics) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { id, a, b, physics });
        self.adjacency.entry(a).or_default().push((b, id));
        self.adjacency.entry(b).or_default().push((a, id));
        id
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.adjacency.keys().copied().collect();
        set.into_iter().collect()
    }

    /// Links attached to a node, deterministic order.
    pub fn links_of(&self, n: NodeId) -> Vec<LinkId> {
        self.adjacency
            .get(&n)
            .map(|v| v.iter().map(|(_, l)| *l).collect())
            .unwrap_or_default()
    }

    /// The link joining `a` and `b`, if adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency
            .get(&a)?
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Shortest path by hop count (all links identical in the paper's
    /// evaluation). BFS with deterministic neighbour order.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for (next, _) in self.adjacency.get(&n).into_iter().flatten() {
                if *next == from || prev.contains_key(next) {
                    continue;
                }
                prev.insert(*next, n);
                if *next == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev.get(&cur) {
                        path.push(*p);
                        cur = *p;
                        if cur == from {
                            break;
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(*next);
            }
        }
        None
    }
}

/// Named handles for the paper's Fig 7 evaluation topology.
#[derive(Clone, Copy, Debug)]
pub struct Dumbbell {
    /// End-node A0.
    pub a0: NodeId,
    /// End-node A1.
    pub a1: NodeId,
    /// Router MA (A-side of the bottleneck).
    pub ma: NodeId,
    /// Router MB (B-side of the bottleneck).
    pub mb: NodeId,
    /// End-node B0.
    pub b0: NodeId,
    /// End-node B1.
    pub b1: NodeId,
}

/// Named handles for a widened dumbbell: `width` end-nodes per side
/// around the same MA–MB bottleneck (the scenario-diversity axis of the
/// sweep runner; `width = 2` is exactly the paper's Fig 7 topology).
#[derive(Clone, Debug)]
pub struct WideDumbbell {
    /// A-side end-nodes A0..A(width-1).
    pub ends_a: Vec<NodeId>,
    /// Router MA (A-side of the bottleneck).
    pub ma: NodeId,
    /// Router MB (B-side of the bottleneck).
    pub mb: NodeId,
    /// B-side end-nodes B0..B(width-1).
    pub ends_b: Vec<NodeId>,
}

impl WideDumbbell {
    /// End-nodes per side.
    pub fn width(&self) -> usize {
        self.ends_a.len()
    }

    /// The straight-across circuit endpoints (Ai, Bi).
    pub fn straight_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.ends_a
            .iter()
            .zip(&self.ends_b)
            .map(|(a, b)| (*a, *b))
            .collect()
    }
}

/// Build a dumbbell with `width` end-nodes per side: A0..Aw — MA — MB —
/// B0..Bw with identical links; MA–MB is the shared bottleneck. Node
/// ids: A-side ends first, then MA, MB, then the B-side ends (so
/// `width = 2` reproduces the Fig 7 numbering exactly).
pub fn wide_dumbbell(
    width: usize,
    params: HardwareParams,
    fibre: FibreParams,
) -> (Topology, WideDumbbell) {
    assert!(
        width >= 1,
        "a dumbbell needs at least one end-node per side"
    );
    let w = width as u32;
    let handles = WideDumbbell {
        ends_a: (0..w).map(NodeId).collect(),
        ma: NodeId(w),
        mb: NodeId(w + 1),
        ends_b: (0..w).map(|i| NodeId(w + 2 + i)).collect(),
    };
    let mut t = Topology::new();
    let phys = LinkPhysics::new(params, fibre);
    for a in &handles.ends_a {
        t.add_link(*a, handles.ma, phys.clone());
    }
    t.add_link(handles.ma, handles.mb, phys.clone());
    for b in &handles.ends_b {
        t.add_link(handles.mb, *b, phys.clone());
    }
    (t, handles)
}

/// Build the Fig 7 dumbbell: A0,A1 — MA — MB — B0,B1 with identical
/// links; MA–MB is the bottleneck.
pub fn dumbbell(params: HardwareParams, fibre: FibreParams) -> (Topology, Dumbbell) {
    let (t, wide) = wide_dumbbell(2, params, fibre);
    let handles = Dumbbell {
        a0: wide.ends_a[0],
        a1: wide.ends_a[1],
        ma: wide.ma,
        mb: wide.mb,
        b0: wide.ends_b[0],
        b1: wide.ends_b[1],
    };
    (t, handles)
}

/// Build a linear chain of `n` nodes with identical links (Fig 11 uses
/// `n = 3` with 25 km telecom fibre).
pub fn chain(n: usize, params: HardwareParams, fibre: FibreParams) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new();
    let phys = LinkPhysics::new(params, fibre);
    for i in 0..n - 1 {
        t.add_link(NodeId(i as u32), NodeId(i as u32 + 1), phys.clone());
    }
    t
}

/// Build a `w × h` grid of nodes with identical links. Node ids are
/// row-major (`NodeId(y * w + x)`), dense from 0 — a requirement of the
/// runtime's per-node dense tables — with links to the right and down
/// neighbours. Grids give the open-world workload engine a topology
/// with genuine path diversity and interior routers that serve four
/// links at once.
pub fn grid(w: usize, h: usize, params: HardwareParams, fibre: FibreParams) -> Topology {
    assert!(w >= 1 && h >= 1, "a grid needs at least one node");
    assert!(w * h >= 2, "a grid needs at least one link");
    let mut t = Topology::new();
    let phys = LinkPhysics::new(params, fibre);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                t.add_link(id(x, y), id(x + 1, y), phys.clone());
            }
            if y + 1 < h {
                t.add_link(id(x, y), id(x, y + 1), phys.clone());
            }
        }
    }
    t
}

/// Build a ring of `n` nodes with identical links — a topology with
/// genuine path choices (the shortest-path computation has to pick a
/// direction, and antipodal nodes have two equal-length candidates).
pub fn ring(n: usize, params: HardwareParams, fibre: FibreParams) -> Topology {
    assert!(n >= 3);
    let mut t = Topology::new();
    let phys = LinkPhysics::new(params, fibre);
    for i in 0..n {
        t.add_link(NodeId(i as u32), NodeId(((i + 1) % n) as u32), phys.clone());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> (HardwareParams, FibreParams) {
        (HardwareParams::simulation(), FibreParams::lab_2m())
    }

    #[test]
    fn dumbbell_shape() {
        let (p, f) = lab();
        let (t, d) = dumbbell(p, f);
        assert_eq!(t.links().len(), 5);
        assert_eq!(t.nodes().len(), 6);
        // A0 to B0 goes through MA and MB.
        let path = t.shortest_path(d.a0, d.b0).unwrap();
        assert_eq!(path, vec![d.a0, d.ma, d.mb, d.b0]);
        // The bottleneck link exists.
        assert!(t.link_between(d.ma, d.mb).is_some());
        assert!(t.link_between(d.a0, d.b0).is_none());
    }

    #[test]
    fn chain_paths() {
        let (p, f) = lab();
        let t = chain(5, p, f);
        let path = t.shortest_path(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(t.shortest_path(NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn no_path_between_disconnected() {
        let (p, f) = lab();
        let mut t = Topology::new();
        let phys = LinkPhysics::new(p, f);
        t.add_link(NodeId(0), NodeId(1), phys.clone());
        t.add_link(NodeId(2), NodeId(3), phys);
        assert!(t.shortest_path(NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn links_of_node() {
        let (p, f) = lab();
        let (t, d) = dumbbell(p, f);
        assert_eq!(t.links_of(d.ma).len(), 3);
        assert_eq!(t.links_of(d.a0).len(), 1);
    }

    #[test]
    fn ring_takes_the_short_way_around() {
        let (p, f) = lab();
        let t = ring(6, p, f);
        assert_eq!(t.links().len(), 6);
        // 0 -> 2: two hops clockwise beats four hops the other way.
        let path = t.shortest_path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(path.len(), 3);
        // 0 -> 3 is antipodal: either direction is 3 hops; the result
        // must be deterministic and length-3.
        let p1 = t.shortest_path(NodeId(0), NodeId(3)).unwrap();
        let p2 = t.shortest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 4);
    }

    #[test]
    fn wide_dumbbell_matches_fig7_at_width_2() {
        let (p, f) = lab();
        let (tw, w) = wide_dumbbell(2, p, f);
        let (td, d) = dumbbell(p, f);
        assert_eq!(tw.links().len(), td.links().len());
        for (lw, ld) in tw.links().iter().zip(td.links()) {
            assert_eq!((lw.a, lw.b), (ld.a, ld.b));
        }
        assert_eq!(w.straight_pairs(), vec![(d.a0, d.b0), (d.a1, d.b1)]);
    }

    #[test]
    fn wide_dumbbell_routes_through_the_bottleneck() {
        let (p, f) = lab();
        let (t, w) = wide_dumbbell(4, p, f);
        assert_eq!(t.nodes().len(), 10);
        assert_eq!(t.links().len(), 9);
        for (a, b) in w.straight_pairs() {
            let path = t.shortest_path(a, b).unwrap();
            assert_eq!(path, vec![a, w.ma, w.mb, b]);
        }
    }

    #[test]
    fn grid_shape_and_paths() {
        let (p, f) = lab();
        let t = grid(3, 3, p, f);
        assert_eq!(t.nodes().len(), 9);
        // 2 * w * h - w - h internal links.
        assert_eq!(t.links().len(), 12);
        // Node ids are dense row-major: every id in 0..9 appears.
        assert_eq!(
            t.nodes(),
            (0..9).map(NodeId).collect::<Vec<_>>(),
            "grid ids must be dense from 0 (runtime tables assume it)"
        );
        // Corner to corner is a 4-hop manhattan walk.
        let path = t.shortest_path(NodeId(0), NodeId(8)).unwrap();
        assert_eq!(path.len(), 5);
        // The centre serves four links.
        assert_eq!(t.links_of(NodeId(4)).len(), 4);
        // Degenerate 1 x n grid is a chain.
        let (p, f) = lab();
        let t = grid(1, 4, p, f);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.shortest_path(NodeId(0), NodeId(3)).unwrap().len(), 4);
    }

    #[test]
    fn routing_types_are_send() {
        // The qn_exec sweep runner moves topologies and plans across
        // worker threads; these bounds must never regress.
        fn is_send_sync<T: Send + Sync>() {}
        is_send_sync::<Topology>();
        is_send_sync::<LinkSpec>();
        is_send_sync::<Dumbbell>();
        is_send_sync::<WideDumbbell>();
        is_send_sync::<crate::CircuitPlan>();
        is_send_sync::<crate::CutoffPolicy>();
    }

    #[test]
    fn link_other_endpoint() {
        let (p, f) = lab();
        let (t, d) = dumbbell(p, f);
        let l = t.link_between(d.ma, d.mb).unwrap();
        assert_eq!(t.link(l).other(d.ma), d.mb);
        assert_eq!(t.link(l).other(d.mb), d.ma);
    }
}
