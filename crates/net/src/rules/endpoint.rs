//! End-node rules: head-end (Algorithms 1–3) and tail-end (Algorithms
//! 4–6) of Appendix C, plus FORWARD/COMPLETE request management.
//!
//! Head and tail share the LINK / TRACK / EXPIRE skeleton; the head-end
//! additionally polices and shapes requests, originates FORWARD and
//! COMPLETE, stamps and advances epochs, and applies Pauli corrections
//! for final-state requests.

use crate::events::{AppEvent, Delivery, DeliveryKind, NetOutput, PairInfo};
use crate::ids::{Address, CircuitId, Correlator, Epoch, RequestId};
use crate::messages::{Complete, Forward, Message, Track};
use crate::node::{Circuit, CircuitState, EndpointState, InTransit, NodeStats, ReqState};
use crate::policing::{link_weight, AdmitDecision};
use crate::request::{RequestType, UserRequest};
use crate::routing_table::{LinkSide, RoutingEntry};

/// The single link an end-node has: downstream at the head, upstream at
/// the tail.
pub(crate) fn own_link(entry: &RoutingEntry) -> (LinkSide, qn_link::LinkLabel) {
    match (&entry.downstream, &entry.upstream) {
        (Some(d), None) => (LinkSide::Downstream, d.label),
        (None, Some(u)) => (LinkSide::Upstream, u.label),
        _ => panic!("endpoint rules on a non-endpoint circuit"),
    }
}

fn ep(c: &mut Circuit) -> &mut EndpointState {
    match &mut c.state {
        CircuitState::Endpoint(ep) => ep,
        CircuitState::Mid(_) => panic!("endpoint rule on intermediate node"),
    }
}

/// Send towards the peer end-node: downstream from the head, upstream
/// from the tail.
fn send_along(is_head: bool, msg: Message) -> NetOutput {
    if is_head {
        NetOutput::SendDownstream(msg)
    } else {
        NetOutput::SendUpstream(msg)
    }
}

/// Register a request into the endpoint's tables (does not touch the
/// policer — admission happened already).
fn register_request(
    ep: &mut EndpointState,
    id: RequestId,
    head_identifier: u32,
    tail_identifier: u32,
    request_type: RequestType,
    final_state: Option<qn_quantum::BellState>,
    count: Option<u64>,
) {
    ep.requests.insert(
        id,
        ReqState {
            head_identifier,
            tail_identifier,
            request_type,
            final_state,
            count,
            delivered: 0,
            next_seq: 0,
            assigned: 0,
            completed: false,
        },
    );
    ep.demux.add_request(id);
}

/// Issue or update the link-layer request on the endpoint's single link
/// according to the advertised rate.
fn sync_link(entry: &RoutingEntry, ep: &mut EndpointState, out: &mut Vec<NetOutput>) {
    let (side, label) = own_link(entry);
    // Only the upstream endpoint of a link manages its generation; at the
    // tail-end the upstream *neighbour* owns the link, so the tail issues
    // no link commands.
    if !ep.is_head {
        return;
    }
    let down = entry.downstream.as_ref().expect("head has downstream");
    let rate = ep.policer.advertised_rate();
    if ep.policer.active_len() == 0 {
        if ep.link_submitted {
            out.push(NetOutput::LinkStop { side, label });
            ep.link_submitted = false;
        }
        return;
    }
    let weight = link_weight(down.max_lpr, entry.max_eer, rate);
    if ep.link_submitted {
        out.push(NetOutput::LinkSetWeight {
            side,
            label,
            weight,
        });
    } else {
        out.push(NetOutput::LinkSubmit {
            side,
            label,
            min_fidelity: down.min_fidelity,
            weight,
        });
        ep.link_submitted = true;
    }
}

/// Accept an admitted request at the head-end: register, FORWARD, sync
/// the link layer.
fn activate_request(
    circuit: CircuitId,
    entry: &RoutingEntry,
    ep: &mut EndpointState,
    req: &UserRequest,
    out: &mut Vec<NetOutput>,
) {
    ep.policer.admit(req);
    register_request(
        ep,
        req.id,
        req.head.identifier,
        req.tail.identifier,
        req.request_type,
        req.final_state,
        req.demand.count(),
    );
    sync_link(entry, ep, out);
    out.push(send_along(
        true,
        Message::Forward(Forward {
            circuit,
            request: req.id,
            head_identifier: req.head.identifier,
            tail_identifier: req.tail.identifier,
            request_type: req.request_type,
            number_of_pairs: req.demand.count(),
            final_state: req.final_state,
            rate: ep.policer.advertised_rate(),
        }),
    ));
    out.push(NetOutput::Notify(AppEvent::RequestAccepted(req.id)));
}

/// Head-end: a user request arrived (paper §4.1 "Policing and shaping").
pub(crate) fn user_request(
    circuit: CircuitId,
    c: &mut Circuit,
    req: UserRequest,
    out: &mut Vec<NetOutput>,
) {
    let entry = c.entry;
    let ep = ep(c);
    assert!(ep.is_head, "user requests enter at the head-end");
    if let Err(reason) = req.validate() {
        out.push(NetOutput::Notify(AppEvent::RequestRejected(req.id, reason)));
        return;
    }
    if ep.requests.contains_key(&req.id) {
        out.push(NetOutput::Notify(AppEvent::RequestRejected(
            req.id,
            "duplicate request id",
        )));
        return;
    }
    match ep.policer.decide(&req) {
        AdmitDecision::Reject(reason) => {
            out.push(NetOutput::Notify(AppEvent::RequestRejected(req.id, reason)));
        }
        AdmitDecision::Shape => {
            ep.policer.shape(req);
            out.push(NetOutput::Notify(AppEvent::RequestShaped(req.id)));
        }
        AdmitDecision::Accept => {
            activate_request(circuit, &entry, ep, &req, out);
        }
    }
}

/// Complete a request at the head-end: COMPLETE downstream, release
/// bandwidth, admit shaped requests that now fit.
fn finish_request(
    circuit: CircuitId,
    entry: &RoutingEntry,
    ep: &mut EndpointState,
    id: RequestId,
    out: &mut Vec<NetOutput>,
) {
    let Some(req) = ep.requests.get_mut(&id) else {
        return;
    };
    if req.completed {
        return;
    }
    req.completed = true;
    let head_identifier = req.head_identifier;
    let tail_identifier = req.tail_identifier;
    ep.demux.remove_request(id);
    ep.policer.release(id);
    sync_link(entry, ep, out);
    out.push(send_along(
        true,
        Message::Complete(Complete {
            circuit,
            request: id,
            head_identifier,
            tail_identifier,
            rate: ep.policer.advertised_rate(),
        }),
    ));
    out.push(NetOutput::Notify(AppEvent::RequestCompleted(id)));
    // Shaped requests may now fit (FIFO).
    for shaped in ep.policer.admissible_shaped() {
        // `admissible_shaped` already recorded admission in the policer;
        // register + FORWARD without double-admitting.
        register_request(
            ep,
            shaped.id,
            shaped.head.identifier,
            shaped.tail.identifier,
            shaped.request_type,
            shaped.final_state,
            shaped.demand.count(),
        );
        sync_link(entry, ep, out);
        out.push(send_along(
            true,
            Message::Forward(Forward {
                circuit,
                request: shaped.id,
                head_identifier: shaped.head.identifier,
                tail_identifier: shaped.tail.identifier,
                request_type: shaped.request_type,
                number_of_pairs: shaped.demand.count(),
                final_state: shaped.final_state,
                rate: ep.policer.advertised_rate(),
            }),
        ));
        out.push(NetOutput::Notify(AppEvent::RequestAccepted(shaped.id)));
    }
}

/// Head-end: application cancels a (rate-based) request.
pub(crate) fn cancel_request(
    circuit: CircuitId,
    c: &mut Circuit,
    id: RequestId,
    out: &mut Vec<NetOutput>,
) {
    let entry = c.entry;
    let ep = ep(c);
    if ep.is_head {
        finish_request(circuit, &entry, ep, id, out);
    }
}

/// LINK rule at an end-node (Algorithm 1 at the head, Algorithm 4 at the
/// tail): assign the fresh pair to a request, originate the TRACK
/// message, and for EARLY/MEASURE requests act on the qubit immediately.
pub(crate) fn link_rule(
    circuit: CircuitId,
    c: &mut Circuit,
    info: PairInfo,
    out: &mut Vec<NetOutput>,
) {
    let node = c.node;
    let ep = ep(c);
    let is_head = ep.is_head;

    // Pick the request this pair serves; skip requests that are already
    // fully assigned (bounded demand) — mirrors at both ends.
    let select = |ep: &mut EndpointState| -> Option<RequestId> {
        for _ in 0..ep.demux.active_set().len().max(1) {
            match ep.demux.next_request() {
                None => break,
                Some(id) => {
                    let full = ep
                        .requests
                        .get(&id)
                        .map(|r| r.completed || matches!(r.count, Some(n) if r.assigned >= n))
                        .unwrap_or(true);
                    if !full {
                        return Some(id);
                    }
                }
            }
        }
        None
    };
    let mut chosen = select(&mut *ep);
    if chosen.is_none() && ep.demux.active() < ep.demux.latest() {
        // Every request in the active epoch has finished locally but a
        // newer epoch exists (e.g. a fresh request arrived after the
        // previous one completed). Advance — the paper's epoch mechanism
        // only moves on TRACK deliveries, which cannot happen while no
        // pair is assignable; both ends apply this same deterministic
        // escape, and the TRACK cross-check cleans up any transient
        // disagreement.
        let latest = ep.demux.latest();
        ep.demux.activate(latest);
        chosen = select(&mut *ep);
    }
    let Some(req_id) = chosen else {
        // No request wants this pair (e.g. generation continuing while a
        // COMPLETE is in flight, or the active requests are fully
        // assigned): release the qubit AND log a discard record so the
        // peer's TRACK for this chain — if one ever arrives — is answered
        // with an EXPIRE instead of leaking the peer's assignment slot.
        out.push(NetOutput::DiscardPair { pair: info.pair });
        ep.discard_records.insert(info.pair.correlator);
        return;
    };
    let epoch = if is_head { ep.demux.latest() } else { Epoch(0) };
    let req = ep
        .requests
        .get_mut(&req_id)
        .expect("assigned request exists");
    req.assigned += 1;
    let track = Track {
        circuit,
        request: req_id,
        head_identifier: req.head_identifier,
        tail_identifier: req.tail_identifier,
        origin: info.pair.correlator,
        link: info.pair.correlator,
        outcome_state: info.announced,
        epoch: if is_head { Some(epoch) } else { None },
    };
    out.push(send_along(is_head, Message::Track(track)));

    let mut it = InTransit {
        request: req_id,
        pair: info.pair,
        epoch,
        delivered_early: false,
        awaiting_measure: false,
        measure_outcome: None,
        pending_track: None,
    };
    match req.request_type {
        RequestType::Keep => {}
        RequestType::Early => {
            let address = Address {
                node,
                identifier: if is_head {
                    req.head_identifier
                } else {
                    req.tail_identifier
                },
            };
            out.push(NetOutput::Deliver(Delivery {
                request: req_id,
                sequence: req.take_seq(),
                chain: None,
                address,
                kind: DeliveryKind::EarlyQubit {
                    pair: info.pair,
                    state: info.announced,
                },
            }));
            it.delivered_early = true;
        }
        RequestType::Measure(basis) => {
            out.push(NetOutput::MeasureNow {
                pair: info.pair,
                basis,
            });
            it.awaiting_measure = true;
        }
    }
    ep.in_transit.insert(info.pair.correlator, it);
}

/// TRACK rule at an end-node (Algorithm 2 at the head, Algorithm 5 at
/// the tail).
pub(crate) fn track_rule(
    circuit: CircuitId,
    c: &mut Circuit,
    track: Track,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let entry = c.entry;
    let node = c.node;
    let ep = ep(c);

    // MEASURE ordering: the TRACK may beat the readout completion.
    if let Some(it) = ep.in_transit.get_mut(&track.link) {
        if it.awaiting_measure && it.measure_outcome.is_none() {
            it.pending_track = Some(track);
            return;
        }
    }
    let Some(it) = ep.in_transit.remove(&track.link) else {
        // No in-transit entry. If we discarded this pair unassigned, the
        // chain is broken: bounce an EXPIRE back so the peer frees its
        // qubit (mirrors the repeater's discard-record rule). The record
        // is kept (bounded) so a duplicated TRACK re-bounces the EXPIRE
        // — a lost EXPIRE is then recovered by the next retransmission.
        if ep.discard_records.contains(&track.link) {
            out.push(send_along(
                ep.is_head,
                Message::Expire(crate::messages::Expire {
                    circuit,
                    origin: track.origin,
                }),
            ));
        } else {
            // Neither in-transit nor discarded: a duplicated TRACK
            // (already consumed) or a corrupted correlator. Absorb.
            stats.stale_tracks += 1;
        }
        return;
    };
    finish_delivery(circuit, &entry, node, ep, it, track, out);
}

/// MEASURE readout completed (runtime callback).
pub(crate) fn measure_completed(
    circuit: CircuitId,
    c: &mut Circuit,
    correlator: Correlator,
    outcome: bool,
    out: &mut Vec<NetOutput>,
) {
    let entry = c.entry;
    let node = c.node;
    let ep = ep(c);
    let Some(it) = ep.in_transit.get_mut(&correlator) else {
        return;
    };
    it.awaiting_measure = false;
    it.measure_outcome = Some(outcome);
    if it.pending_track.is_some() {
        let mut it = ep.in_transit.remove(&correlator).expect("present");
        let track = it.pending_track.take().expect("checked");
        finish_delivery(circuit, &entry, node, ep, it, track, out);
    }
}

/// Shared confirmation path: cross-check, epoch activation, correction,
/// delivery, completion accounting.
fn finish_delivery(
    circuit: CircuitId,
    entry: &RoutingEntry,
    node: qn_sim::NodeId,
    ep: &mut EndpointState,
    it: InTransit,
    track: Track,
    out: &mut Vec<NetOutput>,
) {
    let is_head = ep.is_head;

    // Epoch activation (paper §4.1 "Aggregation"): the head activates the
    // epoch it stamped on its own TRACK for this pair; the tail activates
    // the epoch announced on the head's TRACK.
    if is_head {
        ep.demux.activate(it.epoch);
    } else if let Some(e) = track.epoch {
        ep.demux.activate(e);
    }

    // Cross-check (Algorithm 2/5): both ends must serve the chain to the
    // same request. The head's assignment is authoritative (it rides the
    // head-originated TRACK the tail receives); on a mismatch the tail
    // *reassigns* its pair to the head's choice — the paper's "if a qubit
    // was not delivered early it can be reassigned". Without this, heavy
    // aggregation (Fig 9 beyond saturation) decorrelates the two ends'
    // round-robin cursors and throughput collapses. EARLY pairs cannot be
    // reassigned (the application already owns the qubit).
    let mut serve_as = it.request;
    if !ep.demux.cross_check(it.request, track.request) {
        let compatible = match (
            ep.requests
                .get(&it.request)
                .map(|r| (r.request_type, r.final_state)),
            ep.requests
                .get(&track.request)
                .map(|r| (r.request_type, r.final_state)),
        ) {
            // KEEP chains carry an intact qubit: any KEEP request can take
            // them (the head — the authority — corrects per its choice).
            (Some((RequestType::Keep, _)), Some((RequestType::Keep, _))) => true,
            // MEASURE outcomes were obtained in the original basis; they
            // only transfer to a request with identical semantics.
            (Some((RequestType::Measure(b1), f1)), Some((RequestType::Measure(b2), f2))) => {
                b1 == b2 && f1 == f2
            }
            _ => false,
        };
        let reassignable = !is_head
            && !it.delivered_early
            && compatible
            && ep
                .requests
                .get(&track.request)
                .map(|r| !r.completed && !r.is_full())
                .unwrap_or(false);
        if reassignable {
            // Return the slot to the original request, take one from the
            // head's choice.
            if let Some(orig) = ep.requests.get_mut(&it.request) {
                orig.assigned = orig.assigned.saturating_sub(1);
            }
            if let Some(new) = ep.requests.get_mut(&track.request) {
                new.assigned += 1;
            }
            serve_as = track.request;
        } else if is_head && compatible {
            // The head keeps its own assignment; the tail converges to it.
        } else {
            // Incompatible semantics (e.g. the peer measured its end while
            // we expected a live qubit): the chain is unusable at both
            // ends — discard. The compatibility predicate is symmetric, so
            // both ends reach the same verdict independently.
            if let Some(req) = ep.requests.get_mut(&it.request) {
                req.assigned = req.assigned.saturating_sub(1);
            }
            if it.delivered_early {
                out.push(NetOutput::Notify(AppEvent::EarlyPairExpired {
                    request: it.request,
                    pair: it.pair,
                }));
            } else {
                out.push(NetOutput::DiscardPair { pair: it.pair });
            }
            return;
        }
    }

    let Some(req) = ep.requests.get_mut(&serve_as) else {
        out.push(NetOutput::DiscardPair { pair: it.pair });
        return;
    };
    // Bounded requests deliver exactly `count` pairs at each end; excess
    // confirmations release their pairs.
    if req.is_full() {
        if !it.delivered_early {
            out.push(NetOutput::DiscardPair { pair: it.pair });
        }
        return;
    }

    // The entangled pair identifier (paper §3.2): the two TRACK origins.
    // Our own link-pair correlator plus the peer's TRACK origin — both
    // ends compute the same tuple.
    let chain = Some(if is_head {
        crate::events::ChainId {
            head: it.pair.correlator,
            tail: track.origin,
        }
    } else {
        crate::events::ChainId {
            head: track.origin,
            tail: it.pair.correlator,
        }
    });

    let raw_state = track.outcome_state;
    let mut state = raw_state;
    if let Some(final_state) = req.final_state {
        // The head performs the correction; for MEASURE requests the
        // qubit is already gone, so the correction is applied classically
        // to the outcome below instead.
        if is_head && !matches!(req.request_type, RequestType::Measure(_)) {
            let pauli = state.correction_to(final_state);
            if pauli != qn_quantum::Pauli::I {
                out.push(NetOutput::ApplyCorrection {
                    pair: it.pair,
                    pauli,
                });
            }
        }
        // Both ends report the corrected state (the head performs the
        // physical correction; Algorithm 5 note).
        state = final_state;
    }

    let address = Address {
        node,
        identifier: if is_head {
            req.head_identifier
        } else {
            req.tail_identifier
        },
    };
    match req.request_type {
        RequestType::Keep => {
            out.push(NetOutput::Deliver(Delivery {
                request: serve_as,
                sequence: req.take_seq(),
                chain,
                address,
                kind: DeliveryKind::Qubit {
                    pair: it.pair,
                    state,
                },
            }));
        }
        RequestType::Early => {
            out.push(NetOutput::Deliver(Delivery {
                request: serve_as,
                sequence: req.take_seq(),
                chain,
                address,
                kind: DeliveryKind::EarlyTracking {
                    pair: it.pair,
                    state,
                },
            }));
        }
        RequestType::Measure(basis) => {
            let mut outcome = it.measure_outcome.expect("outcome present by ordering");
            // Classical Pauli correction: the head flips its reported bit
            // when the correction Pauli anticommutes with the basis,
            // which transforms the outcome statistics into those of the
            // requested final state.
            if let Some(final_state) = req.final_state {
                if is_head {
                    let pauli = raw_state.correction_to(final_state);
                    if anticommutes(pauli, basis) {
                        outcome = !outcome;
                    }
                }
            }
            out.push(NetOutput::Deliver(Delivery {
                request: serve_as,
                sequence: req.take_seq(),
                chain,
                address,
                kind: DeliveryKind::Measurement {
                    outcome,
                    basis,
                    state,
                },
            }));
        }
    }
    req.delivered += 1;
    let full = req.is_full();
    if is_head && full {
        finish_request(circuit, entry, ep, serve_as, out);
    } else if !is_head && full {
        // The tail marks completion locally; removal from the demux
        // happens when COMPLETE arrives (the head owns the lifecycle).
        req.completed = true;
    }
}

/// Whether a Pauli anticommutes with a measurement basis operator (the
/// condition under which a frame correction flips a classical outcome).
fn anticommutes(pauli: qn_quantum::Pauli, basis: qn_quantum::Pauli) -> bool {
    use qn_quantum::Pauli as P;
    match (pauli, basis) {
        (P::I, _) | (_, P::I) => false,
        (a, b) if a == b => false,
        _ => true,
    }
}

/// EXPIRE rule at an end-node (Algorithm 3 at the head, Algorithm 6 at
/// the tail): free the local qubit of a broken chain.
pub(crate) fn expire_rule(
    c: &mut Circuit,
    expire: crate::messages::Expire,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let ep = ep(c);
    let Some(it) = ep.in_transit.remove(&expire.origin) else {
        // Duplicated EXPIRE, or its pair already confirmed/timed out.
        stats.stale_expires += 1;
        return;
    };
    // Return the assignment slot so the request can be served by a
    // replacement pair.
    if let Some(req) = ep.requests.get_mut(&it.request) {
        req.assigned = req.assigned.saturating_sub(1);
    }
    if it.delivered_early {
        out.push(NetOutput::Notify(AppEvent::EarlyPairExpired {
            request: it.request,
            pair: it.pair,
        }));
    } else {
        out.push(NetOutput::DiscardPair { pair: it.pair });
    }
}

/// Local track-timeout (faulty classical plane only): the pair's
/// TRACK/EXPIRE never arrived, so free the qubit rather than hold it
/// forever — the expiry/retransmission-safe analogue of the repeater
/// cutoff for end-nodes, where the paper's no-timer rule assumes a
/// reliable plane. A discard record is logged so a merely-late TRACK
/// still converts into an EXPIRE towards the peer.
pub(crate) fn track_timeout(
    c: &mut Circuit,
    correlator: Correlator,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let ep = ep(c);
    // A pending TRACK means confirmation is imminent (only the local
    // readout completion is outstanding): let it finish.
    if ep
        .in_transit
        .get(&correlator)
        .is_some_and(|it| it.pending_track.is_some())
    {
        return;
    }
    let Some(it) = ep.in_transit.remove(&correlator) else {
        return; // already confirmed or expired — the common case
    };
    stats.expired_in_transit += 1;
    if let Some(req) = ep.requests.get_mut(&it.request) {
        req.assigned = req.assigned.saturating_sub(1);
    }
    if it.delivered_early {
        out.push(NetOutput::Notify(AppEvent::EarlyPairExpired {
            request: it.request,
            pair: it.pair,
        }));
    } else {
        out.push(NetOutput::DiscardPair { pair: it.pair });
    }
    ep.discard_records.insert(correlator);
}

/// The runtime reclaimed an end-node link qubit whose pair announcement
/// was lost on the wire: the QNP never saw the pair, so there is no
/// state to unwind — just log a discard record so the peer's TRACK for
/// this chain draws an EXPIRE instead of leaking the peer's qubit until
/// its own timeout.
pub(crate) fn link_orphaned(c: &mut Circuit, correlator: Correlator) {
    ep(c).discard_records.insert(correlator);
}

/// FORWARD at the tail-end: learn the new request.
pub(crate) fn on_forward(
    c: &mut Circuit,
    f: Forward,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let _ = out;
    let ep = ep(c);
    if ep.is_head {
        // Only reachable through corruption (FORWARD travels head→tail).
        stats.misrouted += 1;
        return;
    }
    if ep.requests.contains_key(&f.request) {
        // A duplicated FORWARD: re-registering would reset the request's
        // delivery counters and fork a spurious epoch. Absorb it.
        stats.duplicate_forwards += 1;
        return;
    }
    register_request(
        ep,
        f.request,
        f.head_identifier,
        f.tail_identifier,
        f.request_type,
        f.final_state,
        f.number_of_pairs,
    );
}

/// COMPLETE at the tail-end: retire the request from the demultiplexer
/// (the request state is kept for TRACKs still in flight).
pub(crate) fn on_complete(
    c: &mut Circuit,
    m: Complete,
    out: &mut Vec<NetOutput>,
    stats: &mut NodeStats,
) {
    let _ = out;
    let ep = ep(c);
    if ep.is_head {
        stats.misrouted += 1;
        return;
    }
    if !ep.demux.in_latest(m.request) {
        // Nothing to retire: either a duplicated COMPLETE (already
        // removed) or a COMPLETE whose request this end never learned
        // (its FORWARD was dropped, or the id was corrupted in flight).
        // Removing anyway would fork a spurious epoch at this end only,
        // desynchronising the two ends' demultiplexers.
        stats.duplicate_completes += 1;
        return;
    }
    if let Some(req) = ep.requests.get_mut(&m.request) {
        req.completed = true;
    }
    ep.demux.remove_request(m.request);
}
