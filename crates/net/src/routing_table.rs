//! Per-circuit routing state installed by the signalling protocol
//! (paper §4.1 "Routing table").
//!
//! The entry holds exactly the seven fields the paper lists — next
//! downstream/upstream node, the two link-labels, the downstream link
//! minimum fidelity, the downstream max-LPR, and the circuit max-EER —
//! plus the cutoff value, which the paper has the routing protocol choose
//! and the signalling protocol distribute.

use crate::ids::CircuitId;
use qn_link::LinkLabel;
use qn_sim::{NodeId, SimDuration};

/// Which adjacent link of a node a pair or command refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkSide {
    /// The link towards the head-end.
    Upstream,
    /// The link towards the tail-end.
    Downstream,
}

impl LinkSide {
    /// The other side.
    pub fn opposite(self) -> LinkSide {
        match self {
            LinkSide::Upstream => LinkSide::Downstream,
            LinkSide::Downstream => LinkSide::Upstream,
        }
    }
}

/// The upstream-facing half of a routing entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpstreamHop {
    /// The next node towards the head-end.
    pub node: NodeId,
    /// The circuit's label on the upstream link.
    pub label: LinkLabel,
}

/// The downstream-facing half of a routing entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DownstreamHop {
    /// The next node towards the tail-end.
    pub node: NodeId,
    /// The circuit's label on the downstream link.
    pub label: LinkLabel,
    /// Minimum fidelity the link must produce for this circuit.
    pub min_fidelity: f64,
    /// Maximum link-pair rate allocated to this circuit on the link,
    /// pairs/s.
    pub max_lpr: f64,
}

/// A node's routing-table entry for one virtual circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoutingEntry {
    /// The circuit this entry belongs to.
    pub circuit: CircuitId,
    /// Upstream hop; `None` at the head-end.
    pub upstream: Option<UpstreamHop>,
    /// Downstream hop; `None` at the tail-end.
    pub downstream: Option<DownstreamHop>,
    /// The circuit's allocated maximum end-to-end rate, pairs/s.
    pub max_eer: f64,
    /// Cutoff deadline for unswapped pairs held at this node
    /// (intermediate nodes only; end-nodes never run cutoff timers).
    pub cutoff: SimDuration,
}

/// A node's role on a circuit, derived from its routing entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Upstream end of the circuit: originates FORWARD/COMPLETE, polices
    /// and shapes, advances epochs, applies Pauli corrections.
    HeadEnd,
    /// Downstream end of the circuit.
    TailEnd,
    /// Entanglement-swapping repeater.
    Intermediate,
}

impl RoutingEntry {
    /// Derive the node's role from which hops are present.
    pub fn role(&self) -> Role {
        match (&self.upstream, &self.downstream) {
            (None, Some(_)) => Role::HeadEnd,
            (Some(_), None) => Role::TailEnd,
            (Some(_), Some(_)) => Role::Intermediate,
            (None, None) => panic!("routing entry with no hops"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down() -> DownstreamHop {
        DownstreamHop {
            node: NodeId(1),
            label: LinkLabel(1),
            min_fidelity: 0.95,
            max_lpr: 50.0,
        }
    }

    fn up() -> UpstreamHop {
        UpstreamHop {
            node: NodeId(0),
            label: LinkLabel(1),
        }
    }

    #[test]
    fn role_derivation() {
        let head = RoutingEntry {
            circuit: CircuitId(1),
            upstream: None,
            downstream: Some(down()),
            max_eer: 10.0,
            cutoff: SimDuration::from_millis(100),
        };
        assert_eq!(head.role(), Role::HeadEnd);
        let tail = RoutingEntry {
            upstream: Some(up()),
            downstream: None,
            ..head
        };
        assert_eq!(tail.role(), Role::TailEnd);
        let mid = RoutingEntry {
            upstream: Some(up()),
            downstream: Some(down()),
            ..head
        };
        assert_eq!(mid.role(), Role::Intermediate);
    }

    #[test]
    #[should_panic]
    fn entry_without_hops_is_invalid() {
        let bad = RoutingEntry {
            circuit: CircuitId(1),
            upstream: None,
            downstream: None,
            max_eer: 0.0,
            cutoff: SimDuration::ZERO,
        };
        let _ = bad.role();
    }

    #[test]
    fn side_opposite() {
        assert_eq!(LinkSide::Upstream.opposite(), LinkSide::Downstream);
        assert_eq!(LinkSide::Downstream.opposite(), LinkSide::Upstream);
    }
}
