//! The link layer service interface (paper §3.5).
//!
//! The network layer requires four properties from the link layer, all
//! present here:
//!
//! 1. a link-unique request identifier accompanying every delivered qubit
//!    (**Purpose ID** → [`LinkLabel`]);
//! 2. a per-pair identifier unique within the request (**Entanglement
//!    ID** → [`EntanglementId`]);
//! 3. the Bell state of each delivered pair ([`LinkPair::announced`]);
//! 4. quality-of-service parameters on requests: minimum fidelity and
//!    count/continuous mode ([`LinkRequest`]).

use qn_quantum::bell::BellState;
use qn_sim::NodeId;
use std::fmt;

/// The link-unique label identifying a virtual circuit's traffic on one
/// link (the paper's MPLS-like link-label / the link layer's Purpose ID).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinkLabel(pub u32);

impl fmt::Display for LinkLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lbl{}", self.0)
    }
}

/// Unique identifier of a link pair: the two node ids plus a link-scoped
/// sequence number (Appendix C.1's three-tuple).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntanglementId {
    /// Lower endpoint of the link.
    pub node_a: NodeId,
    /// Higher endpoint of the link.
    pub node_b: NodeId,
    /// Link-scoped sequence number.
    pub seq: u64,
}

impl fmt::Display for EntanglementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})#{}", self.node_a, self.node_b, self.seq)
    }
}

/// How many pairs a request wants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairDemand {
    /// Exactly `n` pairs, then the request completes.
    Count(u64),
    /// A continuous stream until explicitly stopped (how the QNP uses the
    /// link layer: "produce a continuous stream of pairs until the
    /// end-nodes signal the completion of the request").
    Continuous,
}

/// A request to the link layer service.
#[derive(Clone, Copy, Debug)]
pub struct LinkRequest {
    /// The circuit's label on this link (Purpose ID).
    pub label: LinkLabel,
    /// Minimum acceptable fidelity of produced pairs.
    pub min_fidelity: f64,
    /// Count or continuous mode.
    pub demand: PairDemand,
    /// Scheduling weight — the circuit's link-pair rate (LPR) share.
    /// The link scheduler allocates *time* proportionally to this value.
    pub weight: f64,
}

/// A pair delivered by the link layer (one notification per end in the
/// real system; the simulation fans it out to both ends).
#[derive(Clone, Copy, Debug)]
pub struct LinkPair {
    /// Per-pair unique identifier.
    pub id: EntanglementId,
    /// The request this pair belongs to.
    pub label: LinkLabel,
    /// Which Bell state was heralded.
    pub announced: BellState,
    /// The bright-state parameter used for this pair's generation.
    pub alpha: f64,
    /// The link layer's fidelity estimate at creation ("goodness").
    pub goodness: f64,
    /// How many physical attempts the generation took (used to charge
    /// nuclear dephasing on storage qubits at both nodes).
    pub attempts: u64,
}

/// Why a request was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The requested fidelity exceeds what the link can produce.
    FidelityUnattainable,
    /// A request with this label is already active.
    DuplicateLabel,
    /// The weight was not a positive finite number.
    InvalidWeight,
    /// The link is administratively or physically down (component fault).
    LinkDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::FidelityUnattainable => "requested fidelity unattainable on this link",
            RejectReason::DuplicateLabel => "label already in use",
            RejectReason::InvalidWeight => "invalid scheduling weight",
            RejectReason::LinkDown => "link is down",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entanglement_id_identity() {
        let a = EntanglementId {
            node_a: NodeId(0),
            node_b: NodeId(1),
            seq: 7,
        };
        let b = EntanglementId { seq: 8, ..a };
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "(n0,n1)#7");
    }

    #[test]
    fn labels_are_ordered() {
        assert!(LinkLabel(1) < LinkLabel(2));
        assert_eq!(format!("{}", LinkLabel(3)), "lbl3");
    }
}
