//! The property runner: deterministic case generation, panic capture,
//! and counterexample minimisation.

use crate::strategy::Strategy;
use crate::tree::{minimize, ShrinkStats};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::panic::{self, AssertUnwindSafe};

/// Deterministic RNG driving all strategy sampling. Like real
/// proptest, it is backed by the `rand` crate (here: the in-tree
/// shim's `StdRng`).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
    pub max_global_rejects: u32,
    /// Cap on property executions spent shrinking one counterexample.
    pub max_shrink_iters: u64,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// The case count actually run: `cases`, scaled by the
    /// `PROPTEST_CASES_MULTIPLIER` environment knob if set (the CI
    /// nightly job runs the suites at 4x depth this way).
    pub fn resolved_cases(&self) -> u32 {
        match env_u64("PROPTEST_CASES_MULTIPLIER") {
            Some(m) => self.cases.saturating_mul(m.min(u64::from(u32::MAX)) as u32),
            None => self.cases,
        }
        .max(1)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // `PROPTEST_CASES` overrides the default case count, exactly
            // like real proptest; explicit `with_cases` values win.
            cases: env_u64("PROPTEST_CASES").map(|n| n as u32).unwrap_or(256),
            max_global_rejects: 65_536,
            max_shrink_iters: env_u64("PROPTEST_MAX_SHRINK_ITERS").unwrap_or(4_096),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; the case is not counted.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A failed property, after shrinking: the original counterexample, the
/// locally-minimal one, and the failure messages observed at each.
#[derive(Clone, Debug)]
pub struct PropertyFailure<V> {
    /// 1-based index of the failing case.
    pub case: u64,
    /// The counterexample as originally generated.
    pub original: V,
    /// Failure message at the original counterexample.
    pub original_message: String,
    /// The locally-minimal counterexample (no single shrink step keeps
    /// the property failing).
    pub minimal: V,
    /// Failure message at the minimal counterexample.
    pub minimal_message: String,
    /// How much work shrinking did.
    pub stats: ShrinkStats,
}

impl<V> PropertyFailure<V> {
    /// Render the failure for a panic message. `render_value` formats a
    /// counterexample (the macro names each generated binding).
    pub fn render(&self, name: &str, render_value: &dyn Fn(&V) -> String) -> String {
        format!(
            "{name} failed at case {case}:\n{msg}\nminimal failing input \
             ({accepted} shrinks in {execs} runs):\n  {min}\noriginal failing input:\n  {orig}",
            name = name,
            case = self.case,
            msg = self.minimal_message,
            accepted = self.stats.accepted,
            execs = self.stats.executions,
            min = render_value(&self.minimal),
            orig = render_value(&self.original),
        )
    }
}

/// Execute one case, converting panics into failures so they shrink
/// like `prop_assert!` violations do.
fn run_case<V, F: FnMut(V) -> TestCaseResult>(test: &mut F, value: V) -> TestCaseResult {
    match panic::catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(TestCaseError::Fail(format!(
            "panic: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct QuietState {
    depth: usize,
    saved: Option<PanicHook>,
}

/// Depth counter shared by every concurrently-shrinking property in the
/// process: the *first* installer saves the real hook, the *last*
/// dropper restores it. A naive save/restore pair per instance would
/// let interleaved install/drop across test threads restore a no-op as
/// the permanent hook.
static QUIET: std::sync::Mutex<QuietState> = std::sync::Mutex::new(QuietState {
    depth: 0,
    saved: None,
});

/// Scoped suppression of the global panic hook (refcounted); restores
/// the original hook when the outermost scope drops, even on unwind.
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        let mut state = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        if state.depth == 0 {
            state.saved = Some(panic::take_hook());
            panic::set_hook(Box::new(|_| {}));
        }
        state.depth += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut state = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        state.depth -= 1;
        if state.depth == 0 {
            if let Some(saved) = state.saved.take() {
                panic::set_hook(saved);
            }
        }
    }
}

/// Best-effort rendering of a caught panic payload (`&str` and `String`
/// payloads cover everything `panic!` produces).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run a property: `cases` inputs sampled from `strategy` on a
/// deterministic per-`name` RNG; on failure, greedily shrink to a local
/// minimum and report both counterexamples.
///
/// This is the engine behind the `proptest!` macro, exposed directly so
/// meta-tests (and `qn_testkit`) can inspect [`PropertyFailure`]
/// programmatically instead of parsing panic messages.
pub fn run_property<S, F>(
    name: &str,
    config: &Config,
    strategy: &S,
    mut test: F,
) -> Result<u32, Box<PropertyFailure<S::Value>>>
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let cases = config.resolved_cases();
    let mut rng = TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case: u64 = 0;
    while passed < cases {
        case += 1;
        let tree = strategy.tree(&mut rng);
        match run_case(&mut test, tree.value().clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("{name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Err(TestCaseError::Fail(message)) => {
                let original = tree.value().clone();
                // Shrinking a panicking property re-executes it (and
                // re-panics) once per still-failing candidate; silence
                // the panic hook for the duration so the report is the
                // one minimised message, not thousands of backtraces.
                // (Process-global, like real proptest's fork handling:
                // a concurrently-failing test in the same binary would
                // lose its hook output during this window.)
                let _quiet = QuietPanics::install();
                let (minimal, minimal_message, stats) = minimize(
                    tree,
                    message.clone(),
                    config.max_shrink_iters,
                    |candidate| match run_case(&mut test, candidate.clone()) {
                        Err(TestCaseError::Fail(msg)) => Some(msg),
                        // Passing and rejected candidates both end this
                        // branch of the descent.
                        Ok(()) | Err(TestCaseError::Reject(_)) => None,
                    },
                );
                return Err(Box::new(PropertyFailure {
                    case,
                    original,
                    original_message: message,
                    minimal,
                    minimal_message,
                    stats,
                }));
            }
        }
    }
    Ok(passed)
}
