//! Integration coverage for the parallel experiment engine: the sweep
//! results must be bit-identical to the serial path at any thread
//! count, and JSON baselines must round-trip losslessly.

use qn_bench::report::{diff_baselines, Baseline, Direction};
use qn_bench::scenarios::{fig9_scenario, wide_dumbbell_scenario};
use qn_exec::run_sweep_with;
use qn_routing::CutoffPolicy;
use qn_sim::SimDuration;

/// Parallel vs serial: the full per-seed point vectors must match
/// bit-for-bit, for several thread counts (1 is the serial fast path;
/// the others exercise the pool with fewer/more workers than seeds).
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let seeds: Vec<u64> = (40..46).collect();
    let scenario = |seed: u64| {
        wide_dumbbell_scenario(
            seed,
            2,
            2,
            0.8,
            CutoffPolicy::short(),
            SimDuration::from_secs(60),
        )
    };
    let serial = run_sweep_with(1, scenario, &seeds);
    for threads in [2usize, 4, 16] {
        let parallel = run_sweep_with(threads, scenario, &seeds);
        assert_eq!(parallel.len(), serial.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(
                p.completed, s.completed,
                "seed {} ({threads} threads)",
                seeds[i]
            );
            assert_eq!(p.circuits, s.circuits);
            assert_eq!(
                p.mean_latency.to_bits(),
                s.mean_latency.to_bits(),
                "latency bits differ at seed {} with {threads} threads",
                seeds[i]
            );
            assert_eq!(
                p.aggregate_throughput.to_bits(),
                s.aggregate_throughput.to_bits()
            );
        }
    }
}

/// The same guarantee through a full simulation scenario with NaN-able
/// statistics (fig 9 at a sparse interval).
#[test]
fn fig9_sweep_matches_serial_at_8_threads() {
    let seeds: Vec<u64> = (2000..2003).collect();
    let scenario = |seed: u64| fig9_scenario(seed, false, SimDuration::from_millis(2000));
    let serial = run_sweep_with(1, scenario, &seeds);
    let parallel = run_sweep_with(8, scenario, &seeds);
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.throughput.to_bits(), s.throughput.to_bits());
        assert_eq!(p.mean_latency.to_bits(), s.mean_latency.to_bits());
        assert_eq!(p.p5.to_bits(), s.p5.to_bits());
        assert_eq!(p.p95.to_bits(), s.p95.to_bits());
        assert_eq!(p.measured, s.measured);
    }
}

/// Baseline lifecycle: write → parse → diff against itself reports zero
/// regressions, and every metric survives bit-exactly (NaN included).
#[test]
fn baseline_write_parse_diff_round_trip() {
    let seeds: Vec<u64> = (7..10).collect();
    let points = run_sweep_with(
        2,
        |seed: u64| {
            wide_dumbbell_scenario(
                seed,
                1,
                2,
                0.8,
                CutoffPolicy::short(),
                SimDuration::from_secs(60),
            )
        },
        &seeds,
    );
    let mut baseline = Baseline::new("engine_round_trip")
        .config_num("runs", seeds.len() as f64)
        .direction(
            "aggregate_throughput_pairs_per_s",
            Direction::HigherIsBetter,
        )
        .direction("mean_latency_s", Direction::LowerIsBetter);
    for (seed, p) in seeds.iter().zip(&points) {
        baseline.point(
            format!("seed={seed}"),
            &[
                ("aggregate_throughput_pairs_per_s", p.aggregate_throughput),
                ("mean_latency_s", p.mean_latency),
                ("nan_metric", f64::NAN),
            ],
        );
    }

    let dir = std::env::temp_dir().join(format!("qnp-bench-test-{}", std::process::id()));
    let path = baseline.write_to(&dir).expect("write baseline");
    let text = std::fs::read_to_string(&path).expect("read baseline back");
    let parsed = Baseline::parse(&text).expect("parse baseline");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(parsed.figure, baseline.figure);
    assert_eq!(parsed.points.len(), baseline.points.len());
    for (a, b) in parsed.points.iter().zip(&baseline.points) {
        assert_eq!(a.label, b.label);
        for ((ka, va), (kb, vb)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "metric {ka} not bit-exact");
        }
    }

    // Self-diff must be clean even at zero tolerance.
    let report = diff_baselines(&baseline, &parsed, 0.0);
    assert_eq!(report.regressions(), 0);
    assert!(
        report.is_clean(),
        "unexpected entries: {:?}",
        report.entries
    );
}
