//! Single-click heralded entanglement generation.
//!
//! The physical mechanism behind link-pair generation on the NV platform
//! (Refs [38, 40] of the paper): both nodes emit a spin–photon entangled
//! state with *bright-state population* `α`, the photons interfere at a
//! midpoint station, and a single detector click heralds an entangled pair
//! of the electron spins.
//!
//! The `α` knob is the fidelity↔rate trade-off the whole stack exploits
//! (paper §2.3 P1: "some implementations are able to vary the fidelity of
//! the produced pairs though higher fidelities come at the cost of reduced
//! rates"):
//!
//! * success probability per attempt grows with `α` (≈ `2αη`),
//! * heralded fidelity falls with `α` (≈ `1 − α` before imperfections).
//!
//! The heralded state is assembled from three components, conditioned on a
//! single click:
//!
//! * the **coherent** part `|Ψ±⟩` with off-diagonals scaled by the photon
//!   indistinguishability (visibility) and the optical phase stability
//!   `cos Δφ` — weight `2α(1−α)η`;
//! * the **double-excitation** part `|11⟩` (both spins bright, one photon
//!   lost) — weight `2αη(α + p_double)`;
//! * the **dark-count** part (click without a photon): the uncorrelated
//!   product state — weight `2·p_dark`.
//!
//! This is the standard analytic single-click model; the paper uses
//! NetSquid's circuit-level NV model, which produces the same qualitative
//! α-dependence (DESIGN.md §2, substitution 2).

use crate::params::{FibreParams, HardwareParams};
use qn_quantum::bell::BellState;
use qn_quantum::matrix::CMatrix;
use qn_quantum::pairstate::{PairState, StateRep};
use qn_quantum::{DensityMatrix, C64};
use qn_sim::{SimDuration, SimRng};

/// The physics of one quantum link: two identical devices joined by fibre
/// with a heralding station at the midpoint.
#[derive(Clone, Debug)]
pub struct LinkPhysics {
    params: HardwareParams,
    fibre: FibreParams,
}

/// Relative weights of the heralded-state components at a given `α`.
#[derive(Clone, Copy, Debug)]
pub struct ComponentWeights {
    /// Coherent |Ψ±⟩ component.
    pub coherent: f64,
    /// |11⟩ (double excitation / both bright) component.
    pub double: f64,
    /// Dark-count (uncorrelated product) component.
    pub dark: f64,
}

impl ComponentWeights {
    /// Total click probability.
    pub fn total(&self) -> f64 {
        self.coherent + self.double + self.dark
    }
}

impl LinkPhysics {
    /// Build the physics of a link with the given hardware at both ends.
    pub fn new(params: HardwareParams, fibre: FibreParams) -> Self {
        LinkPhysics { params, fibre }
    }

    /// The hardware parameters.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// The fibre parameters.
    pub fn fibre(&self) -> &FibreParams {
        &self.fibre
    }

    /// Per-side photon detection efficiency `η`: zero-phonon emission ×
    /// collection × fibre (half length) × detector.
    pub fn eta(&self) -> f64 {
        self.params.p_zero_phonon
            * self.params.collection_efficiency
            * self.fibre.transmissivity(self.fibre.length_m / 2.0)
            * self.params.p_detection
    }

    /// Dark-count probability within one detection window.
    pub fn p_dark(&self) -> f64 {
        self.params.dark_count_rate * self.params.tau_w
    }

    /// Coherence factor of the |Ψ±⟩ component: visibility × cos Δφ.
    pub fn coherence(&self) -> f64 {
        self.params.visibility * self.params.delta_phi.cos()
    }

    /// Component weights at bright-state parameter `alpha`.
    pub fn weights(&self, alpha: f64) -> ComponentWeights {
        let alpha = alpha.clamp(0.0, 0.5);
        let eta = self.eta();
        ComponentWeights {
            coherent: 2.0 * alpha * (1.0 - alpha) * eta,
            double: 2.0 * alpha * eta * (alpha + self.params.p_double_excitation),
            dark: 2.0 * self.p_dark(),
        }
    }

    /// Probability that one attempt heralds success.
    pub fn success_prob(&self, alpha: f64) -> f64 {
        self.weights(alpha).total().min(1.0)
    }

    /// Analytic fidelity of the heralded state to the announced Bell state.
    pub fn fidelity(&self, alpha: f64) -> f64 {
        let w = self.weights(alpha);
        let alpha = alpha.clamp(0.0, 0.5);
        let f_coh = 0.5 * (1.0 + self.coherence());
        // ⟨Ψ±| ρ_dark |Ψ±⟩ = α(1−α) (the |01⟩/|10⟩ populations).
        let f_dark = alpha * (1.0 - alpha);
        let total = w.total();
        if total <= 0.0 {
            return 0.0;
        }
        (w.coherent * f_coh + w.dark * f_dark) / total
    }

    /// Density matrix of the heralded state, given which `|Ψ±⟩` was
    /// announced (`psi_minus = Ψ⁻`, otherwise `Ψ⁺`).
    pub fn heralded_state(&self, alpha: f64, announced: BellState) -> DensityMatrix {
        assert!(announced.x, "single-click heralds Ψ± states");
        let alpha = alpha.clamp(0.0, 0.5);
        let w = self.weights(alpha);
        let total = w.total();
        let c = self.coherence() * if announced.z { -1.0 } else { 1.0 };

        // Coherent |Ψ±⟩ with reduced off-diagonals.
        let mut coh = CMatrix::zeros(4, 4);
        coh[(1, 1)] = C64::real(0.5);
        coh[(2, 2)] = C64::real(0.5);
        coh[(1, 2)] = C64::real(0.5 * c);
        coh[(2, 1)] = C64::real(0.5 * c);

        // |11⟩⟨11|.
        let mut dbl = CMatrix::zeros(4, 4);
        dbl[(3, 3)] = C64::ONE;

        // Uncorrelated product of bright-state mixtures.
        let mut dark = CMatrix::zeros(4, 4);
        let a = alpha;
        dark[(0, 0)] = C64::real((1.0 - a) * (1.0 - a));
        dark[(1, 1)] = C64::real(a * (1.0 - a));
        dark[(2, 2)] = C64::real(a * (1.0 - a));
        dark[(3, 3)] = C64::real(a * a);

        let m = &(&coh.scale(w.coherent / total) + &dbl.scale(w.double / total))
            + &dark.scale(w.dark / total);
        DensityMatrix::from_matrix_unchecked(m)
    }

    /// [`LinkPhysics::heralded_state`] in pair-state form: the heralded
    /// state is an X-state by construction, so under the Bell-diagonal
    /// representation the conversion is exact and lossless.
    pub fn heralded_pair(&self, alpha: f64, announced: BellState, rep: StateRep) -> PairState {
        PairState::from_density(self.heralded_state(alpha, announced), rep)
    }

    /// Sample which Bell state a successful attempt announces (Ψ⁺ or Ψ⁻
    /// with equal probability, by which detector clicked).
    pub fn sample_announced(&self, rng: &mut SimRng) -> BellState {
        if rng.bernoulli(0.5) {
            BellState::PSI_PLUS
        } else {
            BellState::PSI_MINUS
        }
    }

    /// Duration of one attempt cycle: electron initialisation, emission,
    /// photon flight to the midpoint and herald reply — floored by the
    /// link-layer trigger period (DESIGN.md §7 calibration).
    pub fn cycle_time(&self) -> SimDuration {
        let physics = self.params.gates.electron_init.duration
            + self.params.tau_e
            + self.fibre.length_m / self.fibre.speed_m_per_s;
        SimDuration::from_secs_f64(physics.max(self.params.mhp_cycle_floor))
    }

    /// Expected number of attempts until success at `alpha`.
    pub fn expected_attempts(&self, alpha: f64) -> f64 {
        1.0 / self.success_prob(alpha).max(1e-300)
    }

    /// Expected wall-clock time to herald one pair at `alpha`.
    pub fn expected_pair_time(&self, alpha: f64) -> SimDuration {
        self.cycle_time().mul_f64(self.expected_attempts(alpha))
    }

    /// The highest fidelity this link can produce (over all `α`), and the
    /// `α` that attains it.
    pub fn max_fidelity(&self) -> (f64, f64) {
        let mut best = (0.0, 0.25);
        for i in 1..=400 {
            // Log-spaced from 1e-4 to 0.5.
            let alpha = 1e-4 * (0.5f64 / 1e-4).powf(i as f64 / 400.0);
            let f = self.fidelity(alpha);
            if f > best.0 {
                best = (f, alpha);
            }
        }
        best
    }

    /// The largest `α` (fastest rate) achieving at least `target` fidelity,
    /// or `None` when the link cannot reach it. Monotone bisection on the
    /// decreasing branch of `F(α)`.
    pub fn alpha_for_fidelity(&self, target: f64) -> Option<f64> {
        let (f_max, alpha_max) = self.max_fidelity();
        if target > f_max {
            return None;
        }
        if self.fidelity(0.5) >= target {
            return Some(0.5);
        }
        let (mut lo, mut hi) = (alpha_max, 0.5);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.fidelity(mid) >= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab_link() -> LinkPhysics {
        LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m())
    }

    fn near_term_link() -> LinkPhysics {
        LinkPhysics::new(HardwareParams::near_term(), FibreParams::telecom(25_000.0))
    }

    #[test]
    fn eta_in_sane_range() {
        let eta = lab_link().eta();
        assert!(eta > 0.005 && eta < 0.05, "lab eta {eta}");
        let eta_nt = near_term_link().eta();
        assert!(eta_nt > 1e-5 && eta_nt < 1e-3, "near-term eta {eta_nt}");
        assert!(eta_nt < eta);
    }

    #[test]
    fn fidelity_decreases_with_alpha_on_main_branch() {
        let link = lab_link();
        let (_, alpha_peak) = link.max_fidelity();
        let mut prev = link.fidelity(alpha_peak);
        for i in 1..=20 {
            let alpha = alpha_peak + (0.5 - alpha_peak) * i as f64 / 20.0;
            let f = link.fidelity(alpha);
            assert!(
                f <= prev + 1e-12,
                "F must fall with alpha: {f} after {prev}"
            );
            prev = f;
        }
    }

    #[test]
    fn success_prob_increases_with_alpha() {
        let link = lab_link();
        assert!(link.success_prob(0.2) > link.success_prob(0.05));
        assert!(link.success_prob(0.5) > link.success_prob(0.2));
        assert!(link.success_prob(0.05) > 0.0);
        assert!(link.success_prob(0.5) < 1.0);
    }

    #[test]
    fn heralded_state_fidelity_matches_analytic() {
        let link = lab_link();
        for alpha in [0.02, 0.05, 0.2, 0.5] {
            for announced in [BellState::PSI_PLUS, BellState::PSI_MINUS] {
                let rho = link.heralded_state(alpha, announced);
                let f_dm = rho.fidelity_pure(&announced.amplitudes());
                let f_an = link.fidelity(alpha);
                assert!(
                    (f_dm - f_an).abs() < 1e-12,
                    "alpha {alpha}: DM {f_dm} vs analytic {f_an}"
                );
            }
        }
    }

    #[test]
    fn alpha_for_fidelity_inverts() {
        let link = lab_link();
        for target in [0.8, 0.9, 0.95, 0.98] {
            let alpha = link.alpha_for_fidelity(target).expect("achievable");
            let f = link.fidelity(alpha);
            assert!(
                (f - target).abs() < 1e-6,
                "target {target}: alpha {alpha} gives {f}"
            );
        }
    }

    #[test]
    fn unreachable_fidelity_is_rejected() {
        let link = near_term_link();
        let (f_max, _) = link.max_fidelity();
        assert!(link.alpha_for_fidelity(f_max + 0.01).is_none());
        // Near-term visibility 0.9 caps fidelity well below 0.99.
        assert!(f_max < 0.97, "near-term max fidelity {f_max}");
    }

    #[test]
    fn fig5_anchor_mean_pair_time_near_10ms() {
        // Paper Fig 5: F=0.95 over 2 m fibre — mean ≈ 10 ms, 95 % ≤ 30 ms.
        let link = lab_link();
        let alpha = link.alpha_for_fidelity(0.95).unwrap();
        let mean = link.expected_pair_time(alpha).as_millis_f64();
        assert!(
            (5.0..20.0).contains(&mean),
            "mean pair time {mean} ms outside the Fig 5 anchor window"
        );
    }

    #[test]
    fn near_term_cycle_dominated_by_flight_time() {
        let link = near_term_link();
        let cycle = link.cycle_time().as_micros_f64();
        // 25 km at 2e8 m/s = 125 us one way; cycle must exceed it.
        assert!(cycle >= 125.0, "cycle {cycle} us");
    }

    #[test]
    fn near_term_pair_rate_order_of_magnitude() {
        // Rates "of the order of a few tens of Hz" in the lab (paper §4.1);
        // over 25 km with telecom conversion, expect ~1 Hz or slower.
        let link = near_term_link();
        let alpha = 0.3;
        let t = link.expected_pair_time(alpha).as_secs_f64();
        assert!(t > 0.05 && t < 10.0, "near-term pair time {t} s");
    }

    #[test]
    fn announced_state_is_psi() {
        let mut rng = SimRng::from_seed(1);
        let link = lab_link();
        let mut plus = 0;
        for _ in 0..100 {
            let b = link.sample_announced(&mut rng);
            assert!(b.x);
            if !b.z {
                plus += 1;
            }
        }
        assert!(plus > 20 && plus < 80, "Ψ+/Ψ- should both occur: {plus}");
    }

    #[test]
    fn heralded_state_is_valid_density_matrix() {
        let link = near_term_link();
        let rho = link.heralded_state(0.3, BellState::PSI_PLUS);
        assert!((rho.trace() - 1.0).abs() < 1e-9);
        assert!(rho.purity() <= 1.0 + 1e-9);
    }
}
