//! End-to-end model of the **netsim runtime**: random user-visible
//! operation sequences — request submissions, cancellations and time
//! advances — run against the *real* full-stack simulation
//! (`qn_netsim::NetSim` over a 3-node repeater chain), checked against
//! a reference bookkeeping model of the network-layer service contract.
//!
//! The reference model does not re-simulate physics; it tracks what the
//! paper's service definition (§3.2) lets an application rely on:
//!
//! * accepted bounded requests deliver **at most `n`** confirmed pairs
//!   per end, with dense per-end sequence numbers `0..k`;
//! * delivered counts are monotone, and completion is reported exactly
//!   once, precisely when the head-end's count reaches `n` (or the
//!   request is cancelled);
//! * after a settle (long quiescent run on the reliable default plane)
//!   every accepted request has completed and no entangled pairs leak;
//! * every acceptance/completion event corresponds to a submitted
//!   request.
//!
//! Divergences shrink to a minimal operation sequence. The injected
//! [`NetsimFault`]s break the *runtime* (not the checker): the
//! meta-test in `crates/testkit/tests/netsim_model.rs` proves a runtime
//! fault is caught and shrinks to the minimal reproduction.

use crate::ModelSpec;
use proptest::prelude::*;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, AppEvent, CircuitId, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_netsim::{ClassicalFaults, FaultPlan};
use qn_routing::{chain, CutoffPolicy};
use qn_sim::{NodeId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// One user-visible operation against the running network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetOp {
    /// Submit a KEEP request for `pairs` pairs at the head-end.
    Submit {
        /// Number of pairs requested (small: the chain must finish them
        /// within one settle horizon).
        pairs: u8,
    },
    /// Advance simulated time by `millis` milliseconds.
    Advance {
        /// Milliseconds to run.
        millis: u16,
    },
    /// Cancel the `idx`-th submitted request (modulo the submit count).
    Cancel {
        /// Index into the submission order.
        idx: u8,
    },
    /// Run 60 s of simulated time — long enough on the reliable plane
    /// for every outstanding bounded request to finish, then drain.
    Settle,
}

/// Deliberately-injected **runtime** faults for the meta-tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetsimFault {
    /// The classical plane drops every message: FORWARD/TRACK never
    /// arrive, so no request can ever complete.
    DropAllMessages,
    /// An absurdly short end-node track-timeout: pairs are expired
    /// before their confirmation can possibly arrive (the timeout fires
    /// at 1 µs; even one hop of signalling takes longer).
    ExpirePairsInstantly,
}

/// Reference bookkeeping for one request.
#[derive(Clone, Debug)]
struct ReqModel {
    n: u64,
    accepted: bool,
    cancelled: bool,
    /// Confirmed deliveries at the head, as last observed.
    last_head: u64,
    /// Completion observed (from the app-event log).
    completed: bool,
}

/// The reference model: submission bookkeeping + the observation
/// horizon already checked (events/deliveries are append-only logs, so
/// each `check` pass only consumes the new suffix).
pub struct NetsimModel {
    requests: BTreeMap<u64, ReqModel>,
    submit_order: Vec<u64>,
    next_id: u64,
    events_seen: usize,
}

/// The system under test: the real full-stack simulation.
pub struct NetsimSystem {
    sim: NetSim,
    vc: CircuitId,
    head: NodeId,
    tail: NodeId,
}

/// The spec: 3-node chain, one circuit, seeded runtime.
pub struct NetsimSpec {
    seed: u64,
    fault: Option<NetsimFault>,
    wired: bool,
    chaos: bool,
    shards: Option<usize>,
}

impl NetsimSpec {
    /// A faithful runtime.
    pub fn new(seed: u64) -> Self {
        NetsimSpec {
            seed,
            fault: None,
            wired: false,
            chaos: false,
            shards: None,
        }
    }

    /// A runtime with an injected fault (meta-tests).
    pub fn with_fault(seed: u64, fault: NetsimFault) -> Self {
        NetsimSpec {
            seed,
            fault: Some(fault),
            wired: false,
            chaos: false,
            shards: None,
        }
    }

    /// A faithful runtime with `signalling_on_wire` enabled: PAIR_READY
    /// and INSTALL/TEARDOWN ride the classical plane, TRACKs are
    /// acknowledged end-to-end and retransmitted. The service contract
    /// the checker enforces is identical — wire signalling must be
    /// invisible to applications on a fault-free plane.
    pub fn wired(seed: u64) -> Self {
        NetsimSpec {
            seed,
            fault: None,
            wired: true,
            chaos: false,
            shards: None,
        }
    }

    /// A wired runtime under **component-fault chaos**: both links of
    /// the chain churn through a seed-derived stochastic MTBF/MTTR
    /// schedule for the first two simulated seconds. The checker keeps
    /// the safety half of the contract — at most `n` confirmed pairs
    /// per end, dense sequences, completion reported exactly once —
    /// and drops the liveness half (a request may legitimately starve
    /// while its hop is dark). After every settle (which runs far past
    /// the churn horizon) nothing may leak: zero live pairs, zero armed
    /// timers, zero retained correlator state.
    pub fn chaos(seed: u64) -> Self {
        NetsimSpec {
            seed,
            fault: None,
            wired: true,
            chaos: true,
            shards: None,
        }
    }

    /// A faithful runtime on the **sharded** conservative-lookahead
    /// engine (`NetworkBuilder::shards`). The service contract the
    /// checker enforces is identical — sharding is a pure engine swap
    /// whose trajectory is bit-identical to the single queue, so any
    /// divergence the model harness finds here is an engine bug, caught
    /// with a minimal operation sequence.
    pub fn sharded(seed: u64, shards: usize) -> Self {
        NetsimSpec {
            seed,
            fault: None,
            wired: false,
            chaos: false,
            shards: Some(shards),
        }
    }
}

impl NetsimSpec {
    fn check_against_system(
        &self,
        model: &mut NetsimModel,
        system: &NetsimSystem,
        settled: bool,
    ) -> Result<(), String> {
        let app = system.sim.app();

        // Consume the new app events.
        let events = &app.events;
        for (_, _, ev) in &events[model.events_seen..] {
            match ev {
                AppEvent::RequestAccepted(id) => {
                    let r = model
                        .requests
                        .get_mut(&id.0)
                        .ok_or_else(|| format!("acceptance for unknown request {id}"))?;
                    r.accepted = true;
                }
                AppEvent::RequestCompleted(id) => {
                    let r = model
                        .requests
                        .get_mut(&id.0)
                        .ok_or_else(|| format!("completion for unknown request {id}"))?;
                    if r.completed {
                        return Err(format!("request {id} completed twice"));
                    }
                    r.completed = true;
                }
                AppEvent::RequestRejected(id, reason) => {
                    if self.chaos {
                        // A request can land while its hop is dark;
                        // rejection is terminal, like a cancellation.
                        if let Some(r) = model.requests.get_mut(&id.0) {
                            r.cancelled = true;
                        }
                    } else {
                        return Err(format!("unexpected rejection of {id}: {reason}"));
                    }
                }
                _ => {}
            }
        }
        model.events_seen = events.len();

        for (id, r) in &mut model.requests {
            let rid = RequestId(*id);
            let head = count_confirmed(app, system.vc, system.head, rid);
            let tail = count_confirmed(app, system.vc, system.tail, rid);
            // At most n per end, never shrinking.
            for (name, count) in [("head", head), ("tail", tail)] {
                if count > r.n {
                    return Err(format!(
                        "request {rid}: {count} confirmed at {name} exceeds n={}",
                        r.n
                    ));
                }
            }
            if head < r.last_head {
                return Err(format!(
                    "request {rid}: confirmed count shrank {} -> {head}",
                    r.last_head
                ));
            }
            r.last_head = head;
            // Dense sequence numbers per end.
            for node in [system.head, system.tail] {
                let mut seqs: Vec<u64> = app
                    .deliveries
                    .iter()
                    .filter(|d| d.node == node && d.request == rid)
                    .map(|d| d.sequence)
                    .collect();
                seqs.sort_unstable();
                for (i, s) in seqs.iter().enumerate() {
                    if *s != i as u64 {
                        return Err(format!(
                            "request {rid}: sequence numbers at {node} not dense: {seqs:?}"
                        ));
                    }
                }
            }
            // Completion accounting: completed heads delivered exactly n
            // (unless cancelled early).
            if r.completed && !r.cancelled && head != r.n {
                return Err(format!(
                    "request {rid} completed with {head}/{} confirmed at the head",
                    r.n
                ));
            }
            // Liveness: only guaranteed on a fault-free runtime — under
            // component churn a request may starve while its hop is dark.
            if settled && r.accepted && !r.completed && !self.chaos {
                return Err(format!(
                    "request {rid} still incomplete after settling ({head}/{} at head)",
                    r.n
                ));
            }
        }

        if settled && system.sim.live_pairs() != 0 {
            return Err(format!(
                "{} entangled pairs leaked after settling",
                system.sim.live_pairs()
            ));
        }
        if settled && self.chaos {
            // The chaos bar: a settle runs far past the churn horizon,
            // so every fault schedule must end with nothing retained.
            if system.sim.armed_timers() != 0 {
                return Err(format!(
                    "{} timers still armed after settling under chaos",
                    system.sim.armed_timers()
                ));
            }
            if system.sim.retained_correlators() != 0 {
                return Err(format!(
                    "{} correlator records retained after settling under chaos",
                    system.sim.retained_correlators()
                ));
            }
        }
        Ok(())
    }
}

fn count_confirmed(
    app: &qn_netsim::AppHarness,
    vc: CircuitId,
    node: NodeId,
    request: RequestId,
) -> u64 {
    app.deliveries
        .iter()
        .filter(|d| {
            d.circuit == vc
                && d.node == node
                && d.request == request
                && matches!(
                    d.payload,
                    qn_netsim::Payload::Qubit { .. } | qn_netsim::Payload::Measurement { .. }
                )
        })
        .count() as u64
}

impl ModelSpec for NetsimSpec {
    type Op = NetOp;
    type Model = NetsimModel;
    type System = NetsimSystem;

    fn new_model(&self) -> NetsimModel {
        NetsimModel {
            requests: BTreeMap::new(),
            submit_order: Vec::new(),
            next_id: 1,
            events_seen: 0,
        }
    }

    fn new_system(&self) -> NetsimSystem {
        let topology = chain(3, HardwareParams::simulation(), FibreParams::lab_2m());
        let mut b = NetworkBuilder::new(topology).seed(self.seed);
        match self.fault {
            Some(NetsimFault::DropAllMessages) => {
                b = b.classical_faults(ClassicalFaults {
                    drop: 1.0,
                    ..ClassicalFaults::OFF
                });
            }
            Some(NetsimFault::ExpirePairsInstantly) => {
                b = b.track_timeout(SimDuration::from_micros(1));
            }
            None => {}
        }
        if self.wired {
            b = b.signalling_on_wire();
        }
        if let Some(n) = self.shards {
            b = b.shards(n);
        }
        if self.chaos {
            // Seed-derived stochastic churn on both hops for the first
            // two seconds; the track timeout reclaims endpoint pairs
            // whose confirmations died on a dark hop.
            b = b.track_timeout(SimDuration::from_secs(2)).fault_plan(
                FaultPlan::new()
                    .horizon(SimTime::ZERO + SimDuration::from_secs(2))
                    .link_mtbf(
                        NodeId(0),
                        NodeId(1),
                        SimDuration::from_millis(500),
                        SimDuration::from_millis(50),
                    )
                    .link_mtbf(
                        NodeId(1),
                        NodeId(2),
                        SimDuration::from_millis(500),
                        SimDuration::from_millis(50),
                    ),
            );
        }
        let mut sim = b.build();
        let (head, tail) = (NodeId(0), NodeId(2));
        let vc = sim
            .open_circuit(head, tail, 0.8, CutoffPolicy::short())
            .expect("chain circuit plans");
        NetsimSystem {
            sim,
            vc,
            head,
            tail,
        }
    }

    fn op_strategy(&self) -> BoxedStrategy<NetOp> {
        prop_oneof![
            (1u8..=3).prop_map(|pairs| NetOp::Submit { pairs }),
            (1u16..=50).prop_map(|millis| NetOp::Advance { millis }),
            any::<u8>().prop_map(|idx| NetOp::Cancel { idx }),
            Just(NetOp::Settle),
        ]
        .boxed()
    }

    fn precondition(&self, model: &NetsimModel, op: &NetOp) -> bool {
        match op {
            // Cancelling with no submissions is meaningless; skipping
            // (not failing) keeps subsequences runnable for shrinking.
            NetOp::Cancel { .. } => !model.submit_order.is_empty(),
            _ => true,
        }
    }

    fn apply(
        &self,
        model: &mut NetsimModel,
        system: &mut NetsimSystem,
        op: &NetOp,
    ) -> Result<(), String> {
        let now = system.sim.now();
        let mut settled = false;
        match op {
            NetOp::Submit { pairs } => {
                let id = model.next_id;
                model.next_id += 1;
                model.submit_order.push(id);
                model.requests.insert(
                    id,
                    ReqModel {
                        n: *pairs as u64,
                        accepted: false,
                        cancelled: false,
                        last_head: 0,
                        completed: false,
                    },
                );
                system.sim.submit_at(
                    now,
                    system.vc,
                    UserRequest {
                        id: RequestId(id),
                        head: Address {
                            node: system.head,
                            identifier: 0,
                        },
                        tail: Address {
                            node: system.tail,
                            identifier: 0,
                        },
                        min_fidelity: 0.8,
                        demand: Demand::Pairs {
                            n: *pairs as u64,
                            deadline: None,
                        },
                        request_type: RequestType::Keep,
                        final_state: None,
                    },
                );
                // Deliver the submission event itself.
                system.sim.run_until(now);
            }
            NetOp::Advance { millis } => {
                system
                    .sim
                    .run_until(now + SimDuration::from_millis(*millis as u64));
            }
            NetOp::Cancel { idx } => {
                let id = model.submit_order[*idx as usize % model.submit_order.len()];
                if let Some(r) = model.requests.get_mut(&id) {
                    // Cancelling an already-completed request is a no-op.
                    if !r.completed {
                        r.cancelled = true;
                    }
                }
                system.sim.cancel_at(now, system.vc, RequestId(id));
                system.sim.run_until(now);
            }
            NetOp::Settle => {
                system.sim.run_until(now + SimDuration::from_secs(60));
                settled = true;
            }
        }
        self.check_against_system(model, system, settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_ops;

    #[test]
    fn submit_settle_passes_on_the_faithful_runtime() {
        let ops = [
            NetOp::Submit { pairs: 2 },
            NetOp::Advance { millis: 20 },
            NetOp::Settle,
        ];
        let spec = NetsimSpec::new(11);
        match run_ops(&spec, &ops) {
            Ok(applied) => assert_eq!(applied, 3),
            Err(d) => panic!("faithful runtime diverged: step {} — {}", d.step, d.message),
        }
    }

    #[test]
    fn submit_settle_passes_with_signalling_on_wire() {
        // The same contract must hold when every signalling frame rides
        // the classical plane: installs walk the path, PAIR_READY pays
        // latency, TRACKs get acked. Applications cannot tell.
        let ops = [
            NetOp::Submit { pairs: 2 },
            NetOp::Advance { millis: 20 },
            NetOp::Submit { pairs: 1 },
            NetOp::Settle,
        ];
        let spec = NetsimSpec::wired(11);
        match run_ops(&spec, &ops) {
            Ok(applied) => assert_eq!(applied, 4),
            Err(d) => panic!("wired runtime diverged: step {} — {}", d.step, d.message),
        }
    }

    #[test]
    fn submit_settle_passes_under_component_chaos() {
        // Link churn during the first two seconds: safety (at most n,
        // dense sequences, exactly-once completion) plus zero-leak
        // after the settle must hold whatever the schedule does.
        let ops = [
            NetOp::Submit { pairs: 2 },
            NetOp::Advance { millis: 300 },
            NetOp::Submit { pairs: 1 },
            NetOp::Settle,
        ];
        let spec = NetsimSpec::chaos(11);
        match run_ops(&spec, &ops) {
            Ok(applied) => assert_eq!(applied, 4),
            Err(d) => panic!("chaos runtime diverged: step {} — {}", d.step, d.message),
        }
    }

    #[test]
    fn cancel_before_any_submit_is_skipped() {
        let ops = [NetOp::Cancel { idx: 0 }, NetOp::Settle];
        let spec = NetsimSpec::new(12);
        match run_ops(&spec, &ops) {
            Ok(applied) => assert_eq!(applied, 1, "cancel must be skipped"),
            Err(d) => panic!("diverged: step {} — {}", d.step, d.message),
        }
    }
}
