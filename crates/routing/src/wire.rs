//! Wire format of the routing signalling plane.
//!
//! The signalling protocol (§3.3, RSVP-TE style) installs and tears down
//! virtual circuits by messaging every node on the path. This module
//! pins the byte representation of those per-node messages on top of
//! the shared codec primitives of [`qn_net::wire`], in the same
//! versioned kind-byte registry (`0x20..=0x23`): a corrupted kind byte
//! cannot cross-decode a signalling frame as a data-plane message or
//! vice versa. The two acks exist for runtimes that carry signalling
//! over a lossy plane and retransmit unacknowledged hops.
//!
//! The runtime round-trips every install/teardown through this codec
//! (see `qn_netsim::runtime`), so the bytes — not the Rust structs —
//! are the authoritative interface, exactly as for FORWARD/TRACK.

use qn_net::ids::CircuitId;
use qn_net::routing_table::RoutingEntry;
use qn_net::wire::{
    put_header, read_header, DecodeError, Wire, WireReader, WireWriter, KIND_SIGNAL_INSTALL,
    KIND_SIGNAL_INSTALL_ACK, KIND_SIGNAL_TEARDOWN, KIND_SIGNAL_TEARDOWN_ACK,
};

/// A routing-signalling message to one node on a circuit's path.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SignalMessage {
    /// Install the circuit's routing entry at the receiving node.
    Install {
        /// The entry to install.
        entry: RoutingEntry,
    },
    /// Remove the circuit at the receiving node.
    Teardown {
        /// The circuit to remove.
        circuit: CircuitId,
    },
    /// Hop-by-hop acknowledgement of an INSTALL, sent back to the node
    /// the INSTALL came from. Installed (or already-installed) nodes
    /// always re-ack, so a lost ack is recovered by the retransmission.
    InstallAck {
        /// The acknowledged circuit.
        circuit: CircuitId,
    },
    /// Hop-by-hop acknowledgement of a TEARDOWN.
    TeardownAck {
        /// The acknowledged circuit.
        circuit: CircuitId,
    },
}

impl SignalMessage {
    /// Append this message's complete frame (header + payload) to `buf`.
    pub fn encode_to(&self, buf: &mut Vec<u8>) {
        let mut w = WireWriter::new(buf);
        match self {
            SignalMessage::Install { entry } => {
                put_header(&mut w, KIND_SIGNAL_INSTALL);
                entry.encode(&mut w);
            }
            SignalMessage::Teardown { circuit } => {
                put_header(&mut w, KIND_SIGNAL_TEARDOWN);
                circuit.encode(&mut w);
            }
            SignalMessage::InstallAck { circuit } => {
                put_header(&mut w, KIND_SIGNAL_INSTALL_ACK);
                circuit.encode(&mut w);
            }
            SignalMessage::TeardownAck { circuit } => {
                put_header(&mut w, KIND_SIGNAL_TEARDOWN_ACK);
                circuit.encode(&mut w);
            }
        }
    }

    /// This message's complete wire frame.
    pub fn wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_to(&mut buf);
        buf
    }

    /// Decode a complete frame (total; typed errors; rejects data-plane
    /// and link-layer kind bytes as [`DecodeError::UnknownKind`]).
    pub fn decode(bytes: &[u8]) -> Result<SignalMessage, DecodeError> {
        let mut r = WireReader::new(bytes);
        let msg = match read_header(&mut r)? {
            KIND_SIGNAL_INSTALL => SignalMessage::Install {
                entry: Wire::decode(&mut r)?,
            },
            KIND_SIGNAL_TEARDOWN => SignalMessage::Teardown {
                circuit: Wire::decode(&mut r)?,
            },
            KIND_SIGNAL_INSTALL_ACK => SignalMessage::InstallAck {
                circuit: Wire::decode(&mut r)?,
            },
            KIND_SIGNAL_TEARDOWN_ACK => SignalMessage::TeardownAck {
                circuit: Wire::decode(&mut r)?,
            },
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// A borrowed, fully validated view of one signalling frame.
///
/// `parse` agrees with [`SignalMessage::decode`] exactly — same inputs
/// succeed, failing inputs produce the same [`DecodeError`] (including
/// truncation byte offsets) — pinned by the property suite in
/// `crates/routing/tests/prop_signal_wire.rs`. Both payloads lead with
/// the circuit id, so demuxing never materialises the entry.
#[derive(Clone, Copy, Debug)]
pub struct SignalMessageView<'a> {
    frame: &'a [u8],
    kind: u8,
}

impl<'a> SignalMessageView<'a> {
    /// Validate a complete frame and borrow it as a view.
    pub fn parse(bytes: &'a [u8]) -> Result<SignalMessageView<'a>, DecodeError> {
        let mut r = WireReader::new(bytes);
        let kind = match read_header(&mut r)? {
            kind @ KIND_SIGNAL_INSTALL => {
                // Skip-validate the RoutingEntry layout with the exact
                // per-field offsets of the owned decode.
                r.skip(8)?;
                match r.get_u8()? {
                    0 => {}
                    1 => r.skip_fields(&[4, 4])?,
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "upstream",
                            value,
                        })
                    }
                }
                match r.get_u8()? {
                    0 => {}
                    1 => r.skip_fields(&[4, 4, 8, 8])?,
                    value => {
                        return Err(DecodeError::BadTag {
                            field: "downstream",
                            value,
                        })
                    }
                }
                r.skip_fields(&[8, 8])?;
                kind
            }
            kind @ (KIND_SIGNAL_TEARDOWN | KIND_SIGNAL_INSTALL_ACK | KIND_SIGNAL_TEARDOWN_ACK) => {
                r.skip(8)?;
                kind
            }
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok(SignalMessageView { frame: bytes, kind })
    }

    /// Whether this is an INSTALL frame.
    pub fn is_install(&self) -> bool {
        self.kind == KIND_SIGNAL_INSTALL
    }

    /// The circuit this frame signals for (both payloads lead with it).
    pub fn circuit(&self) -> CircuitId {
        CircuitId(u64::from_le_bytes(
            self.frame[2..10].try_into().expect("validated at parse"),
        ))
    }

    /// Materialise the owned message.
    pub fn to_message(&self) -> SignalMessage {
        // The layout was validated in full at parse time, so re-reading
        // the payload through the field codecs cannot fail.
        let mut r = WireReader::new(self.frame);
        let _ = read_header(&mut r);
        match self.kind {
            KIND_SIGNAL_INSTALL => SignalMessage::Install {
                entry: Wire::decode(&mut r).expect("validated at parse"),
            },
            KIND_SIGNAL_INSTALL_ACK => SignalMessage::InstallAck {
                circuit: self.circuit(),
            },
            KIND_SIGNAL_TEARDOWN_ACK => SignalMessage::TeardownAck {
                circuit: self.circuit(),
            },
            _ => SignalMessage::Teardown {
                circuit: self.circuit(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_link::LinkLabel;
    use qn_net::routing_table::{DownstreamHop, UpstreamHop};
    use qn_sim::{NodeId, SimDuration};

    fn entry() -> RoutingEntry {
        RoutingEntry {
            circuit: CircuitId(5),
            upstream: Some(UpstreamHop {
                node: NodeId(1),
                label: LinkLabel(9),
            }),
            downstream: Some(DownstreamHop {
                node: NodeId(3),
                label: LinkLabel(2),
                min_fidelity: 0.93,
                max_lpr: 41.5,
            }),
            max_eer: 10.25,
            cutoff: SimDuration::from_millis(120),
        }
    }

    #[test]
    fn install_round_trip() {
        for e in [
            entry(),
            RoutingEntry {
                upstream: None,
                cutoff: SimDuration::MAX,
                ..entry()
            },
            RoutingEntry {
                downstream: None,
                ..entry()
            },
        ] {
            let m = SignalMessage::Install { entry: e };
            assert_eq!(SignalMessage::decode(&m.wire_bytes()), Ok(m));
        }
    }

    #[test]
    fn view_matches_owned_decode() {
        let msgs = [
            SignalMessage::Install { entry: entry() },
            SignalMessage::Install {
                entry: RoutingEntry {
                    upstream: None,
                    downstream: None,
                    ..entry()
                },
            },
            SignalMessage::Teardown {
                circuit: CircuitId(77),
            },
            SignalMessage::InstallAck {
                circuit: CircuitId(78),
            },
            SignalMessage::TeardownAck {
                circuit: CircuitId(79),
            },
        ];
        fn circuit_of(m: SignalMessage) -> CircuitId {
            match m {
                SignalMessage::Install { entry } => entry.circuit,
                SignalMessage::Teardown { circuit }
                | SignalMessage::InstallAck { circuit }
                | SignalMessage::TeardownAck { circuit } => circuit,
            }
        }
        for m in msgs {
            let bytes = m.wire_bytes();
            let view = SignalMessageView::parse(&bytes).unwrap();
            assert_eq!(view.to_message(), m);
            assert_eq!(view.circuit(), circuit_of(m));
            for len in 0..bytes.len() {
                assert_eq!(
                    SignalMessageView::parse(&bytes[..len]).map(|v| v.circuit()),
                    SignalMessage::decode(&bytes[..len]).map(circuit_of),
                    "prefix of {len} bytes"
                );
            }
        }
    }

    #[test]
    fn teardown_round_trip_and_framing() {
        let m = SignalMessage::Teardown {
            circuit: CircuitId(77),
        };
        let bytes = m.wire_bytes();
        assert_eq!(SignalMessage::decode(&bytes), Ok(m));
        // Truncations are typed errors, never panics.
        for len in 0..bytes.len() {
            assert!(SignalMessage::decode(&bytes[..len]).is_err());
        }
        // A data-plane frame is a foreign kind for this plane.
        let fwd = qn_net::Message::Expire(qn_net::Expire {
            circuit: CircuitId(1),
            origin: qn_net::Correlator {
                node_a: NodeId(0),
                node_b: NodeId(1),
                seq: 0,
            },
        })
        .wire_bytes();
        assert!(matches!(
            SignalMessage::decode(&fwd),
            Err(DecodeError::UnknownKind(_))
        ));
    }
}
