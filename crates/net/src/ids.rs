//! Identifiers of the quantum network protocol (Appendix C.1).

use qn_link::EntanglementId;
use qn_sim::NodeId;
use std::fmt;

/// Opaque circuit identifier allocated by the signalling protocol. The
/// QNP only uses it to associate messages with circuits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CircuitId(pub u64);

impl fmt::Display for CircuitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// Identifies a request between a pair of addresses; assigned by the
/// application. Duplicates on the same circuit are rejected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A communication end-point: locator (node) + identifier (port-like),
/// the paper's locator/identifier addressing scheme.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Address {
    /// The node (locator).
    pub node: NodeId,
    /// End-point within the node (identifier).
    pub identifier: u32,
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.identifier)
    }
}

/// The link-pair correlator (Appendix C.1): the link layer's entanglement
/// identifier, meaningful to the pair of nodes sharing the link.
pub type Correlator = EntanglementId;

/// An epoch: a version of the set of active requests on a circuit
/// (activated through TRACK messages; see paper §4.1 "Aggregation").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The successor epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Opaque handle to a physical pair held by the runtime (maps to the
/// hardware pair store). The protocol state machine passes it through to
/// outputs so the runtime can act on the right qubits; it never
/// interprets it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairHandle(pub u64);

/// A reference to a pair the protocol holds on some circuit: its
/// link-layer correlator plus the runtime handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairRef {
    /// Link-layer correlator of the pair on its link.
    pub correlator: Correlator,
    /// Runtime handle to the physical pair.
    pub handle: PairHandle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", CircuitId(3)), "vc3");
        assert_eq!(format!("{}", RequestId(9)), "req9");
        assert_eq!(
            format!(
                "{}",
                Address {
                    node: NodeId(2),
                    identifier: 5
                }
            ),
            "n2:5"
        );
        assert_eq!(format!("{}", Epoch(4)), "e4");
    }

    #[test]
    fn epoch_advances() {
        assert_eq!(Epoch(0).next(), Epoch(1));
        assert!(Epoch(1) > Epoch(0));
    }
}
