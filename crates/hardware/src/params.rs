//! Hardware parameters — Appendix B, Tables 1 and 2 of the paper.
//!
//! Two named parameter sets are provided:
//!
//! * [`HardwareParams::simulation`] — the optimistic configuration used for
//!   every experiment except Fig 11 ("parameters slightly better than
//!   currently achievable … higher fidelities, rates comparable to current
//!   hardware"). All qubits behave as communication (electron) qubits.
//! * [`HardwareParams::near_term`] — the near-future configuration of
//!   Fig 11: one communication qubit per node, carbon storage qubits with
//!   nuclear-spin dephasing during entanglement attempts.
//!
//! Durations are in seconds throughout (converted to [`SimDuration`] at the
//! edges); this keeps the parameter tables readable against the paper.

use qn_sim::SimDuration;

/// Fidelity and duration of one gate type (a row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateSpec {
    /// Average output fidelity of the operation.
    pub fidelity: f64,
    /// Wall-clock duration in seconds.
    pub duration: f64,
}

impl GateSpec {
    /// The duration as a simulation duration.
    pub fn sim_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.duration)
    }
}

/// Readout fidelities may differ by outcome on NV hardware (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutSpec {
    /// Probability of correctly reporting `|0⟩` when the state is `|0⟩`.
    pub fidelity0: f64,
    /// Probability of correctly reporting `|1⟩` when the state is `|1⟩`.
    pub fidelity1: f64,
    /// Readout duration in seconds.
    pub duration: f64,
}

impl ReadoutSpec {
    /// The duration as a simulation duration.
    pub fn sim_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.duration)
    }
}

/// Table 1 — quantum gate parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateParams {
    /// Electron single-qubit gate.
    pub electron_single: GateSpec,
    /// Electron–carbon two-qubit gate (controlled-√χ for near-term).
    pub two_qubit: GateSpec,
    /// Carbon Rot-Z gate (near-term only).
    pub carbon_rot_z: Option<GateSpec>,
    /// Electron initialisation into `|0⟩`.
    pub electron_init: GateSpec,
    /// Carbon initialisation into `|0⟩` (near-term only).
    pub carbon_init: Option<GateSpec>,
    /// Electron readout.
    pub readout: ReadoutSpec,
}

/// Table 2 — memory, photonics and detection parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareParams {
    /// Gate parameter block (Table 1).
    pub gates: GateParams,
    /// Electron relaxation time T1, seconds (`>1 h` in both columns).
    pub electron_t1: f64,
    /// Electron dephasing time T2*, seconds. This is the knob swept in
    /// Fig 10a,b.
    pub electron_t2: f64,
    /// Carbon T1 (near-term only), seconds.
    pub carbon_t1: Option<f64>,
    /// Carbon T2* (near-term only), seconds.
    pub carbon_t2: Option<f64>,
    /// Nuclear-spin coupling Δω, rad/s (near-term only).
    pub delta_omega: Option<f64>,
    /// Electron reset duration τ_d during attempts, seconds (near-term).
    pub tau_d: Option<f64>,
    /// Detection window τ_w, seconds.
    pub tau_w: f64,
    /// Photon emission time τ_e, seconds.
    pub tau_e: f64,
    /// Optical phase stability Δφ, radians.
    pub delta_phi: f64,
    /// Double-excitation probability.
    pub p_double_excitation: f64,
    /// Zero-phonon-line emission probability.
    pub p_zero_phonon: f64,
    /// Photon collection efficiency.
    pub collection_efficiency: f64,
    /// Detector dark-count rate, counts/s.
    pub dark_count_rate: f64,
    /// Detector efficiency.
    pub p_detection: f64,
    /// Two-photon indistinguishability (visibility).
    pub visibility: f64,
    /// Floor on the midpoint-heralding attempt cycle, seconds.
    ///
    /// **Calibration constant** (see DESIGN.md §7): the paper's link layer
    /// triggers attempts at a fixed MHP period; we pick the floor so that
    /// a fidelity-0.95 pair over 2 m of fibre takes ≈10 ms on average,
    /// anchoring our Fig 5 to the paper's.
    pub mhp_cycle_floor: f64,
}

/// Scale factor of the per-attempt nuclear dephasing model (DESIGN.md §7):
/// `λ_per_attempt = SCALE · α · (Δω·τ_d)²`. Chosen so the Fig 11 scenario
/// stays functional with a hand-tuned cutoff, mirroring the paper's
/// hand-tuned near-term configuration.
pub const NUCLEAR_DEPHASING_SCALE: f64 = 0.1e-2;

impl HardwareParams {
    /// The optimistic "Simulation" column of Tables 1–2.
    pub fn simulation() -> Self {
        HardwareParams {
            gates: GateParams {
                electron_single: GateSpec {
                    fidelity: 1.0,
                    duration: 5e-9,
                },
                two_qubit: GateSpec {
                    fidelity: 0.998,
                    duration: 500e-6,
                },
                carbon_rot_z: None,
                electron_init: GateSpec {
                    fidelity: 0.99,
                    duration: 2e-6,
                },
                carbon_init: None,
                readout: ReadoutSpec {
                    fidelity0: 0.998,
                    fidelity1: 0.998,
                    duration: 3.7e-6,
                },
            },
            electron_t1: 3600.0, // ">1 h"
            electron_t2: 60.0,
            carbon_t1: None,
            carbon_t2: None,
            delta_omega: None,
            tau_d: None,
            tau_w: 25e-9,
            tau_e: 6.0e-9,
            delta_phi: 2.0_f64.to_radians(),
            p_double_excitation: 0.0,
            p_zero_phonon: 0.75,
            collection_efficiency: 20.0e-3,
            dark_count_rate: 20.0,
            p_detection: 0.8,
            visibility: 1.0,
            mhp_cycle_floor: 11.5e-6,
        }
    }

    /// The "Near-term" column of Tables 1–2 (Fig 11 configuration).
    pub fn near_term() -> Self {
        HardwareParams {
            gates: GateParams {
                electron_single: GateSpec {
                    fidelity: 1.0,
                    duration: 5e-9,
                },
                two_qubit: GateSpec {
                    fidelity: 0.992,
                    duration: 500e-6,
                },
                carbon_rot_z: Some(GateSpec {
                    fidelity: 1.0,
                    duration: 20e-6,
                }),
                electron_init: GateSpec {
                    fidelity: 0.99,
                    duration: 2e-6,
                },
                carbon_init: Some(GateSpec {
                    fidelity: 0.95,
                    duration: 300e-6,
                }),
                readout: ReadoutSpec {
                    fidelity0: 0.95,
                    fidelity1: 0.995,
                    duration: 3.7e-6,
                },
            },
            electron_t1: 3600.0,
            electron_t2: 1.46,
            carbon_t1: Some(360.0), // "> 6 m"
            carbon_t2: Some(60.0),
            delta_omega: Some(2.0 * std::f64::consts::PI * 377e3),
            tau_d: Some(82e-9),
            tau_w: 25e-9,
            tau_e: 6.48e-9,
            delta_phi: 10.6_f64.to_radians(),
            p_double_excitation: 0.04,
            p_zero_phonon: 0.46,
            collection_efficiency: 4.38e-3,
            dark_count_rate: 20.0,
            p_detection: 0.8,
            visibility: 0.9,
            mhp_cycle_floor: 11.5e-6,
        }
    }

    /// A copy with a different electron T2* — the Fig 10a,b sweep knob.
    pub fn with_electron_t2(mut self, t2: f64) -> Self {
        self.electron_t2 = t2;
        self
    }

    /// Per-attempt dephasing parameter applied to carbon qubits stored on
    /// a device while it runs entanglement attempts with bright-state
    /// parameter `alpha` (near-term only; zero when Δω/τ_d are absent).
    pub fn nuclear_dephasing_per_attempt(&self, alpha: f64) -> f64 {
        match (self.delta_omega, self.tau_d) {
            (Some(dw), Some(td)) => {
                let phase = dw * td;
                (NUCLEAR_DEPHASING_SCALE * alpha * phase * phase).min(0.5)
            }
            _ => 0.0,
        }
    }
}

/// Optical fibre model shared by the quantum and classical channels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FibreParams {
    /// Length in metres.
    pub length_m: f64,
    /// Attenuation in dB/km (5 dB/km visible in the lab scenarios; 0.5
    /// dB/km at telecom wavelength for the 25 km near-term links).
    pub attenuation_db_per_km: f64,
    /// Signal velocity in fibre, m/s.
    pub speed_m_per_s: f64,
}

impl FibreParams {
    /// Lab fibre: 2 m, no telecom conversion (5 dB/km).
    pub fn lab_2m() -> Self {
        FibreParams {
            length_m: 2.0,
            attenuation_db_per_km: 5.0,
            speed_m_per_s: 2.0e8,
        }
    }

    /// Deployed telecom fibre of the given length (0.5 dB/km).
    pub fn telecom(length_m: f64) -> Self {
        FibreParams {
            length_m,
            attenuation_db_per_km: 0.5,
            speed_m_per_s: 2.0e8,
        }
    }

    /// Photon survival probability over `metres` of this fibre.
    pub fn transmissivity(&self, metres: f64) -> f64 {
        let db = self.attenuation_db_per_km * metres / 1000.0;
        10f64.powf(-db / 10.0)
    }

    /// One-way propagation delay over `metres`.
    pub fn delay_over(&self, metres: f64) -> SimDuration {
        SimDuration::from_secs_f64(metres / self.speed_m_per_s)
    }

    /// One-way propagation delay over the full length.
    pub fn propagation_delay(&self) -> SimDuration {
        self.delay_over(self.length_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_simulation_column() {
        let p = HardwareParams::simulation();
        assert_eq!(p.gates.electron_single.fidelity, 1.0);
        assert_eq!(p.gates.electron_single.duration, 5e-9);
        assert_eq!(p.gates.two_qubit.fidelity, 0.998);
        assert_eq!(p.gates.two_qubit.duration, 500e-6);
        assert!(p.gates.carbon_rot_z.is_none());
        assert_eq!(p.gates.electron_init.fidelity, 0.99);
        assert_eq!(p.gates.electron_init.duration, 2e-6);
        assert!(p.gates.carbon_init.is_none());
        assert_eq!(p.gates.readout.fidelity0, 0.998);
        assert_eq!(p.gates.readout.fidelity1, 0.998);
        assert_eq!(p.gates.readout.duration, 3.7e-6);
    }

    #[test]
    fn table1_near_term_column() {
        let p = HardwareParams::near_term();
        assert_eq!(p.gates.two_qubit.fidelity, 0.992);
        assert_eq!(p.gates.carbon_rot_z.unwrap().duration, 20e-6);
        assert_eq!(p.gates.carbon_init.unwrap().fidelity, 0.95);
        assert_eq!(p.gates.carbon_init.unwrap().duration, 300e-6);
        assert_eq!(p.gates.readout.fidelity0, 0.95);
        assert_eq!(p.gates.readout.fidelity1, 0.995);
    }

    #[test]
    fn table2_simulation_column() {
        let p = HardwareParams::simulation();
        assert_eq!(p.electron_t2, 60.0);
        assert!(p.electron_t1 >= 3600.0);
        assert_eq!(p.tau_w, 25e-9);
        assert_eq!(p.tau_e, 6.0e-9);
        assert!((p.delta_phi - 2.0_f64.to_radians()).abs() < 1e-12);
        assert_eq!(p.p_double_excitation, 0.0);
        assert_eq!(p.p_zero_phonon, 0.75);
        assert_eq!(p.collection_efficiency, 20.0e-3);
        assert_eq!(p.dark_count_rate, 20.0);
        assert_eq!(p.p_detection, 0.8);
        assert_eq!(p.visibility, 1.0);
    }

    #[test]
    fn table2_near_term_column() {
        let p = HardwareParams::near_term();
        assert_eq!(p.electron_t2, 1.46);
        assert_eq!(p.carbon_t2, Some(60.0));
        assert!((p.delta_omega.unwrap() - 2.0 * std::f64::consts::PI * 377e3).abs() < 1.0);
        assert_eq!(p.tau_d, Some(82e-9));
        assert_eq!(p.tau_e, 6.48e-9);
        assert!((p.delta_phi - 10.6_f64.to_radians()).abs() < 1e-12);
        assert_eq!(p.p_double_excitation, 0.04);
        assert_eq!(p.p_zero_phonon, 0.46);
        assert_eq!(p.collection_efficiency, 4.38e-3);
        assert_eq!(p.visibility, 0.9);
    }

    #[test]
    fn fibre_transmissivity() {
        let lab = FibreParams::lab_2m();
        // 1 m at 5 dB/km = 0.005 dB.
        let t = lab.transmissivity(1.0);
        assert!((t - 10f64.powf(-0.0005)).abs() < 1e-12);
        let telecom = FibreParams::telecom(25_000.0);
        // 12.5 km at 0.5 dB/km = 6.25 dB.
        let t2 = telecom.transmissivity(12_500.0);
        assert!((t2 - 10f64.powf(-0.625)).abs() < 1e-12);
        assert!(t2 < t);
    }

    #[test]
    fn fibre_delay() {
        let telecom = FibreParams::telecom(25_000.0);
        let d = telecom.propagation_delay();
        assert!((d.as_secs_f64() - 1.25e-4).abs() < 1e-9);
    }

    #[test]
    fn nuclear_dephasing_only_with_near_term() {
        let sim = HardwareParams::simulation();
        assert_eq!(sim.nuclear_dephasing_per_attempt(0.3), 0.0);
        let nt = HardwareParams::near_term();
        let l = nt.nuclear_dephasing_per_attempt(0.3);
        assert!(l > 0.0 && l < 0.01, "per-attempt dephasing {l}");
        // Scales with alpha.
        assert!(nt.nuclear_dephasing_per_attempt(0.4) > l);
    }

    #[test]
    fn t2_sweep_helper() {
        let p = HardwareParams::simulation().with_electron_t2(1.6);
        assert_eq!(p.electron_t2, 1.6);
    }
}
