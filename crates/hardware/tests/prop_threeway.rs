//! Three-way representation-agreement suite (hardware level): two
//! [`PairStore`]s — one on the Bell-diagonal fast path, one on dense
//! density matrices — driven through identical random sequences of
//! decoherence, Pauli-frame, swap, distillation and measurement
//! operations, with the two-bit Pauli-frame algebra as the third,
//! independent reference for the announced Bell state.
//!
//! After every operation the suite asserts, for every live pair:
//!
//! * all four Bell-diagonal coefficients agree across representations
//!   to 1e-12 (so do trace, purity and both marginal measurement
//!   probabilities);
//! * sampled outcomes (swap announcements, distillation verdicts,
//!   readouts) are *identical* — the representations follow the same
//!   trajectory, not merely the same statistics;
//! * both stores' announced state equals the Pauli-frame prediction.
//!
//! The pairs live on short-T1/T2 memories and every op advances
//! simulated time, so amplitude damping — the channel that forces the
//! fast path to carry population asymmetries — is exercised heavily.

use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::pairs::{PairId, PairStore, SwapNoise};
use qn_hardware::params::HardwareParams;
use qn_hardware::StateRep;
use qn_quantum::bell::BellState;
use qn_quantum::gates::Pauli;
use qn_quantum::DensityMatrix;
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};
use qn_testkit::{ModelSpec, ModelTest};

const EPS: f64 = 1e-12;

/// P spans nodes (0,1); Q spans (1,2) — the swap partner; R spans
/// (0,1) in parallel with P — the distillation partner.
const SPANS: [(u32, u32); 3] = [(0, 1), (1, 2), (0, 1)];
/// Short memories: damping and dephasing are both significant on the
/// advance steps below.
const T1: f64 = 0.9;
const T2: f64 = 0.6;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// A tracked Pauli correction on one end of one pair.
    Pauli { pair: u8, end: bool, which: u8 },
    /// Extra (nuclear-spin) dephasing on one end.
    Dephase { pair: u8, end: bool, lambda: f64 },
    /// Depolarize one end (the abandoned-end re-initialisation path).
    DepolEnd { pair: u8, end: bool, p: f64 },
    /// Advance simulated time and charge T1/T2 decay on one pair.
    Advance { pair: u8, dt_ms: u16 },
    /// Entanglement swap of P and Q at node 1; the world then resets
    /// with fresh pairs derived from `fresh`.
    Swap { fresh: u8 },
    /// BBPSSW distillation keeping P, sacrificing R; then reset.
    Distill { fresh: u8 },
    /// Measure both ends of P (basis 0 = X, 1 = Y, 2 = Z); then reset.
    Measure { basis: u8, fresh: u8 },
}

impl Op {
    fn pair_index(p: u8) -> usize {
        (p % 3) as usize
    }
}

/// The Pauli-frame reference: the announced Bell state a perfect
/// tracker assigns to each of the three slots.
#[derive(Clone, Copy, Debug)]
struct Frames([BellState; 3]);

struct World {
    bell: PairStore,
    dense: PairStore,
    rng_bell: SimRng,
    rng_dense: SimRng,
    now: SimTime,
    /// `(bell id, dense id)` per slot.
    ids: [(PairId, PairId); 3],
    noise: SwapNoise,
    params: HardwareParams,
}

/// Werner state of fidelity `f`, rotated into the `announced` frame.
fn werner_in_frame(f: f64, announced: BellState) -> DensityMatrix {
    let w = qn_quantum::formulas::werner_param(f);
    let phi = BellState::PHI_PLUS.density();
    let mixed = DensityMatrix::maximally_mixed(2);
    let mut state =
        DensityMatrix::from_matrix(&phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w));
    let corr = BellState::PHI_PLUS.correction_to(announced);
    if corr != Pauli::I {
        state.apply_unitary(&corr.matrix(), &[1]);
    }
    state
}

/// The deterministic fresh frames/fidelities a reset op installs.
fn fresh_spec(fresh: u8) -> ([BellState; 3], f64) {
    let frames = [
        BellState::from_index((fresh & 0b11) as usize),
        BellState::from_index(((fresh >> 2) & 0b11) as usize),
        BellState::from_index(((fresh >> 4) & 0b11) as usize),
    ];
    let f = 0.7 + 0.25 * ((fresh >> 6) as f64 / 3.0);
    (frames, f)
}

impl World {
    fn create_slot(&mut self, slot: usize, announced: BellState, f: f64) {
        let (na, nb) = SPANS[slot];
        let state = werner_in_frame(f, announced);
        let ends = [
            (NodeId(na), QubitId(slot as u32), T1, T2),
            (NodeId(nb), QubitId(slot as u32), T1, T2),
        ];
        let b = self.bell.create(self.now, state.clone(), announced, ends);
        let d = self.dense.create(self.now, state, announced, ends);
        self.ids[slot] = (b, d);
    }

    fn reset_slots(&mut self, slots: &[usize], fresh: u8, frames: &mut Frames) {
        let (new_frames, f) = fresh_spec(fresh);
        for &slot in slots {
            let (b, d) = self.ids[slot];
            self.bell.discard(b);
            self.dense.discard(d);
            self.create_slot(slot, new_frames[slot], f);
            frames.0[slot] = new_frames[slot];
        }
    }
}

struct ThreeWaySpec;

impl ModelSpec for ThreeWaySpec {
    type Op = Op;
    type Model = Frames;
    type System = World;

    fn new_model(&self) -> Frames {
        Frames([
            BellState::PHI_PLUS,
            BellState::PSI_PLUS,
            BellState::PSI_MINUS,
        ])
    }

    fn new_system(&self) -> World {
        let params = HardwareParams::simulation();
        let mut world = World {
            bell: PairStore::with_rep(StateRep::Bell),
            dense: PairStore::with_rep(StateRep::Dm),
            rng_bell: SimRng::from_seed(0xB0B),
            rng_dense: SimRng::from_seed(0xB0B),
            now: SimTime::ZERO,
            ids: [(PairId(0), PairId(0)); 3],
            noise: SwapNoise::from_params(&params),
            params,
        };
        let frames = self.new_model();
        for slot in 0..3 {
            world.create_slot(slot, frames.0[slot], 0.85);
        }
        world
    }

    fn op_strategy(&self) -> BoxedStrategy<Op> {
        prop_oneof![
            (0u8..3, any::<bool>(), 0u8..3).prop_map(|(pair, end, which)| Op::Pauli {
                pair,
                end,
                which
            }),
            (0u8..3, any::<bool>(), 0.0f64..0.5).prop_map(|(pair, end, lambda)| Op::Dephase {
                pair,
                end,
                lambda
            }),
            (0u8..3, any::<bool>(), 0.0f64..1.0).prop_map(|(pair, end, p)| Op::DepolEnd {
                pair,
                end,
                p
            }),
            (0u8..3, 1u16..300).prop_map(|(pair, dt_ms)| Op::Advance { pair, dt_ms }),
            any::<u8>().prop_map(|fresh| Op::Swap { fresh }),
            any::<u8>().prop_map(|fresh| Op::Distill { fresh }),
            (0u8..3, any::<u8>()).prop_map(|(basis, fresh)| Op::Measure { basis, fresh }),
        ]
        .boxed()
    }

    fn apply(&self, frames: &mut Frames, w: &mut World, op: &Op) -> Result<(), String> {
        match *op {
            Op::Pauli { pair, end, which } => {
                let slot = Op::pair_index(pair);
                let (b, d) = w.ids[slot];
                let (na, nb) = SPANS[slot];
                let node = NodeId(if end { nb } else { na });
                let pauli = match which {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                w.bell.apply_pauli(b, node, pauli, w.now);
                w.dense.apply_pauli(d, node, pauli, w.now);
                let f = frames.0[slot];
                frames.0[slot] =
                    BellState::from_bits(f.x ^ (pauli != Pauli::Z), f.z ^ (pauli != Pauli::X));
            }
            Op::Dephase { pair, end, lambda } => {
                let slot = Op::pair_index(pair);
                let (b, d) = w.ids[slot];
                let (na, nb) = SPANS[slot];
                let node = NodeId(if end { nb } else { na });
                w.bell.apply_dephasing(b, node, lambda);
                w.dense.apply_dephasing(d, node, lambda);
            }
            Op::DepolEnd { pair, end, p } => {
                let slot = Op::pair_index(pair);
                let (b, d) = w.ids[slot];
                let (na, nb) = SPANS[slot];
                let node = NodeId(if end { nb } else { na });
                w.bell.depolarize_end(b, node, p);
                w.dense.depolarize_end(d, node, p);
            }
            Op::Advance { pair, dt_ms } => {
                let slot = Op::pair_index(pair);
                let (b, d) = w.ids[slot];
                w.now = w.now + SimDuration::from_millis(u64::from(dt_ms));
                w.bell.advance(b, w.now);
                w.dense.advance(d, w.now);
            }
            Op::Swap { fresh } => {
                let (pb, pd) = w.ids[0];
                let (qb, qd) = w.ids[1];
                let noise = w.noise;
                let rb = w
                    .bell
                    .swap(pb, qb, NodeId(1), w.now, &noise, &mut w.rng_bell);
                let rd = w
                    .dense
                    .swap(pd, qd, NodeId(1), w.now, &noise, &mut w.rng_dense);
                if rb.outcome != rd.outcome {
                    return Err(format!(
                        "swap outcomes diverge: bell {} vs dense {}",
                        rb.outcome, rd.outcome
                    ));
                }
                let expect = frames.0[0].combine(frames.0[1], rb.outcome);
                for (store, res, tag) in [(&w.bell, &rb, "bell"), (&w.dense, &rd, "dense")] {
                    let announced = store.get(res.new_pair).expect("joined pair").announced;
                    if announced != expect {
                        return Err(format!(
                            "{tag} post-swap announced {announced} vs frame {expect}"
                        ));
                    }
                }
                compare_pair(
                    w.bell.get(rb.new_pair),
                    w.dense.get(rd.new_pair),
                    "post-swap",
                )?;
                w.bell.discard(rb.new_pair);
                w.dense.discard(rd.new_pair);
                // Recreate P and Q (R is untouched: only pass its slot
                // through so the frame stays in sync).
                w.reset_slots(&[0, 1], fresh, frames);
            }
            Op::Distill { fresh } => {
                let (pb, pd) = w.ids[0];
                let (rb, rd) = w.ids[2];
                let noise = w.noise;
                let resb = w.bell.distill(pb, rb, w.now, &noise, &mut w.rng_bell);
                let resd = w.dense.distill(pd, rd, w.now, &noise, &mut w.rng_dense);
                if resb.success != resd.success {
                    return Err(format!(
                        "distill verdicts diverge: bell {} vs dense {}",
                        resb.success, resd.success
                    ));
                }
                compare_pair(
                    w.bell.get(resb.kept),
                    w.dense.get(resd.kept),
                    "post-distill",
                )?;
                // Both representations leave the kept pair in the Φ+
                // frame.
                frames.0[0] = BellState::PHI_PLUS;
                let announced = w.bell.get(resb.kept).expect("kept").announced;
                if announced != BellState::PHI_PLUS {
                    return Err("distill must leave the kept pair in the Φ+ frame".into());
                }
                w.bell.discard(resb.kept);
                w.dense.discard(resd.kept);
                w.reset_slots(&[0, 2], fresh, frames);
            }
            Op::Measure { basis, fresh } => {
                let (pb, pd) = w.ids[0];
                let basis = match basis {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                };
                let readout = w.params.gates.readout;
                for node in [NodeId(0), NodeId(1)] {
                    let mb = w
                        .bell
                        .measure_end(pb, node, basis, &readout, w.now, &mut w.rng_bell);
                    let md =
                        w.dense
                            .measure_end(pd, node, basis, &readout, w.now, &mut w.rng_dense);
                    if (mb.true_outcome, mb.reported) != (md.true_outcome, md.reported) {
                        return Err(format!(
                            "readout at {node} diverges: bell {mb:?} vs dense {md:?}"
                        ));
                    }
                }
                if !w.bell.fully_measured(pb) || !w.dense.fully_measured(pd) {
                    return Err("both ends measured but pair not fully measured".into());
                }
                w.reset_slots(&[0], fresh, frames);
            }
        }
        Ok(())
    }

    fn invariants(&self, frames: &Frames, w: &World) -> Result<(), String> {
        for slot in 0..3 {
            let (b, d) = w.ids[slot];
            let pb = w.bell.get(b);
            let pd = w.dense.get(d);
            compare_pair(pb, pd, &format!("slot {slot}"))?;
            let announced = pb.expect("live").announced;
            if announced != frames.0[slot] {
                return Err(format!(
                    "slot {slot}: announced {announced} vs frame {}",
                    frames.0[slot]
                ));
            }
        }
        Ok(())
    }
}

/// Numeric agreement between the two representations of one pair.
fn compare_pair(
    bell: Option<qn_hardware::PairView<'_>>,
    dense: Option<qn_hardware::PairView<'_>>,
    what: &str,
) -> Result<(), String> {
    let (bell, dense) = match (bell, dense) {
        (Some(b), Some(d)) => (b, d),
        _ => return Err(format!("{what}: liveness diverges")),
    };
    if bell.announced != dense.announced {
        return Err(format!(
            "{what}: announced {} vs {}",
            bell.announced, dense.announced
        ));
    }
    let (sb, sd) = (bell.state(), dense.state());
    for target in BellState::ALL {
        let fb = sb.fidelity_bell(target);
        let fd = sd.fidelity_bell(target);
        if (fb - fd).abs() > EPS {
            return Err(format!("{what}: coeff {target} {fb} vs {fd}"));
        }
    }
    for end in 0..2 {
        if (sb.prob_one(end) - sd.prob_one(end)).abs() > EPS {
            return Err(format!("{what}: prob_one({end}) diverges"));
        }
    }
    if (sb.trace() - sd.trace()).abs() > EPS {
        return Err(format!("{what}: trace diverges"));
    }
    if (sb.purity() - sd.purity()).abs() > EPS {
        return Err(format!("{what}: purity diverges"));
    }
    Ok(())
}

#[test]
fn representations_agree_across_protocol_sequences() {
    ModelTest::new("hardware_threeway_agreement", ThreeWaySpec)
        .cases(64)
        .max_ops(40)
        .run();
}

/// The same harness with perfect gates/readout: distillation and swap
/// then follow the textbook algebra exactly, and the Pauli frame is
/// predictive for the whole (noiseless-channel) op subset.
#[test]
fn representations_agree_with_perfect_circuits() {
    struct PerfectSpec;
    impl ModelSpec for PerfectSpec {
        type Op = Op;
        type Model = Frames;
        type System = World;
        fn new_model(&self) -> Frames {
            ThreeWaySpec.new_model()
        }
        fn new_system(&self) -> World {
            let mut w = ThreeWaySpec.new_system();
            w.noise = SwapNoise {
                p_two_qubit: 0.0,
                p_single: 0.0,
                readout: qn_hardware::ReadoutSpec {
                    fidelity0: 1.0,
                    fidelity1: 1.0,
                    duration: 0.0,
                },
            };
            w
        }
        fn op_strategy(&self) -> BoxedStrategy<Op> {
            prop_oneof![
                any::<u8>().prop_map(|fresh| Op::Swap { fresh }),
                any::<u8>().prop_map(|fresh| Op::Distill { fresh }),
                (0u8..3, any::<u8>()).prop_map(|(basis, fresh)| Op::Measure { basis, fresh }),
            ]
            .boxed()
        }
        fn apply(&self, m: &mut Frames, s: &mut World, op: &Op) -> Result<(), String> {
            ThreeWaySpec.apply(m, s, op)
        }
        fn invariants(&self, m: &Frames, s: &World) -> Result<(), String> {
            ThreeWaySpec.invariants(m, s)
        }
    }
    ModelTest::new("hardware_threeway_perfect_circuits", PerfectSpec)
        .cases(32)
        .max_ops(24)
        .run();
}
