//! The four Bell states and the XOR algebra used for *lazy entanglement
//! tracking*.
//!
//! The QNP never simulates intermediate pair states to know which Bell
//! state an end-to-end pair is in — it composes the two-bit entanglement
//! swap outcomes with XOR (Sec. 3.2 / Appendix C `combine_state`). This
//! module defines that algebra; a test in `tests/bell_tracking.rs`
//! verifies it against the full density-matrix simulation for every
//! combination of input states and measurement outcomes.
//!
//! Convention: `B(x, z) = (I ⊗ XˣZᶻ)|Φ⁺⟩`, i.e. the correction Pauli acts
//! on the *second* qubit:
//!
//! | (x,z) | state | name |
//! |-------|-------|------|
//! | (0,0) | (|00⟩+|11⟩)/√2 | Φ⁺ |
//! | (1,0) | (|01⟩+|10⟩)/√2 | Ψ⁺ |
//! | (0,1) | (|00⟩−|11⟩)/√2 | Φ⁻ |
//! | (1,1) | (|01⟩−|10⟩)/√2 | Ψ⁻ |

use crate::complex::C64;
use crate::gates::Pauli;
use crate::state::DensityMatrix;
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// One of the four Bell states, encoded as the pair `(x, z)` of correction
/// bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct BellState {
    /// Bit-flip component of the correction Pauli.
    pub x: bool,
    /// Phase-flip component of the correction Pauli.
    pub z: bool,
}

impl BellState {
    /// `Φ⁺` — the reference state.
    pub const PHI_PLUS: BellState = BellState { x: false, z: false };
    /// `Ψ⁺`.
    pub const PSI_PLUS: BellState = BellState { x: true, z: false };
    /// `Φ⁻`.
    pub const PHI_MINUS: BellState = BellState { x: false, z: true };
    /// `Ψ⁻`.
    pub const PSI_MINUS: BellState = BellState { x: true, z: true };

    /// All four states, in `(x,z)` counting order.
    pub const ALL: [BellState; 4] = [
        Self::PHI_PLUS,
        Self::PSI_PLUS,
        Self::PHI_MINUS,
        Self::PSI_MINUS,
    ];

    /// Construct from the two correction bits.
    pub fn from_bits(x: bool, z: bool) -> Self {
        BellState { x, z }
    }

    /// Encode as a two-bit index `(x << 1) | z`.
    pub fn index(self) -> usize {
        (usize::from(self.x) << 1) | usize::from(self.z)
    }

    /// Inverse of [`BellState::index`].
    pub fn from_index(idx: usize) -> Self {
        BellState {
            x: idx & 0b10 != 0,
            z: idx & 0b01 != 0,
        }
    }

    /// The amplitudes of this Bell state over `{|00⟩,|01⟩,|10⟩,|11⟩}`.
    pub fn amplitudes(self) -> [C64; 4] {
        let h = C64::real(FRAC_1_SQRT_2);
        let s = if self.z { -h } else { h };
        if self.x {
            // (|01⟩ ± |10⟩)/√2
            [C64::ZERO, h, s, C64::ZERO]
        } else {
            // (|00⟩ ± |11⟩)/√2
            [h, C64::ZERO, C64::ZERO, s]
        }
    }

    /// The pure density matrix of this Bell state.
    pub fn density(self) -> DensityMatrix {
        DensityMatrix::pure(&self.amplitudes())
    }

    /// Compose two link states and a swap outcome into the state of the
    /// joined pair: XOR of the correction bits (the paper's
    /// `combine_state`). The operation is associative and commutative, so
    /// swap ordering along a circuit does not matter — the property the
    /// QNP's lazy tracking relies on.
    pub fn combine(self, other: BellState, swap_outcome: BellState) -> BellState {
        BellState {
            x: self.x ^ other.x ^ swap_outcome.x,
            z: self.z ^ other.z ^ swap_outcome.z,
        }
    }

    /// The Pauli that, applied to the *second* qubit, transforms this state
    /// into `target`.
    pub fn correction_to(self, target: BellState) -> Pauli {
        match (self.x ^ target.x, self.z ^ target.z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (false, true) => Pauli::Z,
            (true, true) => Pauli::Y, // XZ up to global phase
        }
    }

    /// Conventional name of the state.
    pub fn name(self) -> &'static str {
        match (self.x, self.z) {
            (false, false) => "Φ+",
            (true, false) => "Ψ+",
            (false, true) => "Φ-",
            (true, true) => "Ψ-",
        }
    }
}

impl fmt::Display for BellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_are_orthonormal() {
        for a in BellState::ALL {
            for b in BellState::ALL {
                let f = a.density().fidelity_pure(&b.amplitudes());
                if a == b {
                    assert!((f - 1.0).abs() < 1e-12);
                } else {
                    assert!(f.abs() < 1e-12, "{a} vs {b} overlap {f}");
                }
            }
        }
    }

    #[test]
    fn index_round_trips() {
        for s in BellState::ALL {
            assert_eq!(BellState::from_index(s.index()), s);
        }
    }

    #[test]
    fn combine_is_commutative_and_associative_in_inputs() {
        for a in BellState::ALL {
            for b in BellState::ALL {
                for m in BellState::ALL {
                    assert_eq!(a.combine(b, m), b.combine(a, m));
                }
            }
        }
    }

    #[test]
    fn combine_with_identity_outcome() {
        // Swapping two Φ+ pairs with outcome Φ+ gives Φ+.
        assert_eq!(
            BellState::PHI_PLUS.combine(BellState::PHI_PLUS, BellState::PHI_PLUS),
            BellState::PHI_PLUS
        );
    }

    #[test]
    fn correction_transforms_state() {
        use crate::gates;
        for from in BellState::ALL {
            for to in BellState::ALL {
                let pauli = from.correction_to(to);
                let mut rho = from.density();
                rho.apply_unitary(&pauli.matrix(), &[1]);
                let f = rho.fidelity_pure(&to.amplitudes());
                assert!(
                    (f - 1.0).abs() < 1e-12,
                    "{from} -> {to} via {pauli:?} got fidelity {f}"
                );
                // Also check the identity shortcut matches gates::identity.
                if from == to {
                    assert_eq!(pauli, Pauli::I);
                    let _ = gates::identity();
                }
            }
        }
    }

    #[test]
    fn names_match_convention() {
        assert_eq!(BellState::PHI_PLUS.name(), "Φ+");
        assert_eq!(BellState::PSI_MINUS.name(), "Ψ-");
    }
}
