//! The central routing controller (§5: "a rudimentary algorithm that
//! runs in a central controller and assumes all links and nodes are
//! identical").
//!
//! Given a pair of end-nodes and an end-to-end fidelity target it
//! computes a [`CircuitPlan`]: the path, the per-link fidelity (via the
//! worst-case budget of [`crate::budget`]), the cutoff timeout, and the
//! rate allocations (max-LPR per link, max-EER for the circuit).

use crate::budget::{self, CutoffPolicy};
use crate::topology::Topology;
use qn_sim::{NodeId, SimDuration};

/// Why a circuit could not be planned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// No path between the end-nodes.
    NoPath,
    /// The fidelity target is unattainable on this path even with the
    /// best link fidelity the hardware can produce.
    FidelityUnattainable,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoPath => write!(f, "no path between the requested end-nodes"),
            PlanError::FidelityUnattainable => {
                write!(f, "end-to-end fidelity unattainable on this path")
            }
        }
    }
}

/// The controller's output for one circuit.
#[derive(Clone, Debug)]
pub struct CircuitPlan {
    /// Node sequence, head-end first.
    pub path: Vec<NodeId>,
    /// Requested end-to-end fidelity.
    pub e2e_fidelity: f64,
    /// Required fidelity of every link-pair on the path.
    pub link_fidelity: f64,
    /// Bright-state parameter the links will use.
    pub alpha: f64,
    /// Cutoff timeout distributed to the intermediate nodes.
    pub cutoff: SimDuration,
    /// Max link-pair rate allocated per link (pairs/s).
    pub max_lpr: f64,
    /// Max end-to-end rate allocated to the circuit (pairs/s).
    pub max_eer: f64,
}

impl CircuitPlan {
    /// Number of links on the path.
    pub fn n_links(&self) -> usize {
        self.path.len() - 1
    }
}

/// The central controller.
pub struct Controller<'a> {
    topology: &'a Topology,
    cutoff_policy: CutoffPolicy,
}

impl<'a> Controller<'a> {
    /// A controller over `topology` using the given cutoff policy.
    pub fn new(topology: &'a Topology, cutoff_policy: CutoffPolicy) -> Self {
        Controller {
            topology,
            cutoff_policy,
        }
    }

    /// Plan a circuit from `head` to `tail` with end-to-end fidelity
    /// `f_e2e`.
    ///
    /// Cutoff and link fidelity are mutually dependent (the budget needs
    /// the cutoff; the generation-quantile cutoff needs α which needs the
    /// link fidelity), so the controller iterates the pair to a fixed
    /// point — in practice two rounds suffice.
    pub fn plan(&self, head: NodeId, tail: NodeId, f_e2e: f64) -> Result<CircuitPlan, PlanError> {
        let path = self
            .topology
            .shortest_path(head, tail)
            .ok_or(PlanError::NoPath)?;
        if path.len() < 2 {
            return Err(PlanError::NoPath);
        }
        let n_links = path.len() - 1;
        // All links identical (paper assumption): take the first link's
        // physics as representative.
        let link_id = self
            .topology
            .link_between(path[0], path[1])
            .expect("path edges exist");
        let physics = &self.topology.link(link_id).physics;
        let params = physics.params();

        // Fixed-point iteration over (cutoff, link fidelity).
        let mut f_link = f_e2e; // starting guess
        let mut alpha = physics
            .alpha_for_fidelity(f_link)
            .ok_or(PlanError::FidelityUnattainable)?;
        let mut cutoff = self.cutoff_policy.evaluate(physics, f_link, alpha);
        for _ in 0..4 {
            let required = budget::required_link_fidelity(params, n_links, f_e2e, cutoff)
                .ok_or(PlanError::FidelityUnattainable)?;
            let a = physics
                .alpha_for_fidelity(required)
                .ok_or(PlanError::FidelityUnattainable)?;
            f_link = required;
            alpha = a;
            cutoff = self.cutoff_policy.evaluate(physics, f_link, alpha);
        }

        // Rate allocations. The link can produce pairs at most at
        // 1/expected_pair_time; end-to-end pairs need one pair per link
        // plus headroom for cutoff discards (factor 2, conservative).
        let max_lpr = 1.0 / physics.expected_pair_time(alpha).as_secs_f64().max(1e-12);
        let max_eer = max_lpr / 2.0;

        Ok(CircuitPlan {
            path,
            e2e_fidelity: f_e2e,
            link_fidelity: f_link,
            alpha,
            cutoff,
            max_lpr,
            max_eer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{chain, dumbbell};
    use qn_hardware::params::{FibreParams, HardwareParams};

    fn lab_dumbbell() -> (Topology, crate::topology::Dumbbell) {
        dumbbell(HardwareParams::simulation(), FibreParams::lab_2m())
    }

    #[test]
    fn plans_a0_to_b0() {
        let (t, d) = lab_dumbbell();
        let c = Controller::new(&t, CutoffPolicy::short());
        let plan = c.plan(d.a0, d.b0, 0.9).unwrap();
        assert_eq!(plan.path, vec![d.a0, d.ma, d.mb, d.b0]);
        assert_eq!(plan.n_links(), 3);
        assert!(plan.link_fidelity > 0.9, "links beat the e2e target");
        assert!(plan.link_fidelity < 1.0);
        assert!(plan.alpha > 0.0 && plan.alpha <= 0.5);
        assert!(plan.max_lpr > 0.0);
        assert!(plan.max_eer > 0.0 && plan.max_eer < plan.max_lpr);
        assert!(plan.cutoff > SimDuration::ZERO);
    }

    #[test]
    fn lower_fidelity_circuits_get_higher_alpha_and_rate() {
        let (t, d) = lab_dumbbell();
        let c = Controller::new(&t, CutoffPolicy::short());
        let p09 = c.plan(d.a0, d.b0, 0.9).unwrap();
        let p08 = c.plan(d.a1, d.b1, 0.8).unwrap();
        assert!(p08.alpha > p09.alpha);
        assert!(p08.max_lpr > p09.max_lpr);
    }

    #[test]
    fn impossible_target_errors() {
        let (t, d) = lab_dumbbell();
        let c = Controller::new(&t, CutoffPolicy::short());
        assert_eq!(
            c.plan(d.a0, d.b0, 0.999).unwrap_err(),
            PlanError::FidelityUnattainable
        );
    }

    #[test]
    fn disconnected_nodes_error() {
        let t = chain(3, HardwareParams::simulation(), FibreParams::lab_2m());
        let c = Controller::new(&t, CutoffPolicy::short());
        assert_eq!(
            c.plan(qn_sim::NodeId(0), qn_sim::NodeId(9), 0.8)
                .unwrap_err(),
            PlanError::NoPath
        );
    }

    #[test]
    fn short_cutoff_improves_rates_vs_long() {
        // Fig 8 d–f vs a–c: the short cutoff lets links run at lower
        // fidelity, i.e. higher alpha, i.e. higher LPR.
        let (t, d) = lab_dumbbell();
        let short = Controller::new(&t, CutoffPolicy::short())
            .plan(d.a0, d.b0, 0.9)
            .unwrap();
        let long = Controller::new(&t, CutoffPolicy::long())
            .plan(d.a0, d.b0, 0.9)
            .unwrap();
        assert!(short.cutoff < long.cutoff);
        assert!(
            short.link_fidelity <= long.link_fidelity + 1e-12,
            "short cutoff must not demand more of the links"
        );
        assert!(short.max_lpr >= long.max_lpr);
    }

    #[test]
    fn manual_cutoff_respected() {
        let (t, d) = lab_dumbbell();
        let manual = SimDuration::from_millis(7);
        let c = Controller::new(&t, CutoffPolicy::Manual(manual));
        let plan = c.plan(d.a0, d.b0, 0.8).unwrap();
        assert_eq!(plan.cutoff, manual);
    }
}
