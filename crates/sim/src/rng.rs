//! Deterministic randomness for simulations.
//!
//! Every run derives all of its randomness from a single root seed. Distinct
//! components draw from *named substreams* so that adding a consumer in one
//! part of the model does not perturb the sample sequence of another — a
//! property that keeps regression comparisons meaningful.
//!
//! The substream derivation is a simple FNV-1a-style mix of the root seed
//! with the stream label; `rand::rngs::StdRng` provides the actual stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
pub struct SimRng {
    inner: StdRng,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix(seed: u64, label: &str) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser) so similar labels diverge.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

impl SimRng {
    /// Root stream for a run.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent named substream. Equal `(seed, label)` pairs
    /// yield identical streams.
    pub fn substream(seed: u64, label: &str) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(mix(seed, label)),
        }
    }

    /// Derive an indexed substream, e.g. one per link.
    pub fn substream_indexed(seed: u64, label: &str, index: u64) -> Self {
        let combined = mix(seed, label) ^ index.wrapping_mul(0x9e3779b97f4a7c15);
        SimRng {
            inner: StdRng::seed_from_u64(combined),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Number of Bernoulli(`p`) trials up to and including the first
    /// success (support `1, 2, 3, …`), sampled in O(1) via inversion.
    ///
    /// Saturates at `u64::MAX` for vanishingly small `p`; panics on `p <= 0`
    /// in debug builds (the caller must guard impossible processes).
    pub fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0, "geometric sampling requires p > 0");
        if p >= 1.0 {
            return 1;
        }
        if p <= 0.0 {
            return u64::MAX;
        }
        // Inversion: k = ceil(ln(1-u) / ln(1-p)), u ~ U[0,1).
        let u: f64 = self.inner.gen::<f64>();
        let k = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        if !k.is_finite() || k >= u64::MAX as f64 {
            u64::MAX
        } else {
            (k as u64).max(1)
        }
    }

    /// Exponentially distributed value with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let u: f64 = self.inner.gen::<f64>();
        -(1.0 - u).ln() / rate
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Sample an index from a discrete distribution given by `weights`
    /// (need not be normalised; non-positive total panics in debug builds).
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(
            total > 0.0,
            "discrete sampling requires positive total weight"
        );
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Access the underlying `rand` RNG for APIs that want `impl Rng`.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn substreams_are_independent_of_each_other() {
        let mut a = SimRng::substream(7, "alpha");
        let mut b = SimRng::substream(7, "beta");
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substream_reproducible() {
        let mut a = SimRng::substream_indexed(42, "link", 3);
        let mut b = SimRng::substream_indexed(42, "link", 3);
        assert_eq!(a.below(1000), b.below(1000));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::from_seed(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        assert!(!r.bernoulli(-0.5));
        assert!(r.bernoulli(1.5));
    }

    #[test]
    fn geometric_mean_matches_inverse_p() {
        let mut r = SimRng::from_seed(99);
        let p = 0.02;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = 1.0 / p;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "geometric mean {mean} too far from {expect}"
        );
    }

    #[test]
    fn geometric_of_one_is_one() {
        let mut r = SimRng::from_seed(3);
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = SimRng::from_seed(5);
        assert!((0..1000).all(|_| r.geometric(0.9) >= 1));
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::from_seed(17);
        let rate = 4.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "exponential mean {mean}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut r = SimRng::from_seed(23);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.discrete(&[1.0, 2.0, 1.0])] += 1;
        }
        let mid = counts[1] as f64 / 30_000.0;
        assert!((mid - 0.5).abs() < 0.03, "middle weight got {mid}");
    }
}
