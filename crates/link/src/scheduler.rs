//! Weighted time-share scheduling across the circuits multiplexed on one
//! link.
//!
//! The paper's evaluation (§5) uses "a weighted round-robin scheme where
//! the number of pairs generated for a particular VC is proportional to
//! its LPR and inversely proportional to the average time per pair",
//! i.e. each circuit receives a share of the *link's time* proportional to
//! its weight. We implement this as a virtual-time fair scheduler: each
//! label accrues the generation time it consumes, and the next slot goes
//! to the label with the smallest `time_used / weight`. This yields all
//! three properties the paper lists: equal time shares regardless of
//! fidelity, proportional distribution of excess capacity, and
//! proportional division under over-subscription.

use crate::service::LinkLabel;
use qn_sim::SimDuration;
use std::collections::BTreeMap;

/// Per-label accounting entry.
#[derive(Clone, Debug)]
struct Entry {
    weight: f64,
    /// Total generation time consumed, seconds.
    time_used: f64,
}

/// Fair time-share scheduler over link labels.
#[derive(Clone, Debug, Default)]
pub struct TimeShareScheduler {
    entries: BTreeMap<LinkLabel, Entry>,
}

impl TimeShareScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a label with a positive weight. New labels start at the current
    /// *minimum* normalised usage so they cannot starve incumbents by
    /// replaying history they were not part of.
    pub fn add(&mut self, label: LinkLabel, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0);
        let base = self
            .entries
            .values()
            .map(|e| e.time_used / e.weight)
            .fold(f64::INFINITY, f64::min);
        let start = if base.is_finite() { base * weight } else { 0.0 };
        self.entries.insert(
            label,
            Entry {
                weight,
                time_used: start,
            },
        );
    }

    /// Remove a label.
    pub fn remove(&mut self, label: LinkLabel) {
        self.entries.remove(&label);
    }

    /// Update a label's weight (LPR renegotiation on FORWARD/COMPLETE).
    pub fn set_weight(&mut self, label: LinkLabel, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0);
        if let Some(e) = self.entries.get_mut(&label) {
            // Preserve the normalised position so a weight change takes
            // effect going forward without a burst of catch-up slots.
            let norm = e.time_used / e.weight;
            e.weight = weight;
            e.time_used = norm * weight;
        }
    }

    /// Whether any labels are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of registered labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The label that should generate next: smallest normalised time
    /// usage, ties broken by label order (deterministic).
    pub fn next(&self) -> Option<LinkLabel> {
        self.entries
            .iter()
            .min_by(|(la, a), (lb, b)| {
                let na = a.time_used / a.weight;
                let nb = b.time_used / b.weight;
                na.partial_cmp(&nb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| la.cmp(lb))
            })
            .map(|(l, _)| *l)
    }

    /// Charge generation time against a label.
    pub fn charge(&mut self, label: LinkLabel, elapsed: SimDuration) {
        if let Some(e) = self.entries.get_mut(&label) {
            e.time_used += elapsed.as_secs_f64();
        }
    }

    /// Total time charged to a label so far (seconds).
    pub fn time_used(&self, label: LinkLabel) -> f64 {
        self.entries.get(&label).map(|e| e.time_used).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur_ms(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn single_label_always_wins() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 1.0);
        assert_eq!(s.next(), Some(LinkLabel(1)));
        s.charge(LinkLabel(1), dur_ms(100));
        assert_eq!(s.next(), Some(LinkLabel(1)));
    }

    #[test]
    fn equal_weights_share_time_equally() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 1.0);
        s.add(LinkLabel(2), 1.0);
        // Label 1's pairs take 3x longer: it should get ~1/3 the slots of
        // label 2 over the same horizon, equalising time.
        let mut slots = [0u32; 3];
        for _ in 0..400 {
            let l = s.next().unwrap();
            slots[l.0 as usize] += 1;
            s.charge(
                l,
                if l == LinkLabel(1) {
                    dur_ms(30)
                } else {
                    dur_ms(10)
                },
            );
        }
        let t1 = s.time_used(LinkLabel(1));
        let t2 = s.time_used(LinkLabel(2));
        assert!(
            (t1 - t2).abs() / t1.max(t2) < 0.05,
            "time shares must equalise: {t1} vs {t2}"
        );
        assert!(slots[2] > 2 * slots[1], "faster label gets more slots");
    }

    #[test]
    fn weights_divide_time_proportionally() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 2.0);
        s.add(LinkLabel(2), 1.0);
        for _ in 0..300 {
            let l = s.next().unwrap();
            s.charge(l, dur_ms(10));
        }
        let t1 = s.time_used(LinkLabel(1));
        let t2 = s.time_used(LinkLabel(2));
        assert!(
            (t1 / t2 - 2.0).abs() < 0.1,
            "2:1 weights must give 2:1 time: {t1} vs {t2}"
        );
    }

    #[test]
    fn late_joiner_does_not_get_catch_up_burst() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 1.0);
        for _ in 0..100 {
            let l = s.next().unwrap();
            s.charge(l, dur_ms(10));
        }
        s.add(LinkLabel(2), 1.0);
        // After joining, slots should alternate rather than label 2
        // monopolising to replay a second of history.
        let mut consecutive_l2 = 0;
        let mut max_consecutive = 0;
        for _ in 0..50 {
            let l = s.next().unwrap();
            if l == LinkLabel(2) {
                consecutive_l2 += 1;
                max_consecutive = max_consecutive.max(consecutive_l2);
            } else {
                consecutive_l2 = 0;
            }
            s.charge(l, dur_ms(10));
        }
        assert!(
            max_consecutive <= 2,
            "late joiner burst of {max_consecutive}"
        );
    }

    #[test]
    fn removal_stops_scheduling() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 1.0);
        s.add(LinkLabel(2), 1.0);
        s.remove(LinkLabel(1));
        for _ in 0..10 {
            assert_eq!(s.next(), Some(LinkLabel(2)));
            s.charge(LinkLabel(2), dur_ms(1));
        }
        s.remove(LinkLabel(2));
        assert_eq!(s.next(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn weight_update_changes_share_going_forward() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(1), 1.0);
        s.add(LinkLabel(2), 1.0);
        for _ in 0..100 {
            let l = s.next().unwrap();
            s.charge(l, dur_ms(10));
        }
        s.set_weight(LinkLabel(1), 3.0);
        // `set_weight` rescales `time_used` to keep the normalised position;
        // measure the share gained from this point onward.
        let before = s.time_used(LinkLabel(1));
        for _ in 0..400 {
            let l = s.next().unwrap();
            s.charge(l, dur_ms(10));
        }
        let gained1 = s.time_used(LinkLabel(1)) - before;
        let total: f64 = 400.0 * 0.01;
        assert!(
            (gained1 / total - 0.75).abs() < 0.05,
            "label 1 should take ~3/4 of new time, took {}",
            gained1 / total
        );
    }

    #[test]
    fn deterministic_tie_break() {
        let mut s = TimeShareScheduler::new();
        s.add(LinkLabel(2), 1.0);
        s.add(LinkLabel(1), 1.0);
        assert_eq!(s.next(), Some(LinkLabel(1)), "lowest label wins ties");
    }
}
