//! **Figure 11** — pairs produced over time on a near-future network:
//! 10 pairs of fidelity 0.5 requested over a 3-node chain with 25 km
//! links, near-term hardware parameters (Appendix B), a single
//! communication qubit per node, carbon storage suffering nuclear
//! dephasing during attempts, and hand-tuned routing/cutoff.
//!
//! Paper claim to reproduce: "Despite the enormous differences in the
//! operating environment the QNP remains functional" — pairs keep
//! arriving at a steady pace.
//!
//! Run: `cargo bench --bench fig11_near_term` (knobs: `QNP_RUNS` seeds to
//! print — the paper shows a single simulation — and `QNP_THREADS`
//! sweep workers).

use qn_bench::{env_u64, fig11_plan, fig11_sweep, runs, seed_block, Baseline, Direction};

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(1);
    let n_pairs = env_u64("QNP_PAIRS", 10);
    let plan = fig11_plan();
    println!("# Figure 11 — near-future hardware: pair arrivals over time");
    println!(
        "# 3 nodes, 2 × 25 km telecom fibre, near-term parameters, F_req = {}",
        plan.e2e_fidelity
    );
    println!(
        "# hand-tuned: link fidelity {}, cutoff {:.0} ms",
        plan.link_fidelity,
        plan.cutoff.as_millis_f64()
    );

    let mut baseline = Baseline::new("fig11_near_term")
        .config_num("runs", n_runs as f64)
        .config_num("pairs", n_pairs as f64)
        .direction("delivered", Direction::HigherIsBetter)
        .direction("mean_fidelity", Direction::HigherIsBetter)
        .direction("total_time_s", Direction::LowerIsBetter);

    let seeds = seed_block(100, n_runs);
    let results = fig11_sweep(&seeds, n_pairs);
    for (seed, (times, fidelity)) in seeds.iter().zip(&results) {
        let seed = seed - 100;
        println!("#\n# run seed {seed}: mean delivered fidelity {fidelity:.3}");
        println!("# pair_index   arrival_time_s");
        for (i, t) in times.iter().enumerate() {
            println!("{:10}   {t:12.1}", i + 1);
        }
        let total = times.last().copied().unwrap_or(f64::NAN);
        baseline.point(
            format!("seed={seed}"),
            &[
                ("delivered", times.len() as f64),
                ("mean_fidelity", *fidelity),
                ("total_time_s", total),
            ],
        );
        if times.len() < n_pairs as usize {
            println!(
                "# WARN: only {}/{} pairs delivered within the horizon",
                times.len(),
                n_pairs
            );
        } else {
            println!(
                "# delivered {} pairs in {total:.0} s ({:.2} pairs/min): protocol functional — PASS",
                times.len(),
                times.len() as f64 / (total / 60.0)
            );
            let ok = *fidelity >= 0.5 - 0.03;
            println!(
                "# mean fidelity {fidelity:.3} vs requested 0.5: {}",
                if ok { "PASS" } else { "WARN" }
            );
        }
    }

    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s)",
        path.display(),
        qn_exec::threads(),
        wall_start.elapsed().as_secs_f64()
    );
}
