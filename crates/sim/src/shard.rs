//! Sharded event scheduling: conservative-lookahead within-run
//! parallelism.
//!
//! Two layers live here, sharing the ordering machinery of
//! [`crate::queue`]:
//!
//! 1. **[`ShardedQueues`] + [`ShardedSimulation`]** — the *verification
//!    mode* behind `QNP_SHARDS`. One model, N per-shard event queues.
//!    Every push routes through a shard router, but sequence numbers
//!    (and therefore [`EventId`]s and the `(time, seq)` total order) are
//!    allocated from a single global counter shared by all shards, and
//!    the pending set is one shared [`SeqWindow`] — so a cross-shard
//!    `cancel()` of a not-yet-merged event is the same O(1) bit clear
//!    it always was, and the merged dispatch order is **bit-identical**
//!    to the single-queue [`crate::Simulation`] by construction. On top
//!    of the merge, the driver runs the conservative-lookahead epoch
//!    accounting: each epoch spans `[bound, bound + lookahead)` where
//!    `bound` is the global minimum pending time, cross-shard pushes
//!    are keyed `(epoch, src_shard, lane = dst_shard, seq)` into a
//!    deterministic mailbox digest, and pushes that land *inside* the
//!    open epoch window are counted as lookahead violations — the
//!    events a truly partitioned parallel run would have to block on.
//!
//! 2. **[`ShardCtx`] + [`run_partitioned_serial`]** — the *partitioned*
//!    execution contract used by the genuinely parallel driver in
//!    `qn_exec`: per-shard state, per-shard queues, cross-shard sends
//!    only through an epoch mailbox with delay ≥ lookahead
//!    (Chandy–Misra–Bryant made null-message-free by a shared epoch
//!    barrier). The serial executor here is the bit-exact reference the
//!    threaded executor is pinned against.
//!
//! The lookahead bound is physical: the classical plane's per-hop
//! propagation + processing latency is a hard lower bound on how soon
//! anything one shard does can influence another, so every shard may
//! safely advance to `min(all shards' next event) + lookahead` before
//! synchronising.

use crate::engine::{Context, Model, RunOutcome};
use crate::queue::{Entry, EventId, EventQueue, SeqWindow};
use crate::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;

/// Shard router: maps an event to the index of its home shard. Must be
/// a pure function of the event (and static configuration) — never of
/// execution timing.
pub type Router<E> = Box<dyn Fn(&E) -> usize + Send>;

/// Counters describing a sharded run: the epoch barrier activity and
/// the cross-shard traffic the partitioning produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards the run was partitioned into.
    pub shards: usize,
    /// Conservative-lookahead epochs opened (each spans
    /// `[bound, bound + lookahead)` in simulated time).
    pub epochs: u64,
    /// Events pushed by one shard into another's queue (mailbox
    /// traffic).
    pub cross_shard_events: u64,
    /// Cross-shard pushes scheduled *inside* the open epoch window,
    /// i.e. below the lookahead bound. Verification mode executes them
    /// correctly regardless (the global merge order is preserved); a
    /// truly partitioned parallel run would have to block on each one,
    /// so this counter is the measure of how parallelisable the
    /// workload is under the current partitioning.
    pub lookahead_violations: u64,
    /// FNV-1a fold of every mailbox key `(epoch, src_shard, lane,
    /// seq)` in merge order. A pure function of (seed, config): two
    /// runs of the same configuration produce the same digest, however
    /// the host schedules threads.
    pub mailbox_digest: u64,
}

/// FNV-1a offset basis: the digest's initial value.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// N per-shard event heaps sharing one global sequence counter and one
/// pending-set window, so the merged `(time, seq)` order — and every
/// [`EventId`] — is identical to a single [`EventQueue`] fed the same
/// pushes in the same order.
pub struct ShardedQueues<E> {
    heaps: Vec<BinaryHeap<Entry<E>>>,
    /// One pending window across all shards: cancellation does not need
    /// to know (or care) which shard holds the entry.
    pending: SeqWindow,
    next_seq: u64,
    router: Router<E>,
    /// Shard whose event is currently being dispatched (`None` outside
    /// dispatch, e.g. scenario seeding before the run).
    executing: Option<usize>,
    /// Exclusive upper bound of the open epoch window.
    epoch_horizon: SimTime,
    /// Index of the open epoch (0 before the first).
    epoch: u64,
    stats: ShardStats,
}

impl<E> ShardedQueues<E> {
    /// Create `shards` empty queues routed by `router`. Router outputs
    /// are clamped into range.
    pub fn new(shards: usize, router: Router<E>) -> Self {
        let shards = shards.max(1);
        ShardedQueues {
            heaps: (0..shards).map(|_| BinaryHeap::new()).collect(),
            pending: SeqWindow::default(),
            next_seq: 0,
            router,
            executing: None,
            epoch_horizon: SimTime::ZERO,
            epoch: 0,
            stats: ShardStats {
                shards,
                mailbox_digest: FNV_OFFSET,
                ..ShardStats::default()
            },
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.heaps.len()
    }

    /// Schedule `event` at `time`, routed to its home shard. Sequence
    /// numbers are global: ids and tie-break order match the
    /// single-queue engine exactly.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let dst = (self.router)(&event).min(self.heaps.len() - 1);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        if let Some(src) = self.executing {
            if src != dst {
                self.stats.cross_shard_events += 1;
                if time < self.epoch_horizon {
                    self.stats.lookahead_violations += 1;
                }
                // Mailbox key (epoch, src_shard, lane, seq): folded in
                // merge order, which execution order makes
                // deterministic.
                let mut d = self.stats.mailbox_digest;
                d = fnv_fold(d, self.epoch);
                d = fnv_fold(d, src as u64);
                d = fnv_fold(d, dst as u64);
                d = fnv_fold(d, seq);
                self.stats.mailbox_digest = d;
            }
        }
        self.heaps[dst].push(Entry { time, seq, event });
        EventId(seq)
    }

    /// Cancel a scheduled event. Works identically from any shard —
    /// including on events still waiting in another shard's queue —
    /// because the pending set is shared.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(id.0)
    }

    /// Drop cancelled heads of shard `i`, then report its live head
    /// `(time, seq)`.
    fn head(&mut self, i: usize) -> Option<(SimTime, u64)> {
        while let Some(entry) = self.heaps[i].peek() {
            if self.pending.contains(entry.seq) {
                return Some((entry.time, entry.seq));
            }
            self.heaps[i].pop();
        }
        None
    }

    /// The shard owning the globally earliest pending event.
    fn min_shard(&mut self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for i in 0..self.heaps.len() {
            if let Some((t, s)) = self.head(i) {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Time of the globally earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let i = self.min_shard()?;
        self.head(i).map(|(t, _)| t)
    }

    /// Pop the globally earliest pending event, returning its home
    /// shard alongside: the merged order equals the single-queue order.
    pub fn pop(&mut self) -> Option<(usize, SimTime, E)> {
        let i = self.min_shard()?;
        let entry = self.heaps[i].pop().expect("min_shard saw a live head");
        self.pending.remove(entry.seq);
        Some((i, entry.time, entry.event))
    }

    /// Number of pending (non-cancelled) events across all shards.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.len() == 0
    }

    /// Mark the shard whose event is being dispatched (cross-shard
    /// accounting).
    pub(crate) fn set_executing(&mut self, shard: Option<usize>) {
        self.executing = shard;
    }

    /// Open a new epoch window `[bound, horizon)`.
    pub(crate) fn open_epoch(&mut self, horizon: SimTime) {
        self.epoch += 1;
        self.epoch_horizon = horizon;
        self.stats.epochs += 1;
    }

    pub(crate) fn epoch_horizon(&self) -> SimTime {
        self.epoch_horizon
    }

    /// Barrier activity and mailbox counters so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }
}

/// A sharded discrete-event simulation in verification mode: per-shard
/// queues with conservative-lookahead epoch accounting, dispatching the
/// exact single-queue trajectory — same events, same order, same
/// [`EventId`]s, same `processed` count — while measuring the
/// cross-shard traffic a partitioned parallel run would see.
///
/// Mirrors the [`crate::Simulation`] API so the two are drop-in
/// interchangeable for a driver.
pub struct ShardedSimulation<M: Model> {
    model: M,
    queues: ShardedQueues<M::Event>,
    now: SimTime,
    processed: u64,
    event_limit: u64,
    lookahead: SimDuration,
}

impl<M: Model> ShardedSimulation<M> {
    /// Create a sharded simulation at time zero.
    ///
    /// `lookahead` must be positive: it is the hard lower bound on
    /// cross-shard causality (the minimum classical latency between any
    /// two shards), and a zero bound would degenerate every event into
    /// its own epoch.
    pub fn new(model: M, shards: usize, lookahead: SimDuration, router: Router<M::Event>) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "shard lookahead must be positive (zero-latency hops must share a shard)"
        );
        ShardedSimulation {
            model,
            queues: ShardedQueues::new(shards, router),
            now: SimTime::ZERO,
            processed: 0,
            event_limit: u64::MAX,
            lookahead,
        }
    }

    /// The current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Borrow the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrow the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.shards()
    }

    /// The conservative lookahead bound in force.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Epoch-barrier and mailbox counters so far.
    pub fn shard_stats(&self) -> ShardStats {
        self.queues.stats()
    }

    /// Seed an event before (or between) runs.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        self.queues.push(at.max(self.now), event)
    }

    /// Seed an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventId {
        self.queues.push(self.now + delay, event)
    }

    /// Number of pending events across all shards.
    pub fn pending(&self) -> usize {
        self.queues.len()
    }

    /// Cap the total number of dispatched events (see
    /// [`crate::Simulation::set_event_limit`]).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Dispatch the single earliest event across all shards. Returns
    /// `None` when an event was dispatched and the run may continue, or
    /// the terminal [`RunOutcome`] otherwise — the same contract as
    /// [`crate::Simulation::step`].
    pub fn step(&mut self) -> Option<RunOutcome> {
        if self.processed >= self.event_limit {
            return Some(RunOutcome::EventLimit);
        }
        let Some(next) = self.queues.peek_time() else {
            return Some(RunOutcome::QueueEmpty);
        };
        if next >= self.queues.epoch_horizon() {
            self.queues.open_epoch(next.saturating_add(self.lookahead));
        }
        let (shard, time, event) = self.queues.pop().expect("peeked event vanished");
        debug_assert!(time >= self.now, "shard queues violated time order");
        self.now = time;
        self.processed += 1;
        self.queues.set_executing(Some(shard));
        let mut stop = false;
        let mut ctx = Context::sharded(&mut self.queues, self.now, &mut stop);
        self.model.handle(time, event, &mut ctx);
        self.queues.set_executing(None);
        if stop {
            Some(RunOutcome::Stopped)
        } else {
            None
        }
    }

    /// Run until the queues drain, the model stops, or `horizon` is
    /// reached. Events scheduled exactly at the horizon are dispatched
    /// — identical semantics to [`crate::Simulation::run_until`].
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            let Some(next) = self.queues.peek_time() else {
                return RunOutcome::QueueEmpty;
            };
            if next > horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            match self.step() {
                None => {}
                Some(RunOutcome::Stopped) => return RunOutcome::Stopped,
                Some(outcome) => return outcome,
            }
        }
    }

    /// Run until the queues drain or the model stops.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

// ---------------------------------------------------------------------
// Partitioned execution: the contract for genuinely parallel shards.
// ---------------------------------------------------------------------

/// A cross-shard message waiting for the epoch barrier.
#[derive(Debug)]
pub struct OutMsg<E> {
    /// Destination shard.
    pub dst: usize,
    /// Absolute arrival time (≥ the epoch horizon, by the lookahead
    /// contract).
    pub at: SimTime,
    /// The event itself.
    pub event: E,
}

/// Scheduling handle for one shard of a partitioned run. Local
/// scheduling is unrestricted; cross-shard sends must respect the
/// lookahead bound and travel through the epoch mailbox.
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: usize,
    n_shards: usize,
    lookahead: SimDuration,
    local: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<OutMsg<E>>,
}

impl<'a, E> ShardCtx<'a, E> {
    /// The current simulated time on this shard.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the run.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Schedule a local event `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.local.push(self.now + delay, event)
    }

    /// Schedule a local event at an absolute time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.local.push(at.max(self.now), event)
    }

    /// Cancel a locally scheduled event. Cross-shard messages cannot be
    /// cancelled once sent — they are owned by the mailbox until the
    /// barrier merges them.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.local.cancel(id)
    }

    /// Send an event to `dst` (possibly this shard), arriving `delay`
    /// after now.
    ///
    /// # Panics
    ///
    /// If `dst` is out of range, or the send is cross-shard with
    /// `delay` below the lookahead bound — the conservative barrier's
    /// safety contract. A model that needs faster-than-lookahead
    /// influence must place both parties on the same shard.
    pub fn send(&mut self, dst: usize, delay: SimDuration, event: E) {
        assert!(dst < self.n_shards, "send to unknown shard {dst}");
        if dst == self.shard {
            self.local.push(self.now + delay, event);
        } else {
            assert!(
                delay >= self.lookahead,
                "cross-shard send below the lookahead bound: {} < {} ps",
                delay.as_ps(),
                self.lookahead.as_ps()
            );
            self.outbox.push(OutMsg {
                dst,
                at: self.now + delay,
                event,
            });
        }
    }
}

/// Counters for a partitioned run (serial or threaded — identical for
/// the same inputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Epoch barriers crossed.
    pub epochs: u64,
    /// Events dispatched across all shards.
    pub processed: u64,
    /// Cross-shard messages merged at barriers.
    pub cross_shard_messages: u64,
    /// FNV-1a fold of the merge keys `(at, src, outbox index)` in merge
    /// order: pins the merge to a pure function of (seed, config).
    pub mailbox_digest: u64,
}

/// One epoch's worth of per-shard work: drain events strictly below
/// `horizon` (and ≤ `until`), collecting cross-shard sends. Public so
/// the threaded executor in `qn_exec` runs byte-for-byte the same
/// per-shard code as [`run_partitioned_serial`] — bit-identity between
/// the two is then a property of the barrier, not of luck.
pub fn drain_epoch<S, E>(
    shard: usize,
    n_shards: usize,
    lookahead: SimDuration,
    state: &mut S,
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    until: SimTime,
    handler: &(impl Fn(usize, &mut S, SimTime, E, &mut ShardCtx<'_, E>) + ?Sized),
) -> (Vec<OutMsg<E>>, u64) {
    let mut outbox = Vec::new();
    let mut processed = 0;
    while let Some(t) = queue.peek_time() {
        if t >= horizon || t > until {
            break;
        }
        let (time, event) = queue.pop().expect("peeked event vanished");
        processed += 1;
        let mut ctx = ShardCtx {
            now: time,
            shard,
            n_shards,
            lookahead,
            local: queue,
            outbox: &mut outbox,
        };
        handler(shard, state, time, event, &mut ctx);
    }
    (outbox, processed)
}

/// Merge one epoch's outboxes into the destination queues in the
/// deterministic mailbox order: sorted by `(arrival time, src shard,
/// outbox index)`, so queue tie-break sequence numbers — and therefore
/// the next epoch's dispatch order — are a pure function of the run's
/// inputs, never of thread timing.
pub fn merge_mailboxes<E>(
    outboxes: Vec<Vec<OutMsg<E>>>,
    queues: &mut [EventQueue<E>],
    stats: &mut PartitionStats,
) {
    let mut msgs: Vec<(SimTime, usize, usize, usize, E)> = Vec::new();
    for (src, outbox) in outboxes.into_iter().enumerate() {
        for (idx, m) in outbox.into_iter().enumerate() {
            msgs.push((m.at, src, idx, m.dst, m.event));
        }
    }
    msgs.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
    for (at, src, idx, dst, event) in msgs {
        stats.cross_shard_messages += 1;
        let mut d = stats.mailbox_digest;
        d = fnv_fold(d, at.as_ps());
        d = fnv_fold(d, src as u64);
        d = fnv_fold(d, idx as u64);
        stats.mailbox_digest = d;
        queues[dst].push(at, event);
    }
}

/// Run a partitioned model serially: the bit-exact reference for the
/// threaded executor in `qn_exec`.
///
/// Each shard owns its state and queue; epochs advance every shard to
/// `min(all next-event times) + lookahead` (exclusive), then merge
/// cross-shard mailboxes at the barrier. Events exactly at an epoch
/// horizon wait for the next epoch. Events up to and including `until`
/// are dispatched.
///
/// # Panics
///
/// If `lookahead` is zero (the epoch window would be empty).
pub fn run_partitioned_serial<S, E>(
    mut shards: Vec<S>,
    initial: Vec<(usize, SimTime, E)>,
    lookahead: SimDuration,
    until: SimTime,
    handler: impl Fn(usize, &mut S, SimTime, E, &mut ShardCtx<'_, E>),
) -> (Vec<S>, PartitionStats) {
    assert!(
        lookahead > SimDuration::ZERO,
        "partitioned runs need a positive lookahead"
    );
    let n = shards.len();
    let mut queues: Vec<EventQueue<E>> = (0..n).map(|_| EventQueue::new()).collect();
    for (shard, at, event) in initial {
        queues[shard.min(n - 1)].push(at, event);
    }
    let mut stats = PartitionStats {
        mailbox_digest: FNV_OFFSET,
        ..PartitionStats::default()
    };
    loop {
        let bound = queues.iter_mut().filter_map(|q| q.peek_time()).min();
        let Some(bound) = bound else {
            break;
        };
        if bound > until {
            break;
        }
        let horizon = bound.saturating_add(lookahead);
        stats.epochs += 1;
        let mut outboxes = Vec::with_capacity(n);
        for (i, (state, queue)) in shards.iter_mut().zip(queues.iter_mut()).enumerate() {
            let (outbox, processed) =
                drain_epoch(i, n, lookahead, state, queue, horizon, until, &handler);
            stats.processed += processed;
            outboxes.push(outbox);
        }
        merge_mailboxes(outboxes, &mut queues, &mut stats);
    }
    (shards, stats)
}

/// Parse the `QNP_SHARDS` knob: `None` when unset, the shard count when
/// set to a positive integer.
///
/// # Panics
///
/// When set to zero or garbage — fail fast with a clear message, the
/// same convention as `FaultPlan::validate` / `ClassicalFaults::validate`
/// (a run that silently ignored the knob would masquerade as a sharded
/// one).
pub fn shards_from_env() -> Option<usize> {
    let raw = std::env::var("QNP_SHARDS").ok()?;
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!(
            "invalid QNP_SHARDS={raw:?}: must be a positive integer \
             (unset it to run the single-queue engine)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    fn la(ps: u64) -> SimDuration {
        SimDuration::from_ps(ps)
    }

    /// Router: events are (shard, payload) pairs.
    fn pair_router(shards: usize) -> Router<(usize, u64)> {
        Box::new(move |e: &(usize, u64)| e.0 % shards)
    }

    #[test]
    fn sharded_queues_merge_in_global_order() {
        let mut q = ShardedQueues::new(3, pair_router(3));
        // Same time, different shards: global seq breaks the tie.
        q.push(t(10), (2, 0));
        q.push(t(10), (0, 1));
        q.push(t(5), (1, 2));
        q.push(t(10), (1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e.1)).collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn cross_shard_cancel_of_unmerged_event() {
        let mut q = ShardedQueues::new(4, pair_router(4));
        let far = q.push(t(100), (3, 7));
        q.push(t(1), (0, 0));
        // Cancel an event sitting in shard 3's heap "from" shard 0:
        // the shared pending window needs no shard lookup.
        assert!(q.cancel(far));
        assert!(!q.cancel(far), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(s, _, e)| (s, e.1)), Some((0, 0)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn event_ids_match_single_queue_allocation() {
        let mut sharded = ShardedQueues::new(2, pair_router(2));
        let mut single: EventQueue<(usize, u64)> = EventQueue::new();
        for i in 0..20u64 {
            let a = sharded.push(t(i * 3 % 7), (i as usize, i));
            let b = single.push(t(i * 3 % 7), (i as usize, i));
            assert_eq!(a, b, "id allocation must match the single queue");
        }
        // And the merged pop order matches too.
        loop {
            let a = sharded.pop().map(|(_, t, e)| (t, e));
            let b = single.pop();
            assert_eq!(a, b);
            if b.is_none() {
                break;
            }
        }
    }

    // -- ShardedSimulation verification-mode semantics ----------------

    struct Relay {
        n_nodes: usize,
        hops_left: u32,
        log: Vec<(SimTime, usize)>,
    }

    /// (node, payload): each hop forwards to the next node after 10 ps.
    impl Model for Relay {
        type Event = (usize, u32);
        fn handle(
            &mut self,
            now: SimTime,
            (node, left): (usize, u32),
            ctx: &mut Context<'_, (usize, u32)>,
        ) {
            self.log.push((now, node));
            self.hops_left = left;
            if left > 0 {
                ctx.schedule_in(la(10), ((node + 1) % self.n_nodes, left - 1));
            }
        }
    }

    fn relay_router(shards: usize, n_nodes: usize) -> Router<(usize, u32)> {
        Box::new(move |e: &(usize, u32)| e.0 * shards / n_nodes)
    }

    #[test]
    fn sharded_simulation_matches_single_queue_engine() {
        let mk = || Relay {
            n_nodes: 6,
            hops_left: 0,
            log: vec![],
        };
        let mut single = crate::Simulation::new(mk());
        single.schedule_at(t(0), (0, 40));
        single.schedule_at(t(3), (4, 11));
        assert_eq!(single.run(), RunOutcome::QueueEmpty);

        for shards in [1, 2, 3, 6] {
            let mut sharded = ShardedSimulation::new(mk(), shards, la(10), relay_router(shards, 6));
            sharded.schedule_at(t(0), (0, 40));
            sharded.schedule_at(t(3), (4, 11));
            assert_eq!(sharded.run(), RunOutcome::QueueEmpty);
            assert_eq!(sharded.model().log, single.model().log, "{shards} shards");
            assert_eq!(sharded.processed(), single.processed());
            assert_eq!(sharded.now(), single.now());
        }
    }

    #[test]
    fn mailbox_digest_is_reproducible() {
        let run = || {
            let mut sim = ShardedSimulation::new(
                Relay {
                    n_nodes: 4,
                    hops_left: 0,
                    log: vec![],
                },
                2,
                la(10),
                relay_router(2, 4),
            );
            sim.schedule_at(t(0), (0, 25));
            sim.run();
            sim.shard_stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "shard stats are a pure function of the inputs");
        assert!(a.cross_shard_events > 0, "the relay crosses shards");
        assert!(a.epochs > 0);
    }

    #[test]
    fn lookahead_violations_are_counted_not_fatal() {
        // Hops of 10 ps with a claimed lookahead of 1000 ps: every
        // cross-shard hop lands inside the open epoch.
        let mut sim = ShardedSimulation::new(
            Relay {
                n_nodes: 4,
                hops_left: 0,
                log: vec![],
            },
            2,
            la(1000),
            relay_router(2, 4),
        );
        sim.schedule_at(t(0), (1, 12));
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        let stats = sim.shard_stats();
        assert!(stats.lookahead_violations > 0);
        assert_eq!(sim.processed(), 13);
    }

    #[test]
    fn sharded_step_honours_stop_and_event_limit() {
        struct Stopper;
        impl Model for Stopper {
            type Event = (usize, bool);
            fn handle(
                &mut self,
                _now: SimTime,
                (_, stop): (usize, bool),
                ctx: &mut Context<'_, (usize, bool)>,
            ) {
                if stop {
                    ctx.stop();
                }
            }
        }
        let router: Router<(usize, bool)> = Box::new(|e| e.0);
        let mut sim = ShardedSimulation::new(Stopper, 2, la(5), router);
        sim.schedule_at(t(1), (0, false));
        sim.schedule_at(t(2), (1, true));
        assert_eq!(sim.step(), None);
        assert_eq!(sim.step(), Some(RunOutcome::Stopped));
        assert_eq!(sim.step(), Some(RunOutcome::QueueEmpty));
        sim.set_event_limit(2);
        sim.schedule_at(t(3), (0, false));
        assert_eq!(sim.step(), Some(RunOutcome::EventLimit));
    }

    // -- partitioned serial reference ---------------------------------

    #[derive(Clone, PartialEq, Eq, Debug, Default)]
    struct Counter {
        seen: Vec<(u64, u64)>,
    }

    #[test]
    fn partitioned_serial_ping_pong() {
        // Two shards ping-ponging with delay exactly the lookahead.
        let (shards, stats) = run_partitioned_serial(
            vec![Counter::default(), Counter::default()],
            vec![(0, t(0), 8u64)],
            la(10),
            SimTime::MAX,
            |shard, state: &mut Counter, now, left, ctx| {
                state.seen.push((now.as_ps(), left));
                if left > 0 {
                    ctx.send(1 - shard, la(10), left - 1);
                }
            },
        );
        assert_eq!(stats.processed, 9);
        assert_eq!(stats.cross_shard_messages, 8);
        assert_eq!(
            shards[0].seen,
            vec![(0, 8), (20, 6), (40, 4), (60, 2), (80, 0)]
        );
        assert_eq!(shards[1].seen, vec![(10, 7), (30, 5), (50, 3), (70, 1)]);
    }

    #[test]
    fn event_exactly_at_epoch_horizon_waits_for_next_epoch() {
        // One shard, events at 0 and exactly at 0 + lookahead: the
        // second event must open a second epoch, not ride the first.
        let (_, stats) = run_partitioned_serial(
            vec![Counter::default()],
            vec![(0, t(0), 1u64), (0, t(10), 2u64)],
            la(10),
            SimTime::MAX,
            |_, state: &mut Counter, now, v, _ctx| {
                state.seen.push((now.as_ps(), v));
            },
        );
        assert_eq!(stats.epochs, 2, "the barrier event starts its own epoch");
        assert_eq!(stats.processed, 2);
    }

    #[test]
    #[should_panic(expected = "below the lookahead bound")]
    fn cross_shard_send_below_lookahead_panics() {
        run_partitioned_serial(
            vec![Counter::default(), Counter::default()],
            vec![(0, t(0), 1u64)],
            la(10),
            SimTime::MAX,
            |_, _state: &mut Counter, _now, v, ctx| {
                ctx.send(1, la(9), v);
            },
        );
    }

    #[test]
    fn zero_delay_local_send_is_fine() {
        // Same-shard sends are exempt from the lookahead bound: that is
        // the "zero-latency hops must share a shard" rule.
        let (shards, _) = run_partitioned_serial(
            vec![Counter::default()],
            vec![(0, t(0), 2u64)],
            la(10),
            SimTime::MAX,
            |shard, state: &mut Counter, now, v, ctx| {
                state.seen.push((now.as_ps(), v));
                if v > 0 {
                    ctx.send(shard, SimDuration::ZERO, v - 1);
                }
            },
        );
        assert_eq!(shards[0].seen, vec![(0, 2), (0, 1), (0, 0)]);
    }

    #[test]
    fn shards_env_parses() {
        // Serialised by env-var collisions with nothing else: this test
        // file owns QNP_SHARDS.
        std::env::remove_var("QNP_SHARDS");
        assert_eq!(shards_from_env(), None);
        std::env::set_var("QNP_SHARDS", "4");
        assert_eq!(shards_from_env(), Some(4));
        std::env::remove_var("QNP_SHARDS");
    }
}
