//! Reference model of the link-layer protocol state machine
//! (`qn_link::LinkProtocol`), QNP §3.5 / Dahlberg et al.
//!
//! The model re-implements the protocol's *observable contract* from
//! the documentation, independently and naively: admission control
//! (duplicate labels, invalid weights, unattainable fidelities),
//! weighted time-share scheduling (next slot = smallest
//! `time_used/weight`, ties to the lowest label), one generation in
//! flight at a time, link-wide strictly-increasing sequence numbers,
//! and exact request lifecycle events (`PairReady` per pair,
//! `RequestDone` exactly when a counted request's remaining demand hits
//! zero). Unlike the plain property tests this predicts the *exact*
//! schedule, not just invariants — the model is strictly stronger.
//!
//! [`LinkFault`] lets meta-tests inject protocol bugs at the system
//! adapter boundary and assert the harness catches them with a minimal
//! shrunk operation sequence (the PR's acceptance demonstration).

use crate::ModelSpec;
use proptest::prelude::*;
use qn_hardware::heralding::LinkPhysics;
use qn_hardware::params::{FibreParams, HardwareParams};
use qn_link::{LinkEvent, LinkLabel, LinkProtocol, LinkRequest, PairDemand, RejectReason};
use qn_quantum::bell::BellState;
use qn_sim::{NodeId, SimDuration};
use std::collections::BTreeMap;

/// One operation of the link service interface.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkOp {
    /// Submit a request (`count` `None` = continuous). `weight_tenths`
    /// of 0 exercises the invalid-weight rejection.
    Submit {
        label: u8,
        fidelity_pct: u8,
        count: Option<u8>,
        weight_tenths: u8,
    },
    /// Stop (COMPLETE) a request.
    Stop { label: u8 },
    /// Renegotiate a request's scheduling weight.
    SetWeight { label: u8, weight_tenths: u8 },
    /// Ask for the next action; if any, start and complete a generation
    /// that consumed `elapsed_us` of link time.
    Drive { elapsed_us: u16 },
    /// Ask for the next action; if any, start and abort it after
    /// `elapsed_us` of link time.
    Abort { elapsed_us: u16 },
}

/// A protocol bug injected at the system adapter, for harness
/// meta-tests. `None` is the faithful adapter used by the real tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkFault {
    /// Faithful adapter.
    None,
    /// `stop` is acknowledged but never reaches the protocol — the
    /// stopped request keeps generating.
    SwallowStop,
    /// `RequestDone` lifecycle events are dropped from completions.
    DropRequestDone,
    /// Aborted generations are not charged, starving siblings of their
    /// fair share.
    SkipAbortCharge,
}

/// The system under test: the real [`LinkProtocol`] behind a (possibly
/// faulty) adapter.
pub struct LinkSystem {
    proto: LinkProtocol,
    fault: LinkFault,
}

impl LinkSystem {
    fn stop(&mut self, label: LinkLabel) -> bool {
        match self.fault {
            // The buggy adapter claims success without acting.
            LinkFault::SwallowStop => self.proto.has_request(label),
            _ => self.proto.stop(label),
        }
    }

    fn complete(
        &mut self,
        announced: BellState,
        attempts: u64,
        elapsed: SimDuration,
    ) -> (qn_link::LinkPair, Vec<LinkEvent>) {
        let (pair, mut events) = self
            .proto
            .on_generation_complete(announced, attempts, elapsed);
        if self.fault == LinkFault::DropRequestDone {
            events.retain(|e| !matches!(e, LinkEvent::RequestDone(_)));
        }
        (pair, events)
    }

    fn abort(&mut self, label: LinkLabel, elapsed: SimDuration) {
        let elapsed = match self.fault {
            LinkFault::SkipAbortCharge => SimDuration::ZERO,
            _ => elapsed,
        };
        self.proto.on_generation_aborted(label, elapsed);
    }
}

#[derive(Clone, Debug)]
struct ModelRequest {
    alpha: f64,
    goodness: f64,
    remaining: Option<u64>,
    weight: f64,
    /// Seconds of link time charged (the scheduler's virtual clock).
    time_used: f64,
}

/// The reference model: a naive transcription of the documented
/// contract.
pub struct LinkModel {
    physics: LinkPhysics,
    requests: BTreeMap<u32, ModelRequest>,
    next_seq: u64,
}

impl LinkModel {
    /// The label scheduled next: smallest normalised usage, lowest
    /// label on ties. The driver completes or aborts every generation
    /// within a single op, so the model is never mid-generation here.
    fn next_label(&self) -> Option<u32> {
        self.requests
            .iter()
            .min_by(|(la, a), (lb, b)| {
                let na = a.time_used / a.weight;
                let nb = b.time_used / b.weight;
                na.partial_cmp(&nb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| la.cmp(lb))
            })
            .map(|(l, _)| *l)
    }

    /// New entrants start at the incumbents' minimum normalised usage
    /// (the no-starvation rule of the time-share scheduler).
    fn entry_time_used(&self, weight: f64) -> f64 {
        let base = self
            .requests
            .values()
            .map(|r| r.time_used / r.weight)
            .fold(f64::INFINITY, f64::min);
        if base.is_finite() {
            base * weight
        } else {
            0.0
        }
    }
}

/// [`ModelSpec`] for the link protocol. Build with [`LinkSpec::new`]
/// (faithful) or [`LinkSpec::with_fault`] (meta-tests).
pub struct LinkSpec {
    fault: LinkFault,
}

impl LinkSpec {
    pub fn new() -> Self {
        LinkSpec {
            fault: LinkFault::None,
        }
    }

    pub fn with_fault(fault: LinkFault) -> Self {
        LinkSpec { fault }
    }

    fn physics() -> LinkPhysics {
        LinkPhysics::new(HardwareParams::simulation(), FibreParams::lab_2m())
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::new()
    }
}

fn reject_name(events: &[LinkEvent]) -> Option<RejectReason> {
    match events.first() {
        Some(LinkEvent::Rejected(_, reason)) => Some(*reason),
        _ => None,
    }
}

impl ModelSpec for LinkSpec {
    type Op = LinkOp;
    type Model = LinkModel;
    type System = LinkSystem;

    fn new_model(&self) -> LinkModel {
        LinkModel {
            physics: Self::physics(),
            requests: BTreeMap::new(),
            next_seq: 0,
        }
    }

    fn new_system(&self) -> LinkSystem {
        LinkSystem {
            proto: LinkProtocol::new((NodeId(0), NodeId(1)), Self::physics()),
            fault: self.fault,
        }
    }

    fn op_strategy(&self) -> BoxedStrategy<LinkOp> {
        let count = prop_oneof![Just(None), (1u8..4).prop_map(Some)];
        prop_oneof![
            (0u8..5, 70u8..99, count, 0u8..25).prop_map(
                |(label, fidelity_pct, count, weight_tenths)| LinkOp::Submit {
                    label,
                    fidelity_pct,
                    count,
                    weight_tenths,
                }
            ),
            (0u8..5).prop_map(|label| LinkOp::Stop { label }),
            (0u8..5, 0u8..25).prop_map(|(label, weight_tenths)| LinkOp::SetWeight {
                label,
                weight_tenths,
            }),
            (1u16..2000).prop_map(|elapsed_us| LinkOp::Drive { elapsed_us }),
            (1u16..2000).prop_map(|elapsed_us| LinkOp::Abort { elapsed_us }),
        ]
        .boxed()
    }

    fn apply(
        &self,
        model: &mut LinkModel,
        system: &mut LinkSystem,
        op: &LinkOp,
    ) -> Result<(), String> {
        match *op {
            LinkOp::Submit {
                label,
                fidelity_pct,
                count,
                weight_tenths,
            } => {
                let label32 = LinkLabel(u32::from(label));
                let min_fidelity = f64::from(fidelity_pct) / 100.0;
                let weight = f64::from(weight_tenths) / 10.0;
                let events = system.proto.submit(LinkRequest {
                    label: label32,
                    min_fidelity,
                    demand: match count {
                        Some(n) => PairDemand::Count(u64::from(n)),
                        None => PairDemand::Continuous,
                    },
                    weight,
                });
                // The model's independent admission decision.
                let expected: Option<RejectReason> =
                    if model.requests.contains_key(&u32::from(label)) {
                        Some(RejectReason::DuplicateLabel)
                    } else if !(weight.is_finite() && weight > 0.0) {
                        Some(RejectReason::InvalidWeight)
                    } else if model.physics.alpha_for_fidelity(min_fidelity).is_none() {
                        Some(RejectReason::FidelityUnattainable)
                    } else {
                        None
                    };
                let got = reject_name(&events);
                if got != expected {
                    return Err(format!(
                        "submit({label}, F>={min_fidelity}, w={weight}): system {got:?}, \
                         model expected {expected:?}"
                    ));
                }
                if expected.is_none() {
                    let alpha = model
                        .physics
                        .alpha_for_fidelity(min_fidelity)
                        .expect("checked attainable");
                    let time_used = model.entry_time_used(weight);
                    model.requests.insert(
                        u32::from(label),
                        ModelRequest {
                            alpha,
                            goodness: model.physics.fidelity(alpha),
                            remaining: count.map(u64::from),
                            weight,
                            time_used,
                        },
                    );
                }
                Ok(())
            }
            LinkOp::Stop { label } => {
                let expected = model.requests.remove(&u32::from(label)).is_some();
                let got = system.stop(LinkLabel(u32::from(label)));
                if got != expected {
                    return Err(format!(
                        "stop({label}): system returned {got}, model expected {expected}"
                    ));
                }
                Ok(())
            }
            LinkOp::SetWeight {
                label,
                weight_tenths,
            } => {
                let weight = f64::from(weight_tenths) / 10.0;
                system.proto.set_weight(LinkLabel(u32::from(label)), weight);
                if weight.is_finite() && weight > 0.0 {
                    if let Some(req) = model.requests.get_mut(&u32::from(label)) {
                        // Norm-preserving rescale: the share changes going
                        // forward without a catch-up burst.
                        let norm = req.time_used / req.weight;
                        req.weight = weight;
                        req.time_used = norm * weight;
                    }
                }
                Ok(())
            }
            LinkOp::Drive { elapsed_us } => {
                let expected = model.next_label();
                let got = system.proto.next_action();
                match (expected, got) {
                    (None, None) => Ok(()),
                    (Some(label), Some(spec)) if spec.label == LinkLabel(label) => {
                        let req = model.requests.get_mut(&label).expect("model scheduled it");
                        if (spec.alpha - req.alpha).abs() > 1e-12 {
                            return Err(format!(
                                "drive: alpha for lbl{label}: system {}, model {}",
                                spec.alpha, req.alpha
                            ));
                        }
                        system.proto.on_generation_started(spec.label);
                        if system.proto.next_action().is_some() {
                            return Err("drive: a second action while generating".to_string());
                        }
                        let elapsed = SimDuration::from_micros(u64::from(elapsed_us));
                        let attempts = u64::from(elapsed_us); // passthrough value
                        let (pair, events) =
                            system.complete(BellState::PSI_PLUS, attempts, elapsed);
                        // Model-side bookkeeping.
                        let expected_seq = model.next_seq;
                        model.next_seq += 1;
                        req.time_used += elapsed.as_secs_f64();
                        let mut expected_done = false;
                        if let Some(rem) = &mut req.remaining {
                            *rem -= 1;
                            if *rem == 0 {
                                expected_done = true;
                            }
                        }
                        let (expected_alpha, expected_goodness) = (req.alpha, req.goodness);
                        if expected_done {
                            model.requests.remove(&label);
                        }
                        // Compare the delivered pair field by field.
                        if pair.id.seq != expected_seq {
                            return Err(format!(
                                "drive: pair seq {} (model expected {expected_seq})",
                                pair.id.seq
                            ));
                        }
                        if pair.label != LinkLabel(label)
                            || pair.attempts != attempts
                            || (pair.alpha - expected_alpha).abs() > 1e-12
                            || (pair.goodness - expected_goodness).abs() > 1e-12
                        {
                            return Err(format!(
                                "drive: delivered pair {pair:?} disagrees with model \
                                 (lbl{label}, alpha {expected_alpha}, goodness {expected_goodness})"
                            ));
                        }
                        let done_events = events
                            .iter()
                            .filter(|e| matches!(e, LinkEvent::RequestDone(l) if *l == LinkLabel(label)))
                            .count();
                        let ready_events = events
                            .iter()
                            .filter(|e| matches!(e, LinkEvent::PairReady(p) if p.id == pair.id))
                            .count();
                        if ready_events != 1 || done_events != usize::from(expected_done) {
                            return Err(format!(
                                "drive: lifecycle events {events:?} (model expected 1 PairReady, \
                                 {} RequestDone)",
                                usize::from(expected_done)
                            ));
                        }
                        Ok(())
                    }
                    (expected, got) => Err(format!(
                        "drive: next_action {got:?}, model expected label {expected:?}"
                    )),
                }
            }
            LinkOp::Abort { elapsed_us } => {
                let expected = model.next_label();
                let got = system.proto.next_action();
                match (expected, got) {
                    (None, None) => Ok(()),
                    (Some(label), Some(spec)) if spec.label == LinkLabel(label) => {
                        system.proto.on_generation_started(spec.label);
                        let elapsed = SimDuration::from_micros(u64::from(elapsed_us));
                        system.abort(spec.label, elapsed);
                        let req = model.requests.get_mut(&label).expect("model scheduled it");
                        req.time_used += elapsed.as_secs_f64();
                        if system.proto.generating().is_some() {
                            return Err("abort: still generating afterwards".to_string());
                        }
                        Ok(())
                    }
                    (expected, got) => Err(format!(
                        "abort: next_action {got:?}, model expected label {expected:?}"
                    )),
                }
            }
        }
    }

    fn invariants(&self, model: &LinkModel, system: &LinkSystem) -> Result<(), String> {
        if system.proto.active_requests() != model.requests.len() {
            return Err(format!(
                "active_requests: system {} vs model {}",
                system.proto.active_requests(),
                model.requests.len()
            ));
        }
        for label in model.requests.keys() {
            if !system.proto.has_request(LinkLabel(*label)) {
                return Err(format!("system lost request lbl{label}"));
            }
        }
        // Every Drive/Abort op completes or aborts its generation
        // before returning, so between ops nothing may be in flight.
        if let Some(label) = system.proto.generating() {
            return Err(format!(
                "generating {label} between ops; the model expects none in flight"
            ));
        }
        Ok(())
    }
}
