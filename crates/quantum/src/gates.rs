//! Standard gate matrices plus the NV-specific two-qubit interaction.
//!
//! Qubit-index convention used across the engine: **qubit 0 is the most
//! significant bit** of a computational basis index. For a two-qubit gate
//! matrix, the first listed target is the more significant bit.

use crate::complex::C64;
use crate::matrix::CMatrix;
use std::f64::consts::FRAC_1_SQRT_2;

fn r(v: f64) -> C64 {
    C64::real(v)
}

/// Pauli label.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Bit flip.
    X,
    /// Bit+phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this Pauli.
    pub fn matrix(self) -> CMatrix {
        match self {
            Pauli::I => identity(),
            Pauli::X => x(),
            Pauli::Y => y(),
            Pauli::Z => z(),
        }
    }
}

/// 2×2 identity.
pub fn identity() -> CMatrix {
    CMatrix::identity(2)
}

/// Pauli-X.
pub fn x() -> CMatrix {
    CMatrix::from_reals(2, 2, &[0.0, 1.0, 1.0, 0.0])
}

/// Pauli-Y.
pub fn y() -> CMatrix {
    CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
}

/// Pauli-Z.
pub fn z() -> CMatrix {
    CMatrix::from_reals(2, 2, &[1.0, 0.0, 0.0, -1.0])
}

/// Hadamard.
pub fn h() -> CMatrix {
    CMatrix::from_reals(
        2,
        2,
        &[FRAC_1_SQRT_2, FRAC_1_SQRT_2, FRAC_1_SQRT_2, -FRAC_1_SQRT_2],
    )
}

/// Phase gate S = diag(1, i).
pub fn s() -> CMatrix {
    CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::I]])
}

/// Inverse phase gate S† = diag(1, −i).
pub fn sdg() -> CMatrix {
    CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::I]])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> CMatrix {
    CMatrix::from_rows(&[
        &[C64::ONE, C64::ZERO],
        &[C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
    ])
}

/// Rotation about X by `theta`.
pub fn rx(theta: f64) -> CMatrix {
    let c = r((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    CMatrix::from_rows(&[&[c, s], &[s, c]])
}

/// Rotation about Y by `theta`.
pub fn ry(theta: f64) -> CMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    CMatrix::from_reals(2, 2, &[c, -s, s, c])
}

/// Rotation about Z by `theta`.
pub fn rz(theta: f64) -> CMatrix {
    CMatrix::from_rows(&[
        &[C64::cis(-theta / 2.0), C64::ZERO],
        &[C64::ZERO, C64::cis(theta / 2.0)],
    ])
}

/// CNOT with the first (more significant) qubit as control.
pub fn cnot() -> CMatrix {
    CMatrix::from_reals(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
    )
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz() -> CMatrix {
    CMatrix::from_reals(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, -1.0,
        ],
    )
}

/// SWAP of two qubits.
pub fn swap() -> CMatrix {
    CMatrix::from_reals(
        4,
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ],
    )
}

/// The native NV electron–carbon two-qubit interaction: a controlled √X
/// ("controlled-√χ" in the paper's Table 1). Two applications equal a CNOT
/// up to local phases; the repeater's swap circuit uses it through
/// [`cnot`]-equivalent compilation, and we keep the native gate for
/// fidelity-accounting realism.
pub fn controlled_sqrt_x() -> CMatrix {
    let a = C64::new(0.5, 0.5);
    let b = C64::new(0.5, -0.5);
    CMatrix::from_rows(&[
        &[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::ZERO, a, b],
        &[C64::ZERO, C64::ZERO, b, a],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gates_unitary() {
        for (name, g) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("sdg", sdg()),
            ("t", t()),
            ("rx", rx(0.3)),
            ("ry", ry(1.1)),
            ("rz", rz(2.7)),
            ("cnot", cnot()),
            ("cz", cz()),
            ("swap", swap()),
            ("csx", controlled_sqrt_x()),
        ] {
            assert!(g.is_unitary(1e-12), "{name} not unitary");
        }
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ
        let xy = &x() * &y();
        assert!(xy.approx_eq(&z().scale_c(C64::I), 1e-12));
        // X² = I
        assert!((&x() * &x()).approx_eq(&identity(), 1e-12));
        // HZH = X
        let hzh = &(&h() * &z()) * &h();
        assert!(hzh.approx_eq(&x(), 1e-12));
    }

    #[test]
    fn s_squared_is_z() {
        assert!((&s() * &s()).approx_eq(&z(), 1e-12));
        assert!((&s() * &sdg()).approx_eq(&identity(), 1e-12));
    }

    #[test]
    fn controlled_sqrt_x_squares_to_cnot() {
        let g = controlled_sqrt_x();
        assert!((&g * &g).approx_eq(&cnot(), 1e-12));
    }

    #[test]
    fn rotation_composition() {
        let a = rx(0.4);
        let b = rx(0.6);
        assert!((&a * &b).approx_eq(&rx(1.0), 1e-12));
        // Full turn is −I (spinor double cover).
        let full = rz(2.0 * std::f64::consts::PI);
        assert!(full.approx_eq(&identity().scale(-1.0), 1e-12));
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let c = cnot();
        // |10> (control=1, target=0) -> |11>
        assert_eq!(c[(3, 2)], C64::ONE);
        assert_eq!(c[(2, 3)], C64::ONE);
        // |00> fixed.
        assert_eq!(c[(0, 0)], C64::ONE);
    }
}
