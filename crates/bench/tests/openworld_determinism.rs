//! Determinism regression suite for the open-world workload engine:
//! the sweep must be a pure function of `(seeds, config)` — the same
//! points, bit for bit, whether it runs serially, on a big thread
//! pool, or twice in a row. This is what lets `baselines/openworld.json`
//! be diffed at `--tolerance 0`.

use qn_bench::scenarios::{openworld_scenario, OpenWorldConfig, OwArrivals, OwTopology};
use qn_exec::run_sweep_with;
use qn_sim::SimDuration;

fn configs() -> Vec<(&'static str, OpenWorldConfig)> {
    vec![
        (
            "chain4/poisson",
            OpenWorldConfig::smoke(
                OwTopology::Chain { n: 4 },
                OwArrivals::Poisson { rate_hz: 0.4 },
                12,
            ),
        ),
        (
            "grid3x2/diurnal",
            OpenWorldConfig::smoke(
                OwTopology::Grid { w: 3, h: 2 },
                OwArrivals::Diurnal {
                    rate_hz: 0.4,
                    depth: 0.8,
                    period: SimDuration::from_secs(20),
                },
                12,
            ),
        ),
    ]
}

/// One worker thread and eight worker threads must produce identical
/// point vectors — the sweep engine commits results by job index and
/// each run is seed-pure, so the thread count must be unobservable.
#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let seeds: Vec<u64> = (0..6).map(|i| 0xC0FFEE + i).collect();
    for (label, cfg) in configs() {
        let serial = {
            let cfg = cfg.clone();
            run_sweep_with(1, move |seed: u64| openworld_scenario(seed, &cfg), &seeds)
        };
        let pooled = {
            let cfg = cfg.clone();
            run_sweep_with(8, move |seed: u64| openworld_scenario(seed, &cfg), &seeds)
        };
        assert_eq!(
            serial, pooled,
            "{label}: thread count leaked into the workload points"
        );
        // The workload must actually do something, or the equality
        // above is vacuous.
        assert!(
            serial.iter().any(|p| p.requests_completed > 0),
            "{label}: no requests completed — workload too small to test"
        );
    }
}

/// Back-to-back runs of the same sweep must agree exactly — no hidden
/// global state (thread-local RNGs, caches keyed on addresses, time).
#[test]
fn repeated_sweeps_are_bit_identical() {
    let seeds: Vec<u64> = (0..4).map(|i| 0xFEED + i).collect();
    for (label, cfg) in configs() {
        let run = || {
            let cfg = cfg.clone();
            run_sweep_with(4, move |seed: u64| openworld_scenario(seed, &cfg), &seeds)
        };
        assert_eq!(run(), run(), "{label}: repeated sweeps diverged");
    }
}

/// Every simulation-domain metric of a point must be finite — NaN or
/// infinity in a committed baseline would poison `--tolerance 0` diffs.
#[test]
fn points_carry_finite_metrics_only() {
    for (label, cfg) in configs() {
        let p = openworld_scenario(7, &cfg);
        for (name, v) in [
            ("events_per_sim_sec", p.events_per_sim_sec),
            ("requests_per_sim_sec", p.requests_per_sim_sec),
            ("pairs_per_sim_sec", p.pairs_per_sim_sec),
        ] {
            assert!(v.is_finite(), "{label}: {name} is not finite ({v})");
        }
    }
}
