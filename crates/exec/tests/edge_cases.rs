//! Edge cases of the sweep runner: degenerate seed lists, thread
//! counts exceeding the work, and deterministic panic propagation.

use qn_exec::{run_sweep_with, threads, ThreadPool};
use qn_sim::shard::shards_from_env;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A zero-seed sweep is a no-op at any thread count — no workers are
/// spun up for nothing, and the result is simply empty.
#[test]
fn zero_seed_sweeps_are_empty() {
    for threads in [1usize, 2, 8, 64] {
        let out: Vec<u64> = run_sweep_with(threads, |s: u64| s * 3, &[]);
        assert!(out.is_empty(), "threads={threads}");
    }
}

/// More workers than seeds: every seed still runs exactly once and
/// results stay in seed order.
#[test]
fn more_threads_than_seeds() {
    let runs = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&runs);
    let seeds = [10u64, 20, 30];
    let out = run_sweep_with(
        64,
        move |seed: u64| {
            counter.fetch_add(1, Ordering::SeqCst);
            seed + 1
        },
        &seeds,
    );
    assert_eq!(out, vec![11, 21, 31]);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        3,
        "each seed runs exactly once"
    );
}

/// The pool itself clamps to the job count's worth of useful workers
/// only via scheduling — constructing a pool wider than the work must
/// still drain and join cleanly.
#[test]
fn oversized_pool_joins_cleanly() {
    let pool = ThreadPool::new(32);
    let done = Arc::new(AtomicUsize::new(0));
    let d = Arc::clone(&done);
    pool.execute(move || {
        d.fetch_add(1, Ordering::SeqCst);
    });
    pool.join();
    assert_eq!(done.load(Ordering::SeqCst), 1);
}

/// When several seeds panic, the panic re-raised is the one of the
/// *first failing seed index* — even if a later seed finishes (and
/// fails) first. Failures are as deterministic as successes.
#[test]
fn first_failing_seed_wins_regardless_of_completion_order() {
    let seeds: Vec<u64> = (0..8).collect();
    let err = panic::catch_unwind(|| {
        run_sweep_with(
            4,
            |seed: u64| {
                if seed == 2 {
                    // The earliest failing seed is also the slowest.
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("seed index 2 failed");
                }
                if seed >= 5 {
                    panic!("seed index {seed} failed");
                }
                seed
            },
            &seeds,
        )
    })
    .expect_err("sweep must propagate a panic");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert_eq!(msg, "seed index 2 failed");
}

/// A panic at the very first seed index propagates with its payload.
#[test]
fn panic_at_index_zero_propagates() {
    let err = panic::catch_unwind(|| {
        run_sweep_with(
            3,
            |seed: u64| {
                if seed == 7 {
                    panic!("boom at the head");
                }
                seed
            },
            &[7, 8, 9],
        )
    })
    .expect_err("sweep must propagate the panic");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "boom at the head");
}

/// `QNP_THREADS` parsing: unset uses the detected default, positive
/// integers are honoured, and zero or garbage **fails fast** — a typo'd
/// knob must never silently degrade to a different thread count. Runs
/// in one test to keep the env-var mutation sequential.
#[test]
fn qnp_threads_parsing() {
    let default = {
        std::env::remove_var("QNP_THREADS");
        threads()
    };
    assert!(default >= 1);

    std::env::set_var("QNP_THREADS", "3");
    assert_eq!(threads(), 3);

    for bad in ["0", "not-a-number", "-2", ""] {
        std::env::set_var("QNP_THREADS", bad);
        let err = panic::catch_unwind(threads)
            .expect_err("zero/garbage QNP_THREADS must fail fast, not fall back");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("invalid QNP_THREADS") && msg.contains("positive integer"),
            "QNP_THREADS={bad:?} panic message: {msg:?}"
        );
    }

    std::env::remove_var("QNP_THREADS");
    assert_eq!(threads(), default);
}

/// `QNP_SHARDS` follows the same convention: unset means "no sharding"
/// (`None`), positive integers are honoured, zero or garbage fails
/// fast with a message naming the knob.
#[test]
fn qnp_shards_parsing() {
    std::env::remove_var("QNP_SHARDS");
    assert_eq!(shards_from_env(), None);

    std::env::set_var("QNP_SHARDS", "4");
    assert_eq!(shards_from_env(), Some(4));
    std::env::set_var("QNP_SHARDS", "1");
    assert_eq!(shards_from_env(), Some(1));

    for bad in ["0", "four", "-1", ""] {
        std::env::set_var("QNP_SHARDS", bad);
        let err = panic::catch_unwind(shards_from_env)
            .expect_err("zero/garbage QNP_SHARDS must fail fast, not fall back");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("invalid QNP_SHARDS") && msg.contains("positive integer"),
            "QNP_SHARDS={bad:?} panic message: {msg:?}"
        );
    }

    std::env::remove_var("QNP_SHARDS");
    assert_eq!(shards_from_env(), None);
}
