//! `qn_testkit` — model-based testing of the protocol state machines.
//!
//! The paper's correctness argument rests on state-machine behaviour
//! (QNP §4–5): the link layer's generation schedule, the network layer's
//! epoch-versioned demultiplexer, the simulator's event ordering. Unit
//! tests check hand-picked traces and the plain property tests check
//! *invariants*; this crate checks **behaviour**: a random sequence of
//! operations is applied simultaneously to the real implementation and
//! to an independent, deliberately-simple *reference model*, and any
//! observable divergence fails the test. Because the driver runs on the
//! shrinking `proptest` shim, a diverging sequence is minimised to a
//! locally-minimal counterexample — typically the two or three
//! operations that actually matter.
//!
//! # Writing a model
//!
//! Implement [`ModelSpec`]: the operation alphabet (`Op`, with a
//! [`proptest`] strategy), how to build a fresh reference `Model` and
//! real `System`, and [`ModelSpec::apply`], which applies one operation
//! to both and reports any divergence as an `Err(String)`. Optional
//! hooks: [`ModelSpec::precondition`] skips operations that are
//! meaningless in the current model state (skipping, rather than
//! rejecting, keeps every subsequence of a failing sequence runnable —
//! which is what makes shrinking sound), and [`ModelSpec::invariants`]
//! is checked after every applied operation. Then:
//!
//! ```ignore
//! ModelTest::new("my_subsystem_matches_model", MySpec).run();
//! ```
//!
//! Ready-made models for the simulator event queue, the link-layer
//! protocol state machine and the net-layer demultiplexer / routing
//! table live under [`models`].

use proptest::collection::vec;
use proptest::strategy::BoxedStrategy;
use proptest::test_runner::{run_property, Config, TestCaseError};
use std::fmt;

pub mod models;

/// A subsystem specification: an operation alphabet, a reference model,
/// and the real system under test.
pub trait ModelSpec {
    /// One operation of the subsystem's interface.
    type Op: Clone + fmt::Debug + 'static;
    /// The independent reference implementation.
    type Model;
    /// The real implementation under test.
    type System;

    /// A fresh reference model.
    fn new_model(&self) -> Self::Model;

    /// A fresh system under test.
    fn new_system(&self) -> Self::System;

    /// The operation generator.
    fn op_strategy(&self) -> BoxedStrategy<Self::Op>;

    /// Whether `op` is meaningful in the current model state. Returning
    /// `false` *skips* the operation (it is not an error), so any
    /// subsequence of a generated sequence remains runnable — the
    /// property shrinking relies on.
    fn precondition(&self, _model: &Self::Model, _op: &Self::Op) -> bool {
        true
    }

    /// Apply `op` to both the model and the system, comparing every
    /// observable output. `Err` describes the divergence.
    fn apply(
        &self,
        model: &mut Self::Model,
        system: &mut Self::System,
        op: &Self::Op,
    ) -> Result<(), String>;

    /// Cross-cutting checks run after every applied operation.
    fn invariants(&self, _model: &Self::Model, _system: &Self::System) -> Result<(), String> {
        Ok(())
    }
}

/// A model/system divergence at one step of an operation sequence.
#[derive(Clone, Debug)]
pub struct Divergence<Op> {
    /// Index of the diverging operation within the sequence.
    pub step: usize,
    /// The operation that exposed the divergence.
    pub op: Op,
    /// What differed.
    pub message: String,
}

/// Run one operation sequence against a fresh model + system pair.
/// Returns the number of operations actually applied (preconditions may
/// skip some), or the first divergence. Panics out of the system under
/// test propagate; the [`ModelTest`] driver uses [`run_ops_caught`] so
/// a crashing implementation is still shrunk and reported with its
/// minimal sequence.
pub fn run_ops<S: ModelSpec>(spec: &S, ops: &[S::Op]) -> Result<usize, Divergence<S::Op>> {
    run_ops_inner(spec, ops, false)
}

/// [`run_ops`], but a panic inside `apply`/`invariants` (a crashing
/// system under test) is converted into a [`Divergence`] at the
/// panicking step instead of unwinding.
pub fn run_ops_caught<S: ModelSpec>(spec: &S, ops: &[S::Op]) -> Result<usize, Divergence<S::Op>> {
    run_ops_inner(spec, ops, true)
}

fn run_ops_inner<S: ModelSpec>(
    spec: &S,
    ops: &[S::Op],
    catch_panics: bool,
) -> Result<usize, Divergence<S::Op>> {
    let mut model = spec.new_model();
    let mut system = spec.new_system();
    let mut applied = 0usize;
    for (step, op) in ops.iter().enumerate() {
        if !spec.precondition(&model, op) {
            continue;
        }
        let outcome = if catch_panics {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                spec.apply(&mut model, &mut system, op)
                    .and_then(|()| spec.invariants(&model, &system).map_err(invariant_msg))
            }))
            .unwrap_or_else(|payload| {
                Err(format!(
                    "panic: {}",
                    proptest::test_runner::panic_message(payload.as_ref())
                ))
            })
        } else {
            spec.apply(&mut model, &mut system, op)
                .and_then(|()| spec.invariants(&model, &system).map_err(invariant_msg))
        };
        outcome.map_err(|message| Divergence {
            step,
            op: op.clone(),
            message,
        })?;
        applied += 1;
    }
    Ok(applied)
}

fn invariant_msg(message: String) -> String {
    format!("invariant violated: {message}")
}

/// A failed model test: the diverging operation sequence, minimised.
#[derive(Clone, Debug)]
pub struct ModelFailure<Op> {
    /// The locally-minimal diverging sequence — dropping any single
    /// operation (or simplifying any single operation) makes the model
    /// and system agree again.
    pub minimal: Vec<Op>,
    /// The sequence as originally generated.
    pub original: Vec<Op>,
    /// Step within `minimal` where the divergence fires.
    pub step: usize,
    /// The divergence message at the minimal sequence.
    pub message: String,
    /// Shrink steps accepted while minimising.
    pub shrinks: u64,
    /// Property executions spent shrinking.
    pub shrink_runs: u64,
}

impl<Op: fmt::Debug> ModelFailure<Op> {
    /// Render for a panic message.
    pub fn render(&self, name: &str) -> String {
        let mut out = format!(
            "model test {name} diverged at step {} of the minimal sequence:\n{}\n\
             minimal operation sequence ({} ops, {} shrinks in {} runs):\n",
            self.step,
            self.message,
            self.minimal.len(),
            self.shrinks,
            self.shrink_runs,
        );
        for (i, op) in self.minimal.iter().enumerate() {
            out.push_str(&format!("  [{i}] {op:?}\n"));
        }
        out.push_str(&format!(
            "original diverging sequence ({} ops):\n",
            self.original.len()
        ));
        for (i, op) in self.original.iter().enumerate() {
            out.push_str(&format!("  [{i}] {op:?}\n"));
        }
        out
    }
}

/// The model-test driver: generates random operation sequences, runs
/// them through [`run_ops`], and shrinks any diverging sequence.
pub struct ModelTest<S: ModelSpec> {
    name: String,
    spec: S,
    cases: u32,
    max_ops: usize,
}

impl<S: ModelSpec> ModelTest<S> {
    /// A driver named `name` (the name seeds the deterministic RNG, so
    /// every run of the same test generates and shrinks identically).
    pub fn new(name: &str, spec: S) -> Self {
        ModelTest {
            name: name.to_string(),
            spec,
            cases: 96,
            max_ops: 48,
        }
    }

    /// Number of random sequences to run (default 96; scaled by
    /// `PROPTEST_CASES_MULTIPLIER` like every property test).
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Maximum operations per sequence (default 48).
    pub fn max_ops(mut self, max_ops: usize) -> Self {
        self.max_ops = max_ops;
        self
    }

    /// Run the test, returning the number of passing cases or the
    /// minimised failure. Meta-tests use this to assert on the minimal
    /// counterexample programmatically.
    pub fn check(&self) -> Result<u32, ModelFailure<S::Op>> {
        let config = Config::with_cases(self.cases);
        let strategy = vec(self.spec.op_strategy(), 0..=self.max_ops);
        let spec = &self.spec;
        match run_property(&self.name, &config, &strategy, |ops| {
            match run_ops_caught(spec, &ops) {
                Ok(_) => Ok(()),
                Err(d) => Err(TestCaseError::Fail(format!(
                    "step {}: {} (op {:?})",
                    d.step, d.message, d.op
                ))),
            }
        }) {
            Ok(cases) => Ok(cases),
            Err(failure) => {
                let divergence = run_ops_caught(spec, &failure.minimal)
                    .expect_err("shrinking only accepts sequences that still diverge");
                Err(ModelFailure {
                    minimal: failure.minimal,
                    original: failure.original,
                    step: divergence.step,
                    message: divergence.message,
                    shrinks: failure.stats.accepted,
                    shrink_runs: failure.stats.executions,
                })
            }
        }
    }

    /// Run the test, panicking with the minimised counterexample on
    /// divergence — the entry point for `#[test]` functions.
    pub fn run(&self) {
        if let Err(failure) = self.check() {
            panic!("{}", failure.render(&self.name));
        }
    }
}
