//! Resilience scenarios: circuit teardown mid-flight and message jitter
//! — the paper's §4.1 "Classical communication and link reliability"
//! behaviours.

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, AppEvent, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::NetworkBuilder;
use qn_routing::{dumbbell, CutoffPolicy};
use qn_sim::{SimDuration, SimTime};

fn keep(id: u64, head: qn_sim::NodeId, tail: qn_sim::NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

#[test]
fn teardown_mid_flight_aborts_cleanly() {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(81).build();
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a1, d.b1, 0.85, CutoffPolicy::short())
        .unwrap();
    // A huge request on v1 that cannot complete before the teardown, and
    // a normal one on v2 that must be unaffected.
    sim.submit_at(SimTime::ZERO, v1, keep(1, d.a0, d.b0, 0.85, 1_000_000));
    sim.submit_at(SimTime::ZERO, v2, keep(1, d.a1, d.b1, 0.85, 5));
    sim.close_circuit_at(SimTime::ZERO + SimDuration::from_millis(200), v1);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

    let app = sim.app();
    // v1's application was told the circuit went down.
    assert!(
        app.events
            .iter()
            .any(|(_, _, ev)| matches!(ev, AppEvent::CircuitDown(c) if *c == v1)),
        "CircuitDown notification missing"
    );
    // v2 completed untouched.
    assert!(app.completed.contains_key(&(v2, RequestId(1))));
    assert_eq!(
        app.confirmed_deliveries(v2, d.a1, SimTime::ZERO, SimTime::MAX),
        5
    );
    // No quantum memory leaked: pairs of the torn-down circuit were
    // released (cutoffs + teardown discards drain the rest).
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    assert_eq!(sim.live_pairs(), 0, "pairs leaked after teardown");
}

#[test]
fn teardown_before_any_request_is_a_noop_for_others() {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(82).build();
    let v1 = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    let v2 = sim
        .open_circuit(d.a0, d.b1, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.close_circuit_at(SimTime::ZERO, v1);
    sim.submit_at(
        SimTime::ZERO + SimDuration::from_millis(1),
        v2,
        keep(1, d.a0, d.b1, 0.85, 3),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    assert!(sim.app().completed.contains_key(&(v2, RequestId(1))));
}

#[test]
fn jitter_does_not_break_the_protocol() {
    // 2 ms of uniform per-message jitter: the reliable in-order transport
    // must keep the protocol fully functional (the paper's reliance on
    // TCP-like semantics).
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology)
        .seed(83)
        .message_jitter(SimDuration::from_millis(2))
        .build();
    let vc = sim
        .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
        .unwrap();
    sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 6));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let app = sim.app();
    assert!(app.completed.contains_key(&(vc, RequestId(1))));
    assert_eq!(
        app.confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX),
        6
    );
    // Fidelity still respects the budget (jitter only delays bookkeeping).
    let f = app.mean_fidelity(vc, d.a0).unwrap();
    assert!(f > 0.8, "jittered run fidelity {f}");
    sim.run_until(sim.now() + SimDuration::from_secs(5));
    assert_eq!(sim.live_pairs(), 0);
}

#[test]
fn jitter_changes_timing_but_not_correctness() {
    let run = |jitter_us: u64| -> usize {
        let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
        let mut sim = NetworkBuilder::new(topology)
            .seed(84)
            .message_jitter(SimDuration::from_micros(jitter_us))
            .build();
        let vc = sim
            .open_circuit(d.a0, d.b0, 0.85, CutoffPolicy::short())
            .unwrap();
        sim.submit_at(SimTime::ZERO, vc, keep(1, d.a0, d.b0, 0.85, 4));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        sim.app()
            .confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX)
    };
    assert_eq!(run(0), 4);
    assert_eq!(run(500), 4);
    assert_eq!(run(5_000), 4);
}
