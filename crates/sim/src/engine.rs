//! The simulation engine: drives a [`Model`] by popping events off the
//! queue in `(time, insertion)` order and dispatching them.
//!
//! The engine is intentionally minimal — everything domain-specific (nodes,
//! channels, hardware) lives in the model. The model receives a
//! [`Context`] on every dispatch through which it schedules or cancels
//! future events, inspects the clock, and requests a stop.

use crate::queue::{EventId, EventQueue};
use crate::shard::ShardedQueues;
use crate::time::{SimDuration, SimTime};

/// A discrete-event model. Implemented by the network runtime.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handle a single event at simulated time `now`. New events are
    /// scheduled through `ctx`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// The scheduler a [`Context`] writes into: the single queue of
/// [`Simulation`] or the per-shard queues of
/// [`crate::shard::ShardedSimulation`]. The two share id allocation and
/// ordering semantics, so the model cannot tell them apart.
enum QueueRef<'a, E> {
    Single(&'a mut EventQueue<E>),
    Sharded(&'a mut ShardedQueues<E>),
}

/// Scheduling handle passed to the model during event dispatch.
pub struct Context<'a, E> {
    queue: QueueRef<'a, E>,
    now: SimTime,
    stop: &'a mut bool,
}

impl<'a, E> Context<'a, E> {
    pub(crate) fn single(queue: &'a mut EventQueue<E>, now: SimTime, stop: &'a mut bool) -> Self {
        Context {
            queue: QueueRef::Single(queue),
            now,
            stop,
        }
    }

    pub(crate) fn sharded(
        queues: &'a mut ShardedQueues<E>,
        now: SimTime,
        stop: &'a mut bool,
    ) -> Self {
        Context {
            queue: QueueRef::Sharded(queues),
            now,
            stop,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, at: SimTime, event: E) -> EventId {
        match &mut self.queue {
            QueueRef::Single(q) => q.push(at, event),
            QueueRef::Sharded(q) => q.push(at, event),
        }
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.push(at, event)
    }

    /// Schedule an event at an absolute time. Times in the past are clamped
    /// to "now" (the event still runs after the current one).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.push(at.max(self.now), event)
    }

    /// Cancel a previously scheduled event. Returns `true` if it was still
    /// pending. Under a sharded scheduler this works from any shard, on
    /// events in any shard's queue — the pending set is shared.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match &mut self.queue {
            QueueRef::Single(q) => q.cancel(id),
            QueueRef::Sharded(q) => q.cancel(id),
        }
    }

    /// Request the engine to stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// Outcome of [`Simulation::run_until`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    QueueEmpty,
    /// The horizon was reached; pending events beyond it remain queued.
    HorizonReached,
    /// The model requested a stop.
    Stopped,
    /// The event budget was exhausted (see [`Simulation::set_event_limit`]).
    EventLimit,
}

/// A discrete-event simulation over a model `M`.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    event_limit: u64,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation at time zero with an empty queue.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            event_limit: u64::MAX,
        }
    }

    /// The current simulated time (time of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Borrow the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrow the model (e.g. to extract metrics between phases).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation and return the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Seed an event before (or between) runs.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        self.queue.push(at.max(self.now), event)
    }

    /// Seed an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Cap the total number of dispatched events; `run*` returns
    /// [`RunOutcome::EventLimit`] once exceeded. A safety valve against
    /// accidental event storms in scenarios and tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Dispatch the single earliest event.
    ///
    /// Returns `None` when an event was dispatched and the run may
    /// continue; otherwise the terminal [`RunOutcome`]: the event
    /// budget was already exhausted ([`RunOutcome::EventLimit`], no
    /// event dispatched), the queue was empty
    /// ([`RunOutcome::QueueEmpty`]), or the dispatched event's handler
    /// requested a stop ([`RunOutcome::Stopped`]) — the same
    /// stop/budget contract as [`Simulation::run_until`], which a
    /// plain `bool` used to silently drop.
    pub fn step(&mut self) -> Option<RunOutcome> {
        if self.processed >= self.event_limit {
            return Some(RunOutcome::EventLimit);
        }
        let Some((time, event)) = self.queue.pop() else {
            return Some(RunOutcome::QueueEmpty);
        };
        debug_assert!(time >= self.now, "event queue violated time order");
        self.now = time;
        self.processed += 1;
        let mut stop = false;
        let mut ctx = Context::single(&mut self.queue, self.now, &mut stop);
        self.model.handle(time, event, &mut ctx);
        if stop {
            Some(RunOutcome::Stopped)
        } else {
            None
        }
    }

    /// Run until the queue drains, the model stops, or `horizon` is reached.
    /// Events scheduled exactly at the horizon are dispatched.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            let Some(next) = self.queue.peek_time() else {
                return RunOutcome::QueueEmpty;
            };
            if next > horizon {
                // Leave future events queued; advance the clock to the
                // horizon so subsequent scheduling is relative to it.
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            let (time, event) = self.queue.pop().expect("peeked event vanished");
            self.now = time;
            self.processed += 1;
            let mut stop = false;
            let mut ctx = Context::single(&mut self.queue, self.now, &mut stop);
            self.model.handle(time, event, &mut ctx);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Run until the queue drains or the model stops.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that counts down, rescheduling itself, and records dispatch
    /// times.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    enum Ev {
        Tick,
        StopNow,
    }

    impl Model for Countdown {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Context<'_, Ev>) {
            match event {
                Ev::Tick => {
                    self.fired_at.push(now);
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.schedule_in(SimDuration::from_micros(10), Ev::Tick);
                    }
                }
                Ev::StopNow => ctx.stop(),
            }
        }
    }

    #[test]
    fn runs_chain_of_events() {
        let mut sim = Simulation::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.run(), RunOutcome::QueueEmpty);
        assert_eq!(sim.model().fired_at.len(), 4);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_micros(30));
    }

    #[test]
    fn horizon_stops_dispatch_but_keeps_events() {
        let mut sim = Simulation::new(Countdown {
            remaining: 100,
            fired_at: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        let horizon = SimTime::ZERO + SimDuration::from_micros(25);
        assert_eq!(sim.run_until(horizon), RunOutcome::HorizonReached);
        // Ticks at 0, 10, 20 us dispatched; 30 us still pending.
        assert_eq!(sim.model().fired_at.len(), 3);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), horizon);
        // Resuming dispatches the rest.
        assert_eq!(
            sim.run_until(SimTime::ZERO + SimDuration::from_micros(40)),
            RunOutcome::HorizonReached
        );
        assert_eq!(sim.model().fired_at.len(), 5);
    }

    #[test]
    fn event_exactly_at_horizon_is_dispatched() {
        let mut sim = Simulation::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        let at = SimTime::from_ps(1000);
        sim.schedule_at(at, Ev::Tick);
        assert_eq!(sim.run_until(at), RunOutcome::QueueEmpty);
        assert_eq!(sim.model().fired_at, vec![at]);
    }

    #[test]
    fn model_can_stop_the_run() {
        let mut sim = Simulation::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        sim.schedule_at(SimTime::from_ps(5), Ev::StopNow);
        sim.schedule_at(SimTime::from_ps(10), Ev::Tick);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert!(sim.model().fired_at.is_empty());
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn event_limit_guards_against_storms() {
        let mut sim = Simulation::new(Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        });
        sim.set_event_limit(50);
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.run(), RunOutcome::EventLimit);
        assert_eq!(sim.processed(), 50);
    }

    #[test]
    fn step_dispatches_one_event() {
        let mut sim = Simulation::new(Countdown {
            remaining: 1,
            fired_at: vec![],
        });
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.step(), None);
        assert_eq!(sim.model().fired_at.len(), 1);
        assert_eq!(sim.step(), None);
        assert_eq!(sim.step(), Some(RunOutcome::QueueEmpty));
    }

    #[test]
    fn step_honours_model_stop_requests() {
        let mut sim = Simulation::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        sim.schedule_at(SimTime::from_ps(5), Ev::StopNow);
        sim.schedule_at(SimTime::from_ps(10), Ev::Tick);
        // The stop request used to be built and then discarded; now the
        // single-step driver sees it too.
        assert_eq!(sim.step(), Some(RunOutcome::Stopped));
        assert_eq!(sim.pending(), 1, "stop leaves later events queued");
    }

    #[test]
    fn step_honours_the_event_limit() {
        let mut sim = Simulation::new(Countdown {
            remaining: u32::MAX,
            fired_at: vec![],
        });
        sim.set_event_limit(2);
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        assert_eq!(sim.step(), None);
        assert_eq!(sim.step(), None);
        // The budget is checked before dispatch, exactly as in
        // `run_until`: the third step dispatches nothing.
        assert_eq!(sim.step(), Some(RunOutcome::EventLimit));
        assert_eq!(sim.processed(), 2);
    }
}
