//! # qnp — a Rust reproduction of *Designing a Quantum Network Protocol*
//!
//! A from-scratch implementation of the Quantum Network Protocol (QNP) of
//! Kozlowski, Dahlberg and Wehner (CoNEXT 2020), together with every
//! substrate the paper's evaluation depends on:
//!
//! | layer | crate | role |
//! |---|---|---|
//! | scenarios & runtime | [`netsim`] | full-network discrete-event simulation |
//! | routing + signalling | [`routing`] | paths, fidelity budgets, cutoffs, circuit installation |
//! | **network layer (QNP)** | [`net`] | the paper's contribution: FORWARD/TRACK/EXPIRE/COMPLETE, swaps, cutoffs, lazy tracking |
//! | link layer | [`link`] | entanglement generation service (Purpose IDs, WRR multiplexing) |
//! | hardware | [`hardware`] | NV-centre devices, single-click heralding, Appendix B parameters |
//! | quantum states | [`quantum`] | density matrices, channels, Bell algebra |
//! | simulation core | [`sim`] | deterministic events, time, RNG, stats |
//!
//! ## Quickstart
//!
//! ```
//! use qnp::prelude::*;
//!
//! // The paper's Fig 7 dumbbell network on the optimistic hardware.
//! let (topology, d) = qnp::routing::dumbbell(
//!     HardwareParams::simulation(),
//!     FibreParams::lab_2m(),
//! );
//! let mut sim = NetworkBuilder::new(topology).seed(1).build();
//!
//! // Ask the routing controller for an A0→B0 circuit at fidelity 0.8 and
//! // install it through the signalling protocol.
//! let vc = sim.open_circuit(d.a0, d.b0, 0.8, CutoffPolicy::short()).unwrap();
//!
//! // Request two entangled pairs.
//! sim.submit_at(SimTime::ZERO, vc, UserRequest {
//!     id: RequestId(1),
//!     head: Address { node: d.a0, identifier: 0 },
//!     tail: Address { node: d.b0, identifier: 0 },
//!     min_fidelity: 0.8,
//!     demand: Demand::Pairs { n: 2, deadline: None },
//!     request_type: RequestType::Keep,
//!     final_state: None,
//! });
//! sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
//!
//! // Both end-nodes received their halves, confirmed by TRACK messages.
//! assert_eq!(sim.app().confirmed_deliveries(vc, d.a0, SimTime::ZERO, SimTime::MAX), 2);
//! assert_eq!(sim.app().confirmed_deliveries(vc, d.b0, SimTime::ZERO, SimTime::MAX), 2);
//! ```
//!
//! See `examples/` for runnable applications (QKD, teleportation, the
//! paper's Fig 6 sequence trace, near-term hardware) and `crates/bench`
//! for the harnesses regenerating every figure of the paper's evaluation.

pub use qn_hardware as hardware;
pub use qn_link as link;
pub use qn_net as net;
pub use qn_netsim as netsim;
pub use qn_quantum as quantum;
pub use qn_routing as routing;
pub use qn_sim as sim;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use qn_hardware::params::{FibreParams, HardwareParams};
    pub use qn_net::{Address, AppEvent, CircuitId, Demand, RequestId, RequestType, UserRequest};
    pub use qn_netsim::build::{NetSim, NetworkBuilder};
    pub use qn_netsim::Payload;
    pub use qn_quantum::{BellState, Pauli};
    pub use qn_routing::{CircuitPlan, CutoffPolicy};
    pub use qn_sim::{NodeId, SimDuration, SimTime};
}
