//! **Chaos** — bounded-request streams over a wired chain whose links
//! churn through a seeded component-fault schedule (the [`FaultPlan`]
//! MTBF/MTTR subsystem): availability, completion rate under churn and
//! recovery latency, with post-settle leak counters pinned at zero.
//!
//! All reported metrics are simulation-domain deterministic (pure
//! functions of `(seed, config)`) and diffed against
//! `baselines/chaos.json` at `--tolerance 0` in both CI quantum-state
//! legs. Wall-clock throughput is recorded per case in `meta`, never
//! diffed.
//!
//! The `lazy` and `ckpt250ms` legs run the same workload under the
//! on-touch and periodic-`Interval` decoherence checkpoint policies;
//! their physical metrics must match (asserted to ≤ 1e-12 in the
//! scenario's unit tests) — only event counts differ.
//!
//! Run: `cargo bench --bench chaos`
//! (knobs: `QNP_RUNS` seeds per case, default 3; `QNP_REQUESTS`
//! requests per run, default 8; `QNP_THREADS` sweep workers).

use qn_bench::{
    chaos_sweep, env_u64, mean_finite, runs, seed_block, Baseline, ChaosConfig, Direction,
};
use qn_sim::SimDuration;

fn main() {
    let wall_start = std::time::Instant::now();
    let n_runs = runs(3);
    let n_requests = env_u64("QNP_REQUESTS", 8) as usize;
    let seeds = seed_block(5000, n_runs);
    println!("# Chaos workloads (runs={n_runs}, requests={n_requests})");

    let ckpt = ChaosConfig::smoke(n_requests, None);
    let lazy = ckpt.clone().lazy();
    let mut harsh = ckpt.clone();
    harsh.mttr = SimDuration::from_millis(300);
    let cases: Vec<(&str, ChaosConfig)> = vec![
        ("chain4/lazy", lazy),
        ("chain4/ckpt250ms", ckpt),
        ("chain4/harsh", harsh),
    ];

    let mut baseline = Baseline::new("chaos")
        .config_num("runs", n_runs as f64)
        .config_num("requests", n_requests as f64)
        .direction("completion_rate", Direction::HigherIsBetter)
        .direction("requests_completed", Direction::HigherIsBetter)
        .direction("requests_cancelled", Direction::LowerIsBetter)
        .direction("pairs_delivered", Direction::HigherIsBetter)
        .direction("recovery_latency_s", Direction::LowerIsBetter)
        .direction("availability", Direction::Informational)
        .direction("outages", Direction::Informational)
        .direction("leaked", Direction::LowerIsBetter)
        .direction("events_processed", Direction::Informational);

    println!(
        "# case                 avail    outages   req_done   pairs   recovery_s   leaked   events"
    );
    let mut total_events = 0u64;
    for (label, cfg) in cases {
        let case_start = std::time::Instant::now();
        let points = chaos_sweep(&seeds, &cfg);
        let case_wall = case_start.elapsed().as_secs_f64();
        let events: u64 = points.iter().map(|p| p.events_processed).sum();
        total_events += events;
        let outages: usize = points.iter().map(|p| p.outages).sum();
        let done: usize = points.iter().map(|p| p.requests_completed).sum();
        let axed: usize = points.iter().map(|p| p.requests_cancelled).sum();
        let pairs: usize = points.iter().map(|p| p.pairs_delivered).sum();
        let leaked: usize = points.iter().map(|p| p.leaked).sum();
        let avail = mean_finite(points.iter().map(|p| p.availability));
        let rate = mean_finite(points.iter().map(|p| p.completion_rate));
        let recovery = mean_finite(points.iter().map(|p| p.recovery_latency_s));
        let ev_wall = events as f64 / case_wall;
        println!(
            "# {label:20}   {avail:5.3}   {outages:7}   {done:8}   {pairs:5}   {recovery:10.4}   {leaked:6}   {events:8}"
        );
        baseline.point(
            label,
            &[
                ("completion_rate", rate),
                ("requests_completed", done as f64),
                ("requests_cancelled", axed as f64),
                ("pairs_delivered", pairs as f64),
                ("recovery_latency_s", recovery),
                ("availability", avail),
                ("outages", outages as f64),
                ("leaked", leaked as f64),
                ("events_processed", events as f64),
            ],
        );
        // Wall-clock throughput is machine-dependent: meta, never diffed.
        baseline = baseline.meta_num(&format!("events_per_wall_sec/{label}"), ev_wall);
    }

    let wall = wall_start.elapsed().as_secs_f64();
    baseline = baseline
        .meta_num("wall_clock_s", wall)
        .meta_num("events_per_wall_sec_total", total_events as f64 / wall);
    let path = baseline.write().expect("write baseline");
    println!(
        "# baseline: {} ({} threads, wall-clock {:.2} s, {:.0} events/wall-s overall)",
        path.display(),
        qn_exec::threads(),
        wall,
        total_events as f64 / wall
    );
}
