//! Scenario functions: one simulation run of one figure configuration
//! at one seed.
//!
//! Every function here is a **pure function of its arguments** — it
//! builds a fresh topology and simulation, runs it, and returns a plain
//! point struct. That purity is what lets the sweep layer
//! ([`crate::sweep`]) farm seeds out to `qn_exec` worker threads while
//! guaranteeing bit-identical results at any thread count.

mod ablation;
mod chaos;
mod diversity;
mod fig10;
mod fig11;
mod fig8;
mod fig9;
mod openworld;

pub use ablation::{chain_point_scenario, cutoff_point_scenario, ChainPoint, CutoffPoint};
pub use chaos::{chaos_scenario, ChaosConfig, ChaosPoint};
pub use diversity::{wide_dumbbell_scenario, WideDumbbellPoint};
pub use fig10::{fig10ab_scenario, fig10c_scenario, Fig10Point, Fig10Variant, Fig10cPoint};
pub use fig11::{fig11_plan, fig11_scenario};
pub use fig8::{circuit_pairs, fig8_scenario, Fig8Point};
pub use fig9::{fig9_scenario, Fig9Point};
pub use openworld::{openworld_scenario, OpenWorldConfig, OpenWorldPoint, OwArrivals, OwTopology};

use qn_hardware::params::{FibreParams, HardwareParams};
use qn_net::{Address, Demand, RequestId, RequestType, UserRequest};
use qn_netsim::build::{NetSim, NetworkBuilder};
use qn_routing::{dumbbell, Dumbbell};
use qn_sim::NodeId;

/// A KEEP request for `n` pairs without deadline.
pub fn keep_request(id: u64, head: NodeId, tail: NodeId, f: f64, n: u64) -> UserRequest {
    UserRequest {
        id: RequestId(id),
        head: Address {
            node: head,
            identifier: 0,
        },
        tail: Address {
            node: tail,
            identifier: 0,
        },
        min_fidelity: f,
        demand: Demand::Pairs { n, deadline: None },
        request_type: RequestType::Keep,
        final_state: None,
    }
}

/// Convenience: a built dumbbell simulation (used by the micro-benches).
pub fn quick_dumbbell(seed: u64) -> (NetSim, Dumbbell) {
    let (topology, d) = dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    (NetworkBuilder::new(topology).seed(seed).build(), d)
}
