//! High-level simulation façade: build a network, install circuits, run
//! scenarios, read metrics.

use crate::app::AppHarness;
use crate::classical::{ClassicalFaults, ClassicalStats};
use crate::faults::FaultPlan;
use crate::runtime::{CheckpointPolicy, Ev, NetworkModel, RetransmitConfig, RuntimeConfig};
use crate::shard::ShardPlan;
use qn_net::ids::{CircuitId, RequestId};
use qn_net::node::NodeStats;
use qn_net::request::UserRequest;
use qn_routing::budget::CutoffPolicy;
use qn_routing::controller::{CircuitPlan, Controller, PlanError};
use qn_routing::signalling::Signaller;
use qn_routing::topology::Topology;
use qn_sim::shard::shards_from_env;
use qn_sim::{
    EventId, NodeId, RunOutcome, ShardStats, ShardedSimulation, SimDuration, SimTime, Simulation,
    Trace,
};

/// Builder for a [`NetSim`].
pub struct NetworkBuilder {
    topology: Topology,
    seed: u64,
    cfg: RuntimeConfig,
    shards: Option<usize>,
}

impl NetworkBuilder {
    /// Start building over a topology.
    pub fn new(topology: Topology) -> Self {
        NetworkBuilder {
            topology,
            seed: 1,
            cfg: RuntimeConfig::default(),
            shards: None,
        }
    }

    /// Set the run's RNG seed (same seed ⇒ identical run).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the simulation on `n` shards: per-node-region event queues
    /// under a conservative-lookahead epoch barrier (the classical
    /// plane's per-hop latency floor bounds cross-shard causality; see
    /// [`ShardPlan`]). The trajectory is **bit-identical** to the
    /// single-queue engine — same events, same order, same event ids,
    /// same `events_processed` — the sharded run additionally reports
    /// epoch/mailbox/cross-shard counters via [`NetSim::shard_stats`].
    ///
    /// Without this call the `QNP_SHARDS` environment knob applies
    /// (unset ⇒ the plain single-queue engine, untouched).
    ///
    /// # Panics
    ///
    /// If `n` is zero: failing at build beats a run that silently falls
    /// back to a different engine.
    pub fn shards(mut self, n: usize) -> Self {
        if n == 0 {
            panic!("invalid shard count 0: must be a positive integer (drop the call to run the single-queue engine)");
        }
        self.shards = Some(n);
        self
    }

    /// Per-hop classical processing delay.
    pub fn processing_delay(mut self, d: SimDuration) -> Self {
        self.cfg.processing_delay = d;
        self
    }

    /// Inject extra per-hop message delay (Fig 10c sweep).
    pub fn extra_message_delay(mut self, d: SimDuration) -> Self {
        self.cfg.extra_message_delay = d;
        self
    }

    /// Add uniform per-message jitter (the reliable transport still
    /// delivers in order).
    pub fn message_jitter(mut self, d: SimDuration) -> Self {
        self.cfg.message_jitter = d;
        self
    }

    /// Inject classical-plane faults: seeded drop / duplication /
    /// reordering / byte corruption of the encoded signalling frames.
    /// Default is [`ClassicalFaults::OFF`] — the reliable in-order
    /// plane, bit-identical to a run without this call.
    ///
    /// # Panics
    ///
    /// If the config fails [`ClassicalFaults::validate`] (a probability
    /// outside `[0, 1]`, or duplicate/reorder faults without a
    /// `reorder_window`): failing at build beats a run that silently
    /// degenerates.
    pub fn classical_faults(mut self, faults: ClassicalFaults) -> Self {
        if let Err(e) = faults.validate() {
            panic!("invalid ClassicalFaults: {e}");
        }
        self.cfg.faults = faults;
        self
    }

    /// Expire unconfirmed end-node pairs after `d` (faulty-plane
    /// resilience: frees qubits whose TRACK/EXPIRE was lost). Off by
    /// default; end-nodes never need timers on a reliable plane.
    pub fn track_timeout(mut self, d: SimDuration) -> Self {
        self.cfg.track_timeout = Some(d);
        self
    }

    /// Communication qubits per link per node (default 2, per the paper).
    pub fn comm_per_link(mut self, n: usize) -> Self {
        self.cfg.comm_per_link = n;
        self
    }

    /// Near-term hardware mode: one shared electron per node plus
    /// `carbons` storage qubits (Fig 11).
    pub fn near_term(mut self, carbons: usize) -> Self {
        self.cfg.near_term = true;
        self.cfg.carbons = carbons;
        self
    }

    /// Disable intermediate cutoffs (the Fig 10 oracle baseline).
    pub fn disable_cutoff(mut self) -> Self {
        self.cfg.disable_cutoff = true;
        self
    }

    /// Whole-store decoherence checkpointing. The default
    /// ([`CheckpointPolicy::OnTouch`]) advances pairs lazily at exactly
    /// the times operations touch them (baseline-bit-identical);
    /// [`CheckpointPolicy::Interval`] additionally runs the slab sweep
    /// (`PairStore::advance_all`) on a fixed period — pair sustained
    /// open-world runs with `run_until`, since the checkpoint event
    /// reschedules itself.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.cfg.checkpoint = policy;
        self
    }

    /// Record a human-readable protocol trace.
    pub fn with_trace(mut self) -> Self {
        self.cfg.trace = true;
        self
    }

    /// Carry link-layer (PAIR_READY) and routing-signalling
    /// (INSTALL/TEARDOWN) frames over the classical plane — real
    /// latency, batching and fault exposure — and enable the hop-by-hop
    /// signalling acks plus end-to-end TRACK acknowledgement and
    /// retransmission. Off by default: every recorded baseline was
    /// produced without it and stays bit-identical.
    pub fn signalling_on_wire(mut self) -> Self {
        self.cfg.signalling_on_wire = true;
        self
    }

    /// Retransmission bounds/backoff for wire-borne signalling (only
    /// consulted together with [`NetworkBuilder::signalling_on_wire`];
    /// setting it alone changes nothing, bit-for-bit).
    pub fn retransmit(mut self, cfg: RetransmitConfig) -> Self {
        self.cfg.retransmit = cfg;
        self
    }

    /// Inject component faults: a seeded schedule of link outages and
    /// node crashes/restarts (deterministic events plus MTBF/MTTR
    /// stochastic specs, see [`FaultPlan`]). The default empty plan
    /// schedules no events and draws no randomness — bit-identical to a
    /// run without this call.
    ///
    /// # Panics
    ///
    /// If the plan fails [`FaultPlan::validate`] against this builder's
    /// topology (an unknown link or node, a repair without a preceding
    /// failure, an event beyond the horizon, a stochastic spec without
    /// positive moments or a horizon).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate(&self.topology) {
            panic!("invalid FaultPlan: {e}");
        }
        self.cfg.fault_plan = plan;
        self
    }

    /// Override the message-level fault model on one link (both
    /// directions of the hop). Links without an override keep the
    /// global [`NetworkBuilder::classical_faults`] config; a run with
    /// no overrides is bit-identical to one built without this call.
    ///
    /// # Panics
    ///
    /// If `faults` fails [`ClassicalFaults::validate`] or `(a, b)` is
    /// not a link of this builder's topology.
    pub fn link_faults(mut self, a: NodeId, b: NodeId, faults: ClassicalFaults) -> Self {
        if let Err(e) = faults.validate() {
            panic!("invalid ClassicalFaults for link {a}-{b}: {e}");
        }
        if self.topology.link_between(a, b).is_none() {
            panic!("link_faults: no link {a}-{b} in the topology");
        }
        self.cfg.link_faults.push((a, b, faults));
        self
    }

    /// Build the simulation.
    ///
    /// The engine is chosen here: an explicit [`NetworkBuilder::shards`]
    /// call wins, otherwise the `QNP_SHARDS` environment knob applies
    /// (panicking on zero/garbage, see
    /// [`qn_sim::shard::shards_from_env`]), otherwise the plain
    /// single-queue engine runs — the exact pre-shard code path.
    pub fn build(self) -> NetSim {
        let topology = self.topology.clone();
        let checkpoint = self.cfg.checkpoint;
        let fault_plan = self.cfg.fault_plan.clone();
        let seed = self.seed;
        let shards = self.shards.or_else(shards_from_env);
        let plan = shards.map(|n| ShardPlan::new(&topology, &self.cfg, n));
        let model = NetworkModel::new(self.topology, self.seed, self.cfg);
        let mut sim = match plan {
            None => Driver::Single(Simulation::new(model)),
            Some(plan) => Driver::Sharded(ShardedSimulation::new(
                model,
                plan.n_shards(),
                plan.lookahead(),
                plan.router(),
            )),
        };
        if let CheckpointPolicy::Interval(dt) = checkpoint {
            sim.schedule_at(SimTime::ZERO + dt, Ev::Checkpoint);
        }
        // Expand the component-fault plan into concrete scheduled
        // events before the run starts: deterministic per (plan, seed),
        // independent of everything the simulation itself draws. The
        // empty plan expands to nothing and touches no RNG.
        if !fault_plan.is_empty() {
            for (at, event) in fault_plan.expand(seed) {
                sim.schedule_at(at, Ev::ComponentFault { event });
            }
        }
        NetSim {
            sim,
            signaller: Signaller::new(),
            topology,
        }
    }
}

/// The event engine behind a [`NetSim`]: the plain single-queue
/// [`Simulation`] (default) or the sharded conservative-lookahead
/// engine ([`ShardedSimulation`]), which dispatches the bit-identical
/// trajectory while accounting epochs and cross-shard traffic. Every
/// façade method delegates through this enum so scenario code never
/// sees the difference.
enum Driver {
    Single(Simulation<NetworkModel>),
    Sharded(ShardedSimulation<NetworkModel>),
}

impl Driver {
    fn now(&self) -> SimTime {
        match self {
            Driver::Single(s) => s.now(),
            Driver::Sharded(s) => s.now(),
        }
    }

    fn schedule_at(&mut self, at: SimTime, event: Ev) -> EventId {
        match self {
            Driver::Single(s) => s.schedule_at(at, event),
            Driver::Sharded(s) => s.schedule_at(at, event),
        }
    }

    fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        match self {
            Driver::Single(s) => s.run_until(horizon),
            Driver::Sharded(s) => s.run_until(horizon),
        }
    }

    fn run(&mut self) -> RunOutcome {
        match self {
            Driver::Single(s) => s.run(),
            Driver::Sharded(s) => s.run(),
        }
    }

    fn model(&self) -> &NetworkModel {
        match self {
            Driver::Single(s) => s.model(),
            Driver::Sharded(s) => s.model(),
        }
    }

    fn model_mut(&mut self) -> &mut NetworkModel {
        match self {
            Driver::Single(s) => s.model_mut(),
            Driver::Sharded(s) => s.model_mut(),
        }
    }

    fn processed(&self) -> u64 {
        match self {
            Driver::Single(s) => s.processed(),
            Driver::Sharded(s) => s.processed(),
        }
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        match self {
            Driver::Single(_) => None,
            Driver::Sharded(s) => Some(s.shard_stats()),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Driver::Single(_) => 1,
            Driver::Sharded(s) => s.shards(),
        }
    }
}

/// A ready-to-run network simulation.
pub struct NetSim {
    sim: Driver,
    signaller: Signaller,
    topology: Topology,
}

impl NetSim {
    /// Plan and install a circuit between two end-nodes at the given
    /// end-to-end fidelity, using the controller with `cutoff` policy.
    pub fn open_circuit(
        &mut self,
        head: NodeId,
        tail: NodeId,
        fidelity: f64,
        cutoff: CutoffPolicy,
    ) -> Result<CircuitId, PlanError> {
        let plan = Controller::new(&self.topology, cutoff).plan(head, tail, fidelity)?;
        Ok(self.install_plan(plan))
    }

    /// Install a circuit from an explicit plan (e.g. hand-tuned routing
    /// tables, as the paper does for Fig 11).
    pub fn install_plan(&mut self, plan: CircuitPlan) -> CircuitId {
        let installed = self.signaller.install(&self.topology, plan);
        // With `signalling_on_wire` the entries are not installed here:
        // the INSTALL chain walks the path over the classical plane,
        // kicked off at the head as the run's first event.
        if self.sim.model_mut().install_circuit(&installed) {
            self.sim.schedule_at(
                self.sim.now(),
                Ev::SignalKick {
                    circuit: installed.circuit,
                },
            );
        }
        installed.circuit
    }

    /// Schedule an application request submission at an absolute time.
    pub fn submit_at(&mut self, at: SimTime, circuit: CircuitId, request: UserRequest) {
        self.sim
            .schedule_at(at, Ev::SubmitRequest { circuit, request });
    }

    /// Schedule a request cancellation at an absolute time.
    pub fn cancel_at(&mut self, at: SimTime, circuit: CircuitId, request: RequestId) {
        self.sim
            .schedule_at(at, Ev::CancelRequest { circuit, request });
    }

    /// Schedule a circuit teardown (loss of classical connectivity or
    /// operator action): the QNP aborts outstanding requests and
    /// notifies applications, per §4.1 "Classical communication and link
    /// reliability".
    pub fn close_circuit_at(&mut self, at: SimTime, circuit: CircuitId) {
        self.signaller.teardown(circuit);
        self.sim.schedule_at(at, Ev::Teardown { circuit });
    }

    /// Run until `horizon` (or quiescence).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.sim.run_until(horizon)
    }

    /// Run until no events remain.
    pub fn run(&mut self) -> RunOutcome {
        self.sim.run()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Application observations.
    pub fn app(&self) -> &AppHarness {
        &self.sim.model().app
    }

    /// The recorded trace (enable with [`NetworkBuilder::with_trace`]).
    pub fn trace(&self) -> &Trace {
        &self.sim.model().trace
    }

    /// Protocol-vs-omniscient Bell-state mismatches observed (readout
    /// errors make a small number expected on noisy hardware).
    pub fn state_mismatches(&self) -> u64 {
        self.sim.model().state_mismatches
    }

    /// Total pairs released unused (cutoff discards, cross-check
    /// failures, surplus generation).
    pub fn discarded_pairs(&self) -> u64 {
        self.sim.model().discarded_pairs
    }

    /// Classical-plane traffic counters: frames sent/delivered and the
    /// faults injected (all fault counters zero on the default reliable
    /// plane).
    pub fn classical_stats(&self) -> ClassicalStats {
        self.sim.model().classical_stats()
    }

    /// Protocol resilience counters aggregated over all nodes: the
    /// anomalous inputs (duplicates, stale references, misroutes) the
    /// QNP absorbed. All zero on the default reliable plane.
    pub fn node_stats(&self) -> NodeStats {
        self.sim.model().node_stats()
    }

    /// Number of live entangled pairs (diagnostics).
    pub fn live_pairs(&self) -> usize {
        self.sim.model().pairs.len()
    }

    /// Timers currently armed with the scheduler: cutoffs, track
    /// expiries and retransmits. Zero after a settled run — chaos tests
    /// assert this to prove fault schedules leak nothing.
    pub fn armed_timers(&self) -> usize {
        self.sim.model().armed_timers()
    }

    /// Correlator state the runtime retains (live pair ends plus
    /// PAIR_READY dedup records). Zero after a settled run.
    pub fn retained_correlators(&self) -> usize {
        self.sim.model().retained_correlators()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Epoch-barrier and cross-shard mailbox counters — `None` when the
    /// run uses the single-queue engine (no shards, no barrier).
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.sim.shard_stats()
    }

    /// Number of event-queue shards the run executes on (1 for the
    /// single-queue engine).
    pub fn shards(&self) -> usize {
        self.sim.shards()
    }

    /// Direct access to the model (examples and advanced tests).
    pub fn model_mut(&mut self) -> &mut NetworkModel {
        self.sim.model_mut()
    }

    /// The circuit plan metadata installed for `circuit`.
    pub fn installed(
        &self,
        circuit: CircuitId,
    ) -> Option<&qn_routing::signalling::InstalledCircuit> {
        self.signaller.circuit(circuit)
    }
}
