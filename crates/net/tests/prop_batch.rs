//! Fuzz the BATCH transport frame: exact round-trips of arbitrary inner
//! frames, total decoding on arbitrary/corrupted/truncated envelopes,
//! and equivalence of the borrowing (`BatchView`) and owned
//! (`decode_batch`) walks — including batches whose inner length
//! prefixes were corrupted in flight.

use proptest::collection::vec;
use proptest::prelude::*;
use qn_net::wire::{batch_append, batch_begin, decode_batch, BatchView, DecodeError, MessageView};
use qn_net::Message;

fn build_batch(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    batch_begin(&mut buf);
    for f in frames {
        batch_append(&mut buf, f);
    }
    buf
}

/// Compare the two walks on one input: identical frames or identical
/// typed errors.
fn assert_paths_agree(bytes: &[u8]) -> Result<(), TestCaseError> {
    match (BatchView::parse(bytes), decode_batch(bytes)) {
        (Ok(view), Ok(owned)) => {
            prop_assert_eq!(view.count() as usize, owned.len());
            let borrowed: Vec<&[u8]> = view.frames().collect();
            prop_assert_eq!(
                borrowed,
                owned.iter().map(Vec::as_slice).collect::<Vec<_>>()
            );
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        (a, b) => prop_assert!(
            false,
            "batch walks diverge: {:?} vs {:?}",
            a.map(|v| v.count()),
            b.map(|f| f.len())
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary inner frames (opaque byte strings at this layer) round
    /// trip exactly, in append order.
    #[test]
    fn batch_round_trips_arbitrary_frames(frames in vec(vec(any::<u8>(), 0..40), 0..12)) {
        let buf = build_batch(&frames);
        let view = BatchView::parse(&buf);
        prop_assert!(view.is_ok(), "parse failed: {:?}", view.err());
        let view = view.unwrap();
        prop_assert_eq!(view.count() as usize, frames.len());
        let got: Vec<&[u8]> = view.frames().collect();
        prop_assert_eq!(got, frames.iter().map(Vec::as_slice).collect::<Vec<_>>());
        prop_assert_eq!(decode_batch(&buf).unwrap(), frames);
    }

    /// Envelope decoding is total on arbitrary bytes, and the borrowed
    /// and owned walks agree everywhere.
    #[test]
    fn batch_decode_total_and_paths_agree(bytes in vec(any::<u8>(), 0..160)) {
        assert_paths_agree(&bytes)?;
        if let Err(e) = BatchView::parse(&bytes) {
            let _ = format!("{e}");
        }
    }

    /// A single flipped bit anywhere in a valid batch — header, count,
    /// an inner *length prefix*, or an inner frame — never panics
    /// either walk, and both reach the same verdict.
    #[test]
    fn corrupted_batches_keep_paths_equivalent(
        frames in vec(vec(any::<u8>(), 0..24), 1..8),
        flip in any::<u32>(),
    ) {
        let mut buf = build_batch(&frames);
        let bit = (flip as usize) % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        assert_paths_agree(&buf)?;
    }

    /// Every strict prefix of a valid batch fails identically on both
    /// walks (with `Truncated` once the header survives).
    #[test]
    fn truncated_batches_error_identically(
        frames in vec(vec(any::<u8>(), 0..24), 1..8),
        cut in any::<u16>(),
    ) {
        let buf = build_batch(&frames);
        let len = (cut as usize) % buf.len();
        let a = BatchView::parse(&buf[..len]).map(|v| v.count()).unwrap_err();
        let b = decode_batch(&buf[..len]).unwrap_err();
        prop_assert_eq!(a, b);
        if len >= 2 {
            prop_assert!(matches!(a, DecodeError::Truncated { .. }), "prefix {} gave {:?}", len, a);
        }
    }

    /// End to end through the data plane: a batch of encoded messages
    /// drains through `MessageView` to the same messages the owned
    /// per-frame decode yields.
    #[test]
    fn batched_messages_view_decode_like_owned(circuits in vec(any::<u64>(), 1..8)) {
        let msgs: Vec<Message> = circuits
            .iter()
            .map(|&c| Message::Expire(qn_net::Expire {
                circuit: qn_net::CircuitId(c),
                origin: qn_net::Correlator {
                    node_a: qn_sim::NodeId(0),
                    node_b: qn_sim::NodeId(1),
                    seq: c,
                },
            }))
            .collect();
        let frames: Vec<Vec<u8>> = msgs.iter().map(Message::wire_bytes).collect();
        let buf = build_batch(&frames);
        let view = BatchView::parse(&buf).unwrap();
        let drained: Vec<Message> = view
            .frames()
            .map(|f| MessageView::parse(f).unwrap().to_message())
            .collect();
        prop_assert_eq!(drained, msgs);
    }
}
