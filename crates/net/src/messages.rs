//! The QNP's classical control messages (Appendix C.2).
//!
//! Two granularities: request-level (FORWARD, COMPLETE — head→tail) and
//! pair-level (TRACK — both directions; EXPIRE — back to a TRACK's
//! origin). All messages ride the circuit's reliable in-order transport
//! connections between adjacent nodes.

use crate::ids::{CircuitId, Correlator, Epoch, RequestId};
use crate::request::RequestType;
use qn_quantum::bell::BellState;

/// FORWARD: propagates a new request from head-end to tail-end,
/// initiating/updating link-layer generation at every node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Forward {
    /// Circuit the request rides on.
    pub circuit: CircuitId,
    /// The request being added.
    pub request: RequestId,
    /// End-point identifier at the head-end node.
    pub head_identifier: u32,
    /// End-point identifier at the tail-end node.
    pub tail_identifier: u32,
    /// KEEP / EARLY / MEASURE (with basis).
    pub request_type: RequestType,
    /// Number of pairs (None for rate requests).
    pub number_of_pairs: Option<u64>,
    /// Requested delivery Bell state, if any.
    pub final_state: Option<BellState>,
    /// New total EER required by all active requests on the circuit.
    pub rate: f64,
}

/// COMPLETE: propagates a request's completion from head-end to
/// tail-end, updating/terminating link-layer generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complete {
    /// Circuit the request rode on.
    pub circuit: CircuitId,
    /// The request being completed.
    pub request: RequestId,
    /// End-point identifier at the head-end node.
    pub head_identifier: u32,
    /// End-point identifier at the tail-end node.
    pub tail_identifier: u32,
    /// New total EER required by the remaining active requests.
    pub rate: f64,
}

/// TRACK: the key data-plane message — tracks one chain of link-pairs
/// and entanglement swaps along the circuit, accumulating the Bell-state
/// information.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Track {
    /// Circuit of the tracked pair.
    pub circuit: CircuitId,
    /// Request the originating end-node assigned the pair to.
    pub request: RequestId,
    /// End-point identifier at the head-end node.
    pub head_identifier: u32,
    /// End-point identifier at the tail-end node.
    pub tail_identifier: u32,
    /// Correlator of the link-pair that *begins* the chain (at the
    /// message's origin end-node); used by EXPIRE.
    pub origin: Correlator,
    /// Correlator of the link-pair that *continues* the chain — rewritten
    /// at every swap so the receiving node can find its local pair.
    pub link: Correlator,
    /// Accumulated Bell state of the chain so far.
    pub outcome_state: BellState,
    /// Epoch to activate after this pair delivers (set by the head-end;
    /// `None` on tail-originated TRACKs).
    pub epoch: Option<Epoch>,
}

/// EXPIRE: tells an end-node that the chain its TRACK was following was
/// broken by a cutoff discard, so it must free its own qubit (end-nodes
/// never discard on timers — §4.1 "Cutoff time").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Expire {
    /// Circuit of the broken chain.
    pub circuit: CircuitId,
    /// Correlator of the link-pair at the origin end-node (from the
    /// TRACK message).
    pub origin: Correlator,
}

/// TRACK_ACK: end-to-end acknowledgement of a TRACK, sent by the
/// consuming end-node back towards the TRACK's origin. Only used when
/// the runtime retransmits TRACKs over a lossy plane (the paper's
/// reliable transport never needs it): receipt cancels the origin's
/// retransmit timer. Duplicated TRACKs are re-acknowledged so a lost
/// ack is recovered by the next retry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackAck {
    /// Circuit of the acknowledged chain.
    pub circuit: CircuitId,
    /// Correlator of the link-pair at the origin end-node (copied from
    /// the TRACK message).
    pub origin: Correlator,
}

/// Any QNP message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Message {
    /// Request propagation (head → tail).
    Forward(Forward),
    /// Request completion (head → tail).
    Complete(Complete),
    /// Pair tracking (both directions).
    Track(Track),
    /// Broken-chain notification (towards a TRACK's origin).
    Expire(Expire),
    /// TRACK acknowledgement (towards the TRACK's origin; retransmitting
    /// runtimes only).
    TrackAck(TrackAck),
}

impl Message {
    /// The circuit this message belongs to.
    pub fn circuit(&self) -> CircuitId {
        match self {
            Message::Forward(m) => m.circuit,
            Message::Complete(m) => m.circuit,
            Message::Track(m) => m.circuit,
            Message::Expire(m) => m.circuit,
            Message::TrackAck(m) => m.circuit,
        }
    }

    /// Short human-readable name (trace logs).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Forward(_) => "FORWARD",
            Message::Complete(_) => "COMPLETE",
            Message::Track(_) => "TRACK",
            Message::Expire(_) => "EXPIRE",
            Message::TrackAck(_) => "TRACK_ACK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::NodeId;

    fn corr(seq: u64) -> Correlator {
        Correlator {
            node_a: NodeId(0),
            node_b: NodeId(1),
            seq,
        }
    }

    #[test]
    fn message_circuit_accessor() {
        let t = Message::Track(Track {
            circuit: CircuitId(5),
            request: RequestId(1),
            head_identifier: 1,
            tail_identifier: 2,
            origin: corr(0),
            link: corr(0),
            outcome_state: BellState::PSI_PLUS,
            epoch: Some(Epoch(1)),
        });
        assert_eq!(t.circuit(), CircuitId(5));
        assert_eq!(t.kind_name(), "TRACK");
        let e = Message::Expire(Expire {
            circuit: CircuitId(6),
            origin: corr(3),
        });
        assert_eq!(e.circuit(), CircuitId(6));
        assert_eq!(e.kind_name(), "EXPIRE");
    }
}
