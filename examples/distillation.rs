//! Entanglement distillation layered over the QNP (paper §4.3).
//!
//! The paper proposes distillation as a *service built from the QNP
//! building block*: a circuit delivers pairs between two distillation
//! end-points, a module consumes two pairs to produce one of higher
//! fidelity, and the result feeds a higher-layer circuit that treats the
//! span as one virtual link.
//!
//! This example runs the physical layer of that proposal: pairs of the
//! quality the network delivers (including idle decoherence), distilled
//! with the paper's noisy gates, compared against the textbook BBPSSW
//! statistics.
//!
//! ```sh
//! cargo run --release --example distillation
//! ```

use qnp::hardware::device::QubitId;
use qnp::hardware::pairs::{PairStore, SwapNoise};
use qnp::hardware::{bbpssw_output_fidelity, bbpssw_success_prob};
use qnp::prelude::*;
use qnp::quantum::formulas::werner_param;
use qnp::quantum::DensityMatrix;
use qnp::sim::SimRng;

fn werner(f: f64) -> DensityMatrix {
    let w = werner_param(f);
    let phi = BellState::PHI_PLUS.density();
    let mixed = DensityMatrix::maximally_mixed(2);
    DensityMatrix::from_matrix(&phi.matrix().scale(w) + &mixed.matrix().scale(1.0 - w))
}

fn main() {
    let params = HardwareParams::simulation();
    let noise = SwapNoise::from_params(&params);
    let mut rng = SimRng::from_seed(2021);

    println!("# BBPSSW distillation with the paper's gate/readout noise");
    println!("# F_in   p_succ(meas)   p_succ(theory)   F_out(meas)   F_out(theory)   gain");
    for f_in in [0.70, 0.75, 0.80, 0.85, 0.90] {
        let n = 600;
        let mut successes = 0usize;
        let mut fid = 0.0;
        for _ in 0..n {
            let mut store = PairStore::new();
            let mk = |store: &mut PairStore, q: u32| {
                store.create(
                    SimTime::ZERO,
                    werner(f_in),
                    BellState::PHI_PLUS,
                    [
                        (NodeId(0), QubitId(q), f64::INFINITY, f64::INFINITY),
                        (NodeId(1), QubitId(q), f64::INFINITY, f64::INFINITY),
                    ],
                )
            };
            let keep = mk(&mut store, 0);
            let sacrifice = mk(&mut store, 1);
            let res = store.distill(keep, sacrifice, SimTime::ZERO, &noise, &mut rng);
            if res.success {
                successes += 1;
                fid += store.fidelity_to(res.kept, BellState::PHI_PLUS, SimTime::ZERO);
            }
        }
        let p_meas = successes as f64 / n as f64;
        let f_meas = fid / successes.max(1) as f64;
        println!(
            "{f_in:5.2}   {p_meas:12.3}   {:14.3}   {f_meas:11.3}   {:13.3}   {:+.3}",
            bbpssw_success_prob(f_in),
            bbpssw_output_fidelity(f_in),
            f_meas - f_in,
        );
    }

    println!("#\n# layered use (paper §4.3): run a QNP circuit between the");
    println!("# distillation end-points, feed its deliveries into this module,");
    println!("# and hand the survivors to a circuit that sees the span as one");
    println!("# virtual link. Distillation overcomes the swap-fidelity loss");
    println!("# that otherwise bounds the achievable path length.");
}
