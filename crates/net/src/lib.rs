//! # qn-net — the Quantum Network Protocol (QNP)
//!
//! The paper's primary contribution: a connection-oriented quantum data
//! plane protocol that turns link-level entangled pairs into end-to-end
//! entangled pairs via entanglement swapping, surviving decoherence with
//! cutoff timers and *lazy entanglement tracking*.
//!
//! The implementation follows Appendix C of the paper:
//!
//! * [`ids`] — circuit/request/address/correlator identifiers (C.1);
//! * [`messages`] — FORWARD, COMPLETE, TRACK, EXPIRE (C.2);
//! * [`node`] + [`rules`] — the per-role rules (C.3, Algorithms 1–9);
//! * [`demux`] — symmetric demultiplexing with epochs (§4.1);
//! * [`policing`] — EER-based policing/shaping and LPR scaling (§4.1);
//! * [`request`] — the service classes of §3.2 (fidelity + time QoS,
//!   KEEP/EARLY/MEASURE delivery);
//! * [`routing_table`] — the per-circuit data-plane state installed by
//!   signalling (§4.1);
//! * [`wire`] — the versioned binary wire format every signalling
//!   message is encoded to before crossing a classical channel.
//!
//! The node core is **sans-IO**: it consumes typed inputs and returns
//! typed effects, never touching clocks, queues or quantum state. The
//! `qn-netsim` crate wires it to the event-driven runtime; the unit tests
//! in this crate drive every rule directly.
//!
//! Design properties worth calling out (all load-bearing in the paper):
//!
//! * **Quantum operations never block on classical messages** — swaps are
//!   triggered by pair availability alone (the LINK rules), TRACKs wait
//!   for swap records rather than the other way round.
//! * **End-nodes never discard on timers** — only on EXPIRE messages,
//!   preventing the half-delivered-pair window condition.
//! * **Lazy tracking** — only XOR-combined two-bit outcomes travel; no
//!   intermediate pair state is ever stored or synchronised.

#![warn(missing_docs)]

pub mod demux;
pub mod events;
pub mod ids;
pub mod messages;
pub mod node;
pub mod policing;
pub mod request;
pub mod routing_table;
pub mod rules;
pub mod wire;

pub use demux::SymmetricDemux;
pub use events::{AppEvent, Delivery, DeliveryKind, NetInput, NetOutput, PairInfo};
pub use ids::{Address, CircuitId, Correlator, Epoch, PairHandle, PairRef, RequestId};
pub use messages::{Complete, Expire, Forward, Message, Track, TrackAck};
pub use node::{NodeStats, QnpNode};
pub use policing::{AdmitDecision, Policer};
pub use request::{Demand, RequestType, UserRequest};
pub use routing_table::{DownstreamHop, LinkSide, Role, RoutingEntry, UpstreamHop};
pub use wire::{
    BatchView, DecodeError, MessageView, ScratchEncoder, Wire, WireReader, WireWriter, WIRE_VERSION,
};
