//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Provides the harness surface used by `crates/bench/benches/micro.rs`:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched, iter_batched_ref}`, `BatchSize` and
//! `black_box`. Measurement is deliberately simple — warm up, then run
//! enough iterations to cover a fixed wall-clock window and report
//! mean/min/max per iteration as plain text. No statistics, plots or
//! HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched setup amortises across iterations. The shim times every
/// routine invocation individually, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration timing sink handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    measure_window: Duration,
    warmup_iters: u64,
}

impl Bencher {
    fn new(measure_window: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            measure_window,
            warmup_iters: 3,
        }
    }

    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let window_start = Instant::now();
        while window_start.elapsed() < self.measure_window || self.samples.is_empty() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        let window_start = Instant::now();
        while window_start.elapsed() < self.measure_window || self.samples.is_empty() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_window: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let window_ms = std::env::var("QNP_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            measure_window: Duration::from_millis(window_ms),
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse harness CLI arguments (`cargo bench -- <filter>`); flags the
    /// real criterion accepts are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        self.filter = filter;
        self
    }

    /// Override the measurement window (API-compatible knob).
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measure_window = window;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher::new(self.measure_window);
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = *bencher.samples.iter().min().unwrap();
        let max = *bencher.samples.iter().max().unwrap();
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            bencher.samples.len()
        );
        self
    }
}

/// Bundle benchmark functions into a group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            measure_window: Duration::from_millis(5),
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(
            || vec![1u64, 2, 3],
            |v| v.into_iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(!b.samples.is_empty());
    }
}
