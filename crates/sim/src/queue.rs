//! The pending-event queue.
//!
//! A binary heap ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, which gives two guarantees
//! the protocols rely on:
//!
//! 1. **Determinism** — ties in simulated time are broken by insertion
//!    order, never by allocation addresses or hash ordering.
//! 2. **FIFO at equal times** — events scheduled earlier fire earlier,
//!    matching the intuition of a causal message sequence.
//!
//! Cancellation is lazy: the id is removed from the pending set and the
//! heap entry is dropped when it surfaces. This keeps `cancel` O(1) without
//! intrusive heap surgery.
//!
//! The pending set itself is a dense **bit window** over the monotonic
//! sequence numbers rather than a `HashSet<u64>`: ids are allocated in
//! order and retired roughly in order, so the live ids always occupy a
//! narrow sliding window. One bit per in-window id makes the
//! cancellation check a shift-and-mask instead of a hash lookup, and
//! fully-retired leading words are trimmed as they empty.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A set of `u64` sequence numbers stored as a sliding window of bit
/// words. Inserts are monotonic (each new seq is the largest so far);
/// membership tests and removals below the window's base answer
/// `false` immediately. Leading all-zero words are trimmed on removal,
/// so memory tracks the live span, not the total history.
#[derive(Default)]
pub(crate) struct SeqWindow {
    /// Word index (seq / 64) of `words[0]`.
    base: u64,
    words: VecDeque<u64>,
    live: usize,
}

impl SeqWindow {
    /// Insert `seq` (monotonically increasing across calls).
    pub(crate) fn insert(&mut self, seq: u64) {
        let word = seq / 64;
        if self.words.is_empty() {
            self.base = word;
        }
        debug_assert!(word >= self.base, "inserts must be monotonic");
        while self.base + self.words.len() as u64 <= word {
            self.words.push_back(0);
        }
        let idx = (word - self.base) as usize;
        let bit = 1u64 << (seq % 64);
        debug_assert_eq!(self.words[idx] & bit, 0, "duplicate insert");
        self.words[idx] |= bit;
        self.live += 1;
    }

    /// Test membership without mutating.
    pub(crate) fn contains(&self, seq: u64) -> bool {
        let word = seq / 64;
        if word < self.base {
            return false;
        }
        let idx = (word - self.base) as usize;
        if idx >= self.words.len() {
            return false;
        }
        self.words[idx] & (1u64 << (seq % 64)) != 0
    }

    /// Remove `seq`, reporting whether it was present. Trims leading
    /// all-zero words (amortised O(1)).
    pub(crate) fn remove(&mut self, seq: u64) -> bool {
        let word = seq / 64;
        if word < self.base {
            return false;
        }
        let idx = (word - self.base) as usize;
        if idx >= self.words.len() {
            return false;
        }
        let bit = 1u64 << (seq % 64);
        if self.words[idx] & bit == 0 {
            return false;
        }
        self.words[idx] &= !bit;
        self.live -= 1;
        while self.words.front() == Some(&0) {
            self.words.pop_front();
            self.base += 1;
        }
        true
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }
}

/// Priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. An entry surfacing from the heap whose seq is absent here
    /// has been cancelled and is silently dropped.
    pending: SeqWindow,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: SeqWindow::default(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `time`. Returns an id that can be
    /// passed to [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(id.0)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(entry.seq) {
                return Some((entry.time, entry.event));
            }
        }
        None
    }

    /// Time of the earliest pending event, if any. Cancelled entries at the
    /// front are discarded as a side effect.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a), "cancelling a popped event must not succeed");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
    }

    #[test]
    fn seq_window_trims_leading_words() {
        let mut w = SeqWindow::default();
        for s in 0..200u64 {
            w.insert(s);
        }
        assert_eq!(w.len(), 200);
        // Retire the first two words entirely; the window must slide.
        for s in 0..128u64 {
            assert!(w.remove(s));
        }
        assert_eq!(w.base, 2);
        assert_eq!(w.words.len(), 2);
        // Ids below the base answer false without scanning.
        assert!(!w.remove(5));
        assert!(!w.contains(64));
        assert!(w.contains(199));
        assert_eq!(w.len(), 72);
    }

    #[test]
    fn seq_window_sparse_pinning() {
        // One old live id pins the window; later words still work.
        let mut w = SeqWindow::default();
        w.insert(3);
        for s in 640..650u64 {
            w.insert(s);
        }
        assert_eq!(w.base, 0);
        assert!(w.contains(3));
        assert!(!w.contains(100));
        assert!(w.remove(3));
        // Removing the pin trims every empty leading word at once.
        assert_eq!(w.base, 10);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn seq_window_restarts_after_draining() {
        let mut w = SeqWindow::default();
        w.insert(0);
        assert!(w.remove(0));
        assert_eq!(w.len(), 0);
        // A much later insert re-bases the (empty) window.
        w.insert(100_000);
        assert_eq!(w.words.len(), 1);
        assert!(w.contains(100_000));
    }

    #[test]
    fn interleaved_cancel_pop_over_many_windows() {
        // Mirror of the qn_testkit queue model's access pattern: push,
        // cancel every third id, pop the rest in order.
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..1000u64).map(|i| q.push(t(i), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*id));
            }
        }
        let mut expect = (0..1000u64).filter(|i| i % 3 != 0);
        while let Some((_, v)) = q.pop() {
            assert_eq!(Some(v), expect.next());
            assert!(!q.cancel(EventId(v)), "popped id cannot cancel");
        }
        assert!(expect.next().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
