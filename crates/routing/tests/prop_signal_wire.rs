//! Fuzz the routing-signalling wire frames (INSTALL / TEARDOWN and
//! their acks): exact round-trips over the full entry space, total
//! decoding on arbitrary bytes, plane separation from the QNP data
//! plane.

use proptest::collection::vec;
use proptest::prelude::*;
use qn_link::LinkLabel;
use qn_net::ids::CircuitId;
use qn_net::routing_table::{DownstreamHop, RoutingEntry, UpstreamHop};
use qn_net::wire::DecodeError;
use qn_routing::wire::{SignalMessage, SignalMessageView};
use qn_sim::{NodeId, SimDuration};

fn arb_entry() -> BoxedStrategy<RoutingEntry> {
    (
        any::<u64>(),
        prop_oneof![
            Just(None),
            (any::<u32>(), any::<u32>()).prop_map(|(n, l)| Some(UpstreamHop {
                node: NodeId(n),
                label: LinkLabel(l),
            }))
        ],
        prop_oneof![
            Just(None),
            ((any::<u32>(), any::<u32>()), (any::<u64>(), any::<u64>()),).prop_map(
                |((n, l), (f, r))| Some(DownstreamHop {
                    node: NodeId(n),
                    label: LinkLabel(l),
                    min_fidelity: f64::from_bits(f),
                    max_lpr: f64::from_bits(r),
                })
            )
        ],
        any::<u64>().prop_map(f64::from_bits),
        any::<u64>().prop_map(SimDuration::from_ps),
    )
        .prop_map(|(c, upstream, downstream, max_eer, cutoff)| RoutingEntry {
            circuit: CircuitId(c),
            upstream,
            downstream,
            max_eer,
            cutoff,
        })
        .boxed()
}

fn arb_signal() -> BoxedStrategy<SignalMessage> {
    prop_oneof![
        arb_entry().prop_map(|entry| SignalMessage::Install { entry }),
        any::<u64>().prop_map(|c| SignalMessage::Teardown {
            circuit: CircuitId(c)
        }),
        any::<u64>().prop_map(|c| SignalMessage::InstallAck {
            circuit: CircuitId(c)
        }),
        any::<u64>().prop_map(|c| SignalMessage::TeardownAck {
            circuit: CircuitId(c)
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exact byte-level round-trip (re-encode comparison covers NaN
    /// fidelity/rate bit patterns).
    #[test]
    fn signal_round_trip(msg in arb_signal()) {
        let bytes = msg.wire_bytes();
        let back = SignalMessage::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        prop_assert_eq!(back.unwrap().wire_bytes(), bytes);
    }

    /// Total decoding on arbitrary bytes; whatever decodes re-encodes
    /// identically (canonical representation).
    #[test]
    fn signal_decode_total(bytes in vec(any::<u8>(), 0..96)) {
        match SignalMessage::decode(&bytes) {
            Ok(m) => prop_assert_eq!(m.wire_bytes(), bytes),
            Err(e) => { let _ = format!("{e}"); }
        }
    }

    /// Strict prefixes fail with `Truncated`; a signalling frame is a
    /// foreign kind for the data-plane decoder and vice versa.
    #[test]
    fn signal_framing(msg in arb_signal(), cut in any::<u16>()) {
        let bytes = msg.wire_bytes();
        let len = (cut as usize) % bytes.len();
        prop_assert!(matches!(
            SignalMessage::decode(&bytes[..len]),
            Err(DecodeError::Truncated { .. })
        ));
        prop_assert!(matches!(
            qn_net::Message::decode(&bytes),
            Err(DecodeError::UnknownKind(_))
        ));
    }

    /// The borrowing view decodes every valid frame to the same message
    /// as the owned path, and agrees (same `DecodeError`) on every
    /// strict prefix.
    #[test]
    fn view_decode_equivalent_to_owned(msg in arb_signal(), cut in any::<u16>()) {
        let bytes = msg.wire_bytes();
        let view = SignalMessageView::parse(&bytes);
        prop_assert!(view.is_ok(), "view parse failed: {:?}", view.err());
        let view = view.unwrap();
        prop_assert_eq!(view.to_message().wire_bytes(), bytes.clone());
        match &msg {
            SignalMessage::Install { entry } => {
                prop_assert!(view.is_install());
                prop_assert_eq!(view.circuit(), entry.circuit);
            }
            SignalMessage::Teardown { circuit }
            | SignalMessage::InstallAck { circuit }
            | SignalMessage::TeardownAck { circuit } => {
                prop_assert!(!view.is_install());
                prop_assert_eq!(view.circuit(), *circuit);
            }
        }
        let len = (cut as usize) % bytes.len();
        let owned = SignalMessage::decode(&bytes[..len]).unwrap_err();
        let viewed = SignalMessageView::parse(&bytes[..len]).map(|_| ()).unwrap_err();
        prop_assert_eq!(owned, viewed);
    }

    /// View parsing is total on arbitrary bytes and reaches the same
    /// verdict as the owned decoder everywhere.
    #[test]
    fn view_decode_total_and_agrees(bytes in vec(any::<u8>(), 0..96)) {
        match (SignalMessageView::parse(&bytes), SignalMessage::decode(&bytes)) {
            (Ok(view), Ok(m)) => prop_assert_eq!(view.to_message().wire_bytes(), m.wire_bytes()),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "signal decode paths diverge: view={:?} owned={:?}",
                a.map(|v| v.is_install()),
                b
            ),
        }
    }
}
