//! Entanglement-based quantum key distribution (E91-style) over the
//! dumbbell network — the paper's flagship "measure directly" use case
//! (§3.1).
//!
//! Alice (A0) and Bob (B0) request MEASURE pairs in two alternating
//! bases. The QNP measures each qubit as soon as it is available and
//! withholds the outcome until tracking confirms the pair, so only
//! outcomes from successfully generated pairs reach the application.
//! Matching-basis rounds become key bits; the quantum bit error rate
//! (QBER) estimates the channel quality.
//!
//! ```sh
//! cargo run --release --example qkd_e91
//! ```

use qnp::prelude::*;

fn main() {
    let (topology, d) = qnp::routing::dumbbell(HardwareParams::simulation(), FibreParams::lab_2m());
    let mut sim = NetworkBuilder::new(topology).seed(2024).build();

    // QKD wants fidelity ≥ 0.8 (paper §2.3: "for basic QKD the threshold
    // fidelity is about 0.8").
    let fidelity = 0.9;
    let vc = sim
        .open_circuit(d.a0, d.b0, fidelity, CutoffPolicy::short())
        .expect("plan");

    // Submit two MEASURE requests — one per basis. Pinning the delivery
    // frame to Φ+ lets outcomes be compared directly: Z⊗Z and X⊗X both
    // correlate perfectly on Φ+.
    let rounds_per_basis = 100u64;
    for (i, basis) in [Pauli::Z, Pauli::X].into_iter().enumerate() {
        sim.submit_at(
            SimTime::ZERO,
            vc,
            UserRequest {
                id: RequestId(i as u64 + 1),
                head: Address {
                    node: d.a0,
                    identifier: 1,
                },
                tail: Address {
                    node: d.b0,
                    identifier: 1,
                },
                min_fidelity: fidelity,
                demand: Demand::Pairs {
                    n: rounds_per_basis,
                    deadline: None,
                },
                request_type: RequestType::Measure(basis),
                final_state: Some(BellState::PHI_PLUS),
            },
        );
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(400));

    let app = sim.app();
    let alice = app.measurements(vc, d.a0);
    let bob = app.measurements(vc, d.b0);
    println!(
        "Alice collected {} outcomes, Bob {}",
        alice.len(),
        bob.len()
    );

    // Sift: match outcomes by the network's entangled pair identifier
    // (identical at both ends) and keep matching-basis rounds.
    let mut sifted = 0usize;
    let mut errors = 0usize;
    let mut key_bits = String::new();
    for (chain, a_out, a_basis, _) in &alice {
        if let Some((_, b_out, b_basis, _)) = bob.iter().find(|(c, _, _, _)| c == chain) {
            if a_basis != b_basis {
                continue; // basis mismatch — sifted away
            }
            sifted += 1;
            // On Φ+, Z and X outcomes correlate: key bit = outcome.
            if a_out != b_out {
                errors += 1;
            } else if key_bits.len() < 32 {
                key_bits.push(if *a_out { '1' } else { '0' });
            }
        }
    }
    let qber = errors as f64 / sifted.max(1) as f64;
    println!("sifted rounds: {sifted}");
    println!("QBER: {:.2}%", qber * 100.0);
    println!("first key bits (Alice's view): {key_bits}…");

    // Fidelity F ⇒ QBER ≈ (1−F)·2/3 for Werner-like noise; at F≈0.87
    // expect ≈9 %, comfortably below the ≈11 % BB84/E91 security bound.
    let est_fidelity = 1.0 - 1.5 * qber;
    println!("fidelity estimated from QBER: {est_fidelity:.3}");
    println!(
        "oracle mean fidelity (simulation ground truth, Alice side): {}",
        app.mean_fidelity(vc, d.a0)
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "n/a (measured pairs carry no oracle reading)".into())
    );
    if qber < 0.11 {
        println!("=> below the ≈11% security threshold: key distillation possible");
    } else {
        println!("=> QBER too high for a secure key at this fidelity");
    }
}
