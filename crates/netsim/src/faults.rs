//! Component fault plans: scheduled link outages and node crashes.
//!
//! Where [`crate::classical::ClassicalFaults`] perturbs individual
//! *messages* (drop / duplicate / reorder / corrupt), a [`FaultPlan`]
//! takes whole *components* out of service: a link stops generating
//! entanglement and eats every classical frame on its hop, a node loses
//! its volatile protocol state. Plans combine two ingredients:
//!
//! * **deterministic events** — `LinkDown`/`LinkUp` for a link and
//!   `NodeCrash`/`NodeRestart` for a node, each at an explicit instant
//!   ([`FaultPlan::link_down_at`] and friends, or the
//!   [`FaultPlan::link_outage`] / [`FaultPlan::node_outage`] pairs);
//! * **stochastic schedules** — per-component MTBF/MTTR
//!   ([`FaultPlan::link_mtbf`], [`FaultPlan::node_mtbf`]): exponential
//!   up-times and repair-times expanded into a concrete event list at
//!   build time from the dedicated `"component-faults"` RNG substream,
//!   one independent substream per declared component. The expansion
//!   happens *before* the simulation starts, so a faulted run stays a
//!   pure function of `(seed, plan)` and the main simulation streams
//!   never observe an extra draw.
//!
//! An **empty plan is bit-invisible**: [`FaultPlan::is_empty`] gates all
//! runtime scheduling, so a build without faults performs zero extra
//! event-queue operations and zero RNG draws. Validation is fail-fast at
//! build ([`FaultPlan::validate`], mirroring
//! [`crate::classical::ClassicalFaults::validate`]): unknown components,
//! a `LinkUp` with no preceding `LinkDown` (or restart without crash),
//! and events scheduled past the declared horizon are all rejected
//! before any event is queued.

use qn_routing::topology::Topology;
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};

/// One component-level fault event, applied by the runtime at its
/// scheduled instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComponentEvent {
    /// The physical link between `a` and `b` goes down: generation
    /// halts, in-flight generation is aborted, live pairs of the link
    /// are expired, and classical frames on the hop are dropped.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The link comes back up and resumes generation for the requests
    /// still queued on it.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The node crashes: volatile protocol state is lost, its qubits
    /// are freed, its timers disarmed, and every circuit through it is
    /// torn down end-to-end.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node restarts with empty protocol state and re-registers its
    /// links; stale correlators arriving later are absorbed as
    /// anomalous inputs.
    NodeRestart {
        /// The restarting node.
        node: NodeId,
    },
}

/// The component a stochastic schedule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Component {
    Link { a: NodeId, b: NodeId },
    Node(NodeId),
}

/// Stochastic fault model for one component: mean time between failures
/// and mean time to repair, both exponentially distributed.
#[derive(Clone, Copy, Debug)]
struct FailureModel {
    mtbf: SimDuration,
    mttr: SimDuration,
}

/// A schedule of component faults for one run. See the module docs for
/// the grammar; configure with [`crate::build::NetworkBuilder::fault_plan`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Explicit events in insertion order (time, event).
    events: Vec<(SimTime, ComponentEvent)>,
    /// Stochastic per-component schedules in insertion order.
    stochastic: Vec<(Component, FailureModel)>,
    /// Horizon bounding the plan: no deterministic event may lie beyond
    /// it and stochastic expansion stops drawing failures at it.
    /// Required whenever stochastic schedules are declared.
    horizon: Option<SimTime>,
}

impl FaultPlan {
    /// An empty plan (bit-invisible: schedules nothing, draws nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare the plan's horizon: deterministic events beyond it fail
    /// validation, and stochastic failures are only drawn before it
    /// (each drawn failure still gets its repair, which may land past
    /// the horizon so every outage recovers).
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Take the `a`–`b` link down at `at`.
    pub fn link_down_at(mut self, a: NodeId, b: NodeId, at: SimTime) -> Self {
        self.events.push((at, ComponentEvent::LinkDown { a, b }));
        self
    }

    /// Bring the `a`–`b` link back up at `at`.
    pub fn link_up_at(mut self, a: NodeId, b: NodeId, at: SimTime) -> Self {
        self.events.push((at, ComponentEvent::LinkUp { a, b }));
        self
    }

    /// Crash `node` at `at`.
    pub fn node_crash_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push((at, ComponentEvent::NodeCrash { node }));
        self
    }

    /// Restart `node` at `at`.
    pub fn node_restart_at(mut self, node: NodeId, at: SimTime) -> Self {
        self.events.push((at, ComponentEvent::NodeRestart { node }));
        self
    }

    /// Convenience: a link outage of `duration` starting at `down_at`.
    pub fn link_outage(
        self,
        a: NodeId,
        b: NodeId,
        down_at: SimTime,
        duration: SimDuration,
    ) -> Self {
        self.link_down_at(a, b, down_at)
            .link_up_at(a, b, down_at + duration)
    }

    /// Convenience: a node outage of `duration` starting at `crash_at`.
    pub fn node_outage(self, node: NodeId, crash_at: SimTime, duration: SimDuration) -> Self {
        self.node_crash_at(node, crash_at)
            .node_restart_at(node, crash_at + duration)
    }

    /// Stochastic outages for the `a`–`b` link: exponential up-times
    /// with mean `mtbf`, exponential repairs with mean `mttr`, drawn
    /// from this component's own `"component-faults"` substream.
    pub fn link_mtbf(mut self, a: NodeId, b: NodeId, mtbf: SimDuration, mttr: SimDuration) -> Self {
        self.stochastic
            .push((Component::Link { a, b }, FailureModel { mtbf, mttr }));
        self
    }

    /// Stochastic crash/restart cycles for `node` (see
    /// [`FaultPlan::link_mtbf`]).
    pub fn node_mtbf(mut self, node: NodeId, mtbf: SimDuration, mttr: SimDuration) -> Self {
        self.stochastic
            .push((Component::Node(node), FailureModel { mtbf, mttr }));
        self
    }

    /// Whether the plan schedules nothing at all. The runtime consults
    /// this once at build: an empty plan adds zero events and zero RNG
    /// draws, keeping the run bit-identical to one without a plan.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.stochastic.is_empty()
    }

    /// Fail-fast validation against the topology the plan will run on.
    /// Rejects events on unknown links or nodes, a `LinkUp` with no
    /// preceding `LinkDown` (and restart/crash likewise, or doubled
    /// downs/crashes), deterministic events past the declared horizon,
    /// stochastic schedules without a horizon, and non-positive
    /// MTBF/MTTR.
    pub fn validate(&self, topology: &Topology) -> Result<(), String> {
        let nodes = topology.nodes();
        let check_node = |n: NodeId| -> Result<(), String> {
            if nodes.binary_search(&n).is_err() {
                return Err(format!("fault plan references unknown node {n}"));
            }
            Ok(())
        };
        let check_link = |a: NodeId, b: NodeId| -> Result<(), String> {
            if topology.link_between(a, b).is_none() {
                return Err(format!("fault plan references unknown link {a}–{b}"));
            }
            Ok(())
        };
        for (at, ev) in &self.events {
            match ev {
                ComponentEvent::LinkDown { a, b } | ComponentEvent::LinkUp { a, b } => {
                    check_link(*a, *b)?
                }
                ComponentEvent::NodeCrash { node } | ComponentEvent::NodeRestart { node } => {
                    check_node(*node)?
                }
            }
            if let Some(h) = self.horizon {
                if *at > h {
                    return Err(format!(
                        "fault event {ev:?} at {at} lies beyond the plan horizon {h}"
                    ));
                }
            }
        }
        // Per-component alternation: a stable sort by time keeps
        // insertion order for ties, matching the execution order.
        let mut ordered: Vec<&(SimTime, ComponentEvent)> = self.events.iter().collect();
        ordered.sort_by_key(|(at, _)| *at);
        let mut down_links: Vec<(NodeId, NodeId)> = Vec::new();
        let mut crashed: Vec<NodeId> = Vec::new();
        for (at, ev) in ordered {
            match ev {
                ComponentEvent::LinkDown { a, b } => {
                    let key = link_key(*a, *b);
                    if down_links.contains(&key) {
                        return Err(format!(
                            "link {a}–{b} taken down twice (at {at}) without a LinkUp in between"
                        ));
                    }
                    down_links.push(key);
                }
                ComponentEvent::LinkUp { a, b } => {
                    let key = link_key(*a, *b);
                    let Some(i) = down_links.iter().position(|k| *k == key) else {
                        return Err(format!(
                            "LinkUp for {a}–{b} (at {at}) without a preceding LinkDown"
                        ));
                    };
                    down_links.remove(i);
                }
                ComponentEvent::NodeCrash { node } => {
                    if crashed.contains(node) {
                        return Err(format!(
                            "node {node} crashed twice (at {at}) without a restart in between"
                        ));
                    }
                    crashed.push(*node);
                }
                ComponentEvent::NodeRestart { node } => {
                    let Some(i) = crashed.iter().position(|n| n == node) else {
                        return Err(format!(
                            "NodeRestart for {node} (at {at}) without a preceding NodeCrash"
                        ));
                    };
                    crashed.remove(i);
                }
            }
        }
        for (comp, model) in &self.stochastic {
            match comp {
                Component::Link { a, b } => check_link(*a, *b)?,
                Component::Node(n) => check_node(*n)?,
            }
            if model.mtbf == SimDuration::ZERO || model.mtbf.is_infinite() {
                return Err(format!(
                    "stochastic schedule for {comp:?} needs a positive finite MTBF"
                ));
            }
            if model.mttr == SimDuration::ZERO || model.mttr.is_infinite() {
                return Err(format!(
                    "stochastic schedule for {comp:?} needs a positive finite MTTR"
                ));
            }
            if self.horizon.is_none() {
                return Err(
                    "stochastic fault schedules need a plan horizon (FaultPlan::horizon)".into(),
                );
            }
        }
        Ok(())
    }

    /// Expand the plan into the concrete, time-ordered schedule for
    /// `seed`. Deterministic events are kept as declared; each
    /// stochastic component draws its failure/repair cycle from
    /// `SimRng::substream_indexed(seed, "component-faults", i)` (one
    /// independent substream per declared schedule) until the horizon.
    /// Every drawn failure is paired with its repair even when the
    /// repair lands past the horizon, so stochastic outages always
    /// recover. Ties are broken by declaration order (deterministic
    /// events first), so the schedule is a pure function of
    /// `(seed, plan)`.
    pub fn expand(&self, seed: u64) -> Vec<(SimTime, ComponentEvent)> {
        let mut schedule: Vec<(SimTime, usize, ComponentEvent)> = self
            .events
            .iter()
            .enumerate()
            .map(|(i, (at, ev))| (*at, i, *ev))
            .collect();
        let mut order = self.events.len();
        for (i, (comp, model)) in self.stochastic.iter().enumerate() {
            let horizon = self
                .horizon
                .expect("validated: stochastic schedules need a horizon");
            let mut rng = SimRng::substream_indexed(seed, "component-faults", i as u64);
            let fail_rate = 1.0 / model.mtbf.as_secs_f64();
            let repair_rate = 1.0 / model.mttr.as_secs_f64();
            let mut t = SimTime::ZERO;
            loop {
                t += SimDuration::from_secs_f64(rng.exponential(fail_rate));
                if t >= horizon {
                    break;
                }
                let (down, up) = match comp {
                    Component::Link { a, b } => (
                        ComponentEvent::LinkDown { a: *a, b: *b },
                        ComponentEvent::LinkUp { a: *a, b: *b },
                    ),
                    Component::Node(n) => (
                        ComponentEvent::NodeCrash { node: *n },
                        ComponentEvent::NodeRestart { node: *n },
                    ),
                };
                schedule.push((t, order, down));
                order += 1;
                t += SimDuration::from_secs_f64(rng.exponential(repair_rate));
                schedule.push((t, order, up));
                order += 1;
            }
        }
        schedule.sort_by_key(|(at, order, _)| (*at, *order));
        schedule.into_iter().map(|(at, _, ev)| (at, ev)).collect()
    }
}

/// Canonical (min, max) key for an undirected link.
fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_hardware::params::{FibreParams, HardwareParams};
    use qn_routing::topology::chain;

    fn topo() -> Topology {
        chain(4, HardwareParams::simulation(), FibreParams::lab_2m())
    }

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.validate(&topo()).is_ok());
        assert!(plan.expand(7).is_empty());
    }

    #[test]
    fn outage_pairs_expand_in_time_order() {
        let plan = FaultPlan::new()
            .node_outage(NodeId(2), secs(8), SimDuration::from_secs(2))
            .link_outage(NodeId(1), NodeId(2), secs(3), SimDuration::from_secs(4));
        assert!(!plan.is_empty());
        assert!(plan.validate(&topo()).is_ok());
        let sched = plan.expand(1);
        assert_eq!(
            sched,
            vec![
                (
                    secs(3),
                    ComponentEvent::LinkDown {
                        a: NodeId(1),
                        b: NodeId(2)
                    }
                ),
                (
                    secs(7),
                    ComponentEvent::LinkUp {
                        a: NodeId(1),
                        b: NodeId(2)
                    }
                ),
                (secs(8), ComponentEvent::NodeCrash { node: NodeId(2) }),
                (secs(10), ComponentEvent::NodeRestart { node: NodeId(2) }),
            ]
        );
    }

    #[test]
    fn unknown_link_rejected() {
        let plan = FaultPlan::new().link_down_at(NodeId(0), NodeId(3), secs(1));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("unknown link"), "{err}");
    }

    #[test]
    fn unknown_node_rejected() {
        let plan = FaultPlan::new().node_crash_at(NodeId(9), secs(1));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
    }

    #[test]
    fn link_up_before_down_rejected() {
        let plan = FaultPlan::new()
            .link_up_at(NodeId(0), NodeId(1), secs(1))
            .link_down_at(NodeId(0), NodeId(1), secs(2));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("without a preceding LinkDown"), "{err}");
        // Endpoint order must not matter for the pairing.
        let plan = FaultPlan::new()
            .link_down_at(NodeId(0), NodeId(1), secs(1))
            .link_up_at(NodeId(1), NodeId(0), secs(2));
        assert!(plan.validate(&topo()).is_ok());
    }

    #[test]
    fn restart_before_crash_rejected() {
        let plan = FaultPlan::new().node_restart_at(NodeId(1), secs(1));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("without a preceding NodeCrash"), "{err}");
    }

    #[test]
    fn doubled_down_rejected() {
        let plan = FaultPlan::new()
            .link_down_at(NodeId(0), NodeId(1), secs(1))
            .link_down_at(NodeId(1), NodeId(0), secs(2));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("taken down twice"), "{err}");
        let plan = FaultPlan::new()
            .node_crash_at(NodeId(1), secs(1))
            .node_crash_at(NodeId(1), secs(2));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("crashed twice"), "{err}");
    }

    #[test]
    fn event_after_horizon_rejected() {
        let plan = FaultPlan::new()
            .horizon(secs(10))
            .link_down_at(NodeId(0), NodeId(1), secs(11));
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("beyond the plan horizon"), "{err}");
    }

    #[test]
    fn stochastic_needs_horizon_and_positive_moments() {
        let plan = FaultPlan::new().link_mtbf(
            NodeId(0),
            NodeId(1),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("horizon"), "{err}");
        let plan = FaultPlan::new().horizon(secs(60)).link_mtbf(
            NodeId(0),
            NodeId(1),
            SimDuration::ZERO,
            SimDuration::from_secs(1),
        );
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("MTBF"), "{err}");
        let plan = FaultPlan::new().horizon(secs(60)).node_mtbf(
            NodeId(1),
            SimDuration::from_secs(5),
            SimDuration::MAX,
        );
        let err = plan.validate(&topo()).unwrap_err();
        assert!(err.contains("MTTR"), "{err}");
    }

    #[test]
    fn stochastic_expansion_is_seed_deterministic_and_alternating() {
        let plan = FaultPlan::new()
            .horizon(secs(120))
            .link_mtbf(
                NodeId(1),
                NodeId(2),
                SimDuration::from_secs(10),
                SimDuration::from_secs(2),
            )
            .node_mtbf(
                NodeId(2),
                SimDuration::from_secs(15),
                SimDuration::from_secs(3),
            );
        assert!(plan.validate(&topo()).is_ok());
        let a = plan.expand(42);
        let b = plan.expand(42);
        assert_eq!(a, b, "expansion must be a pure function of the seed");
        assert_ne!(
            a,
            plan.expand(43),
            "different seeds draw different schedules"
        );
        assert!(
            !a.is_empty(),
            "a 120 s horizon at 10/15 s MTBF must draw failures"
        );
        // Every failure is followed by its recovery, per component.
        let mut link_down = false;
        let mut node_down = false;
        for (at, ev) in &a {
            assert!(*at > SimTime::ZERO);
            match ev {
                ComponentEvent::LinkDown { .. } => {
                    assert!(!link_down, "no doubled downs");
                    link_down = true;
                }
                ComponentEvent::LinkUp { .. } => {
                    assert!(link_down, "up only after down");
                    link_down = false;
                }
                ComponentEvent::NodeCrash { .. } => {
                    assert!(!node_down);
                    node_down = true;
                }
                ComponentEvent::NodeRestart { .. } => {
                    assert!(node_down);
                    node_down = false;
                }
            }
        }
        assert!(!link_down && !node_down, "every outage recovers");
        // Times are non-decreasing.
        for w in a.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
