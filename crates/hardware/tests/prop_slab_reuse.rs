//! Slot-reuse invisibility suite: two slab-backed [`PairStore`]s — one
//! fresh, one whose slab has been churned hard (pairs created and
//! discarded so every later allocation lands in a recycled slot with a
//! bumped generation) — driven through identical random sequences of
//! decoherence sweeps, swaps, distillations, measurements and further
//! mid-sequence churn, with identical RNG streams.
//!
//! After every operation the suite asserts that the physics is
//! **bit-identical** across the two stores: announced Bell states,
//! swap outcomes, distillation verdicts, raw and reported readouts,
//! and every Bell-diagonal coefficient compared via `f64::to_bits`.
//! The handles themselves differ — the churned store hands out high
//! generations from its free list while the fresh store counts up from
//! slot zero — which is exactly the point: slab bookkeeping (slot
//! index, generation, free-list order) must never leak into a pair's
//! quantum trajectory.
//!
//! The suite also pins the stale-handle contract under reuse: every
//! handle discarded during churn keeps resolving to `None` even after
//! its slot has been re-occupied.

use proptest::prelude::*;
use qn_hardware::device::QubitId;
use qn_hardware::pairs::{PairId, PairStore, SwapNoise};
use qn_hardware::params::HardwareParams;
use qn_hardware::StateRep;
use qn_quantum::bell::BellState;
use qn_quantum::pairstate::{BellDiagonal, PairState};
use qn_sim::{NodeId, SimDuration, SimRng, SimTime};
use qn_testkit::{ModelSpec, ModelTest};

/// P spans nodes (0,1); Q spans (1,2) — the swap partner; R spans
/// (0,1) in parallel with P — the distillation partner.
const SPANS: [(u32, u32); 3] = [(0, 1), (1, 2), (0, 1)];
/// Short memories so the decoherence sweep does real work on every
/// advance.
const T1: f64 = 0.9;
const T2: f64 = 0.6;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// Advance simulated time and sweep every live pair in both stores.
    Advance { dt_ms: u16 },
    /// Entanglement swap of P and Q at node 1; then refresh both slots.
    Swap { fresh: u8 },
    /// BBPSSW distillation keeping P, sacrificing R; then refresh.
    Distill { fresh: u8 },
    /// Measure both ends of P (basis selects X/Y/Z); then refresh.
    Measure { basis: u8, fresh: u8 },
    /// Create `1 + k % 7` transient pairs in both stores and discard
    /// them in LIFO order — mid-sequence churn that shifts the two
    /// stores' free lists further apart.
    Churn { k: u8 },
}

struct World {
    /// The fresh store: slots fill 0, 1, 2, … with generation 0.
    fresh: PairStore,
    /// The churned store: every allocation recycles a freed slot.
    worn: PairStore,
    rng_fresh: SimRng,
    rng_worn: SimRng,
    now: SimTime,
    /// `(fresh id, worn id)` per logical slot — the ids differ, the
    /// physics must not.
    ids: [(PairId, PairId); 3],
    /// Handles discarded from the worn store during pre-churn; must
    /// stay `None` forever, even once their slots are re-occupied.
    tombstones: Vec<PairId>,
    noise: SwapNoise,
    params: HardwareParams,
}

/// The deterministic fresh frames/fidelity a refresh op installs.
fn fresh_spec(fresh: u8) -> ([BellState; 3], f64) {
    let frames = [
        BellState::from_index((fresh & 0b11) as usize),
        BellState::from_index(((fresh >> 2) & 0b11) as usize),
        BellState::from_index(((fresh >> 4) & 0b11) as usize),
    ];
    let f = 0.7 + 0.25 * ((fresh >> 6) as f64 / 3.0);
    (frames, f)
}

/// Werner state of fidelity `f` in the `announced` frame, as a
/// Bell-diagonal — mixed enough that distillation verdicts and
/// readouts depend on the state, not just the frame.
fn werner_bell(f: f64, announced: BellState) -> PairState {
    let rest = (1.0 - f) / 3.0;
    let mut coeffs = [rest; 4];
    coeffs[announced.index()] = f;
    PairState::Bell(BellDiagonal::from_bell_coeffs(coeffs))
}

impl World {
    fn create_slot(&mut self, slot: usize, announced: BellState, f: f64) {
        let (na, nb) = SPANS[slot];
        let ends = [
            (NodeId(na), QubitId(slot as u32), T1, T2),
            (NodeId(nb), QubitId(slot as u32), T1, T2),
        ];
        let a = self
            .fresh
            .create_pair(self.now, werner_bell(f, announced), announced, ends);
        let b = self
            .worn
            .create_pair(self.now, werner_bell(f, announced), announced, ends);
        self.ids[slot] = (a, b);
    }

    fn reset_slots(&mut self, slots: &[usize], fresh: u8) {
        let (frames, f) = fresh_spec(fresh);
        for &slot in slots {
            let (a, b) = self.ids[slot];
            self.fresh.discard(a);
            self.worn.discard(b);
            self.create_slot(slot, frames[slot], f);
        }
    }
}

/// Bit-exact agreement between the two stores' views of one pair.
fn compare_pair(w: &World, fresh: PairId, worn: PairId, what: &str) -> Result<(), String> {
    let (a, b) = match (w.fresh.get(fresh), w.worn.get(worn)) {
        (Some(a), Some(b)) => (a, b),
        (a, b) => {
            return Err(format!(
                "{what}: liveness diverges (fresh {}, worn {})",
                a.is_some(),
                b.is_some()
            ))
        }
    };
    if a.announced != b.announced {
        return Err(format!(
            "{what}: announced {} vs {}",
            a.announced, b.announced
        ));
    }
    if a.created != b.created {
        return Err(format!("{what}: creation time diverges"));
    }
    let (sa, sb) = (a.state(), b.state());
    for target in BellState::ALL {
        let (fa, fb) = (sa.fidelity_bell(target), sb.fidelity_bell(target));
        if fa.to_bits() != fb.to_bits() {
            return Err(format!(
                "{what}: coeff {target} not bit-identical: {fa:?} vs {fb:?}"
            ));
        }
    }
    for end in 0..2 {
        if sa.prob_one(end).to_bits() != sb.prob_one(end).to_bits() {
            return Err(format!("{what}: prob_one({end}) not bit-identical"));
        }
    }
    Ok(())
}

struct ReuseSpec;

impl ModelSpec for ReuseSpec {
    type Op = Op;
    type Model = ();
    type System = World;

    fn new_model(&self) {}

    fn new_system(&self) -> World {
        let params = HardwareParams::simulation();
        let mut world = World {
            fresh: PairStore::with_rep(StateRep::Bell),
            worn: PairStore::with_rep(StateRep::Bell),
            rng_fresh: SimRng::substream(0x51AB, "reuse"),
            rng_worn: SimRng::substream(0x51AB, "reuse"),
            now: SimTime::ZERO,
            ids: [(PairId(0), PairId(0)); 3],
            tombstones: Vec::new(),
            noise: SwapNoise::from_params(&params),
            params,
        };
        // Wear the worn store in: occupy a dozen slots, then free them
        // in creation order (so the LIFO free list hands slots back in
        // *reverse*), leaving every future allocation on a recycled
        // slot with generation ≥ 1.
        let mut churned = Vec::new();
        for i in 0..12u32 {
            let id = world.worn.create_pair(
                world.now,
                werner_bell(0.9, BellState::PHI_PLUS),
                BellState::PHI_PLUS,
                [
                    (NodeId(0), QubitId(i), T1, T2),
                    (NodeId(1), QubitId(i), T1, T2),
                ],
            );
            churned.push(id);
        }
        for id in &churned {
            world.worn.discard(*id);
        }
        world.tombstones = churned;
        for slot in 0..3 {
            let (frames, f) = fresh_spec(0b10_01_00);
            world.create_slot(slot, frames[slot], f);
        }
        world
    }

    fn op_strategy(&self) -> BoxedStrategy<Op> {
        prop_oneof![
            (1u16..300).prop_map(|dt_ms| Op::Advance { dt_ms }),
            any::<u8>().prop_map(|fresh| Op::Swap { fresh }),
            any::<u8>().prop_map(|fresh| Op::Distill { fresh }),
            (0u8..3, any::<u8>()).prop_map(|(basis, fresh)| Op::Measure { basis, fresh }),
            any::<u8>().prop_map(|k| Op::Churn { k }),
        ]
        .boxed()
    }

    fn apply(&self, _model: &mut (), w: &mut World, op: &Op) -> Result<(), String> {
        match *op {
            Op::Advance { dt_ms } => {
                w.now = w.now + SimDuration::from_millis(u64::from(dt_ms));
                w.fresh.advance_all(w.now);
                w.worn.advance_all(w.now);
            }
            Op::Swap { fresh } => {
                let (pa, pb) = w.ids[0];
                let (qa, qb) = w.ids[1];
                let noise = w.noise;
                let ra = w
                    .fresh
                    .swap(pa, qa, NodeId(1), w.now, &noise, &mut w.rng_fresh);
                let rb = w
                    .worn
                    .swap(pb, qb, NodeId(1), w.now, &noise, &mut w.rng_worn);
                if ra.outcome != rb.outcome {
                    return Err(format!(
                        "swap outcomes diverge: fresh {} vs worn {}",
                        ra.outcome, rb.outcome
                    ));
                }
                if ra
                    .freed
                    .iter()
                    .map(|(n, _)| n)
                    .ne(rb.freed.iter().map(|(n, _)| n))
                {
                    return Err("swap freed different end nodes".into());
                }
                compare_pair(w, ra.new_pair, rb.new_pair, "post-swap")?;
                let fa = w.fresh.fidelity_to(ra.new_pair, ra.outcome, w.now);
                let fb = w.worn.fidelity_to(rb.new_pair, rb.outcome, w.now);
                if fa.to_bits() != fb.to_bits() {
                    return Err(format!("post-swap fidelity {fa:?} vs {fb:?}"));
                }
                w.fresh.discard(ra.new_pair);
                w.worn.discard(rb.new_pair);
                w.reset_slots(&[0, 1], fresh);
            }
            Op::Distill { fresh } => {
                let (pa, pb) = w.ids[0];
                let (ra, rb) = w.ids[2];
                let noise = w.noise;
                let da = w.fresh.distill(pa, ra, w.now, &noise, &mut w.rng_fresh);
                let db = w.worn.distill(pb, rb, w.now, &noise, &mut w.rng_worn);
                if da.success != db.success {
                    return Err(format!(
                        "distill verdicts diverge: fresh {} vs worn {}",
                        da.success, db.success
                    ));
                }
                compare_pair(w, da.kept, db.kept, "post-distill")?;
                w.fresh.discard(da.kept);
                w.worn.discard(db.kept);
                w.reset_slots(&[0, 2], fresh);
            }
            Op::Measure { basis, fresh } => {
                let (pa, pb) = w.ids[0];
                let basis = match basis {
                    0 => qn_quantum::gates::Pauli::X,
                    1 => qn_quantum::gates::Pauli::Y,
                    _ => qn_quantum::gates::Pauli::Z,
                };
                let readout = w.params.gates.readout;
                for node in [NodeId(0), NodeId(1)] {
                    let ma =
                        w.fresh
                            .measure_end(pa, node, basis, &readout, w.now, &mut w.rng_fresh);
                    let mb = w
                        .worn
                        .measure_end(pb, node, basis, &readout, w.now, &mut w.rng_worn);
                    if (ma.true_outcome, ma.reported) != (mb.true_outcome, mb.reported) {
                        return Err(format!(
                            "readout at {node} diverges: fresh {ma:?} vs worn {mb:?}"
                        ));
                    }
                }
                w.reset_slots(&[0], fresh);
            }
            Op::Churn { k } => {
                let count = 1 + (k % 7) as u32;
                let mut transients = Vec::new();
                for i in 0..count {
                    let announced = BellState::from_index((i as usize) % 4);
                    let ends = [
                        (NodeId(2), QubitId(16 + i), T1, T2),
                        (NodeId(3), QubitId(16 + i), T1, T2),
                    ];
                    let a =
                        w.fresh
                            .create_pair(w.now, werner_bell(0.8, announced), announced, ends);
                    let b = w
                        .worn
                        .create_pair(w.now, werner_bell(0.8, announced), announced, ends);
                    compare_pair(w, a, b, "transient")?;
                    transients.push((a, b));
                }
                for (a, b) in transients.into_iter().rev() {
                    let fa = w.fresh.discard(a);
                    let fb = w.worn.discard(b);
                    if fa != fb {
                        return Err(format!("churn discard diverges: {fa:?} vs {fb:?}"));
                    }
                }
                // Stale handles must stay dead no matter how many times
                // their slots have been recycled since.
                for id in w.tombstones.clone() {
                    if w.worn.discard(id).is_some() {
                        return Err(format!("tombstone {:#x} discard was not a no-op", id.0));
                    }
                }
            }
        }
        Ok(())
    }

    fn invariants(&self, _model: &(), w: &World) -> Result<(), String> {
        if w.fresh.len() != w.worn.len() {
            return Err(format!(
                "live counts diverge: fresh {} vs worn {}",
                w.fresh.len(),
                w.worn.len()
            ));
        }
        for slot in 0..3 {
            let (a, b) = w.ids[slot];
            compare_pair(w, a, b, &format!("slot {slot}"))?;
        }
        for id in &w.tombstones {
            if w.worn.get(*id).is_some() {
                return Err(format!(
                    "tombstone {:#x} (slot {}, generation {}) resolved to a live \
                     pair after its slot was recycled",
                    id.0,
                    id.index(),
                    id.generation()
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn slot_reuse_is_invisible_to_pair_trajectories() {
    ModelTest::new("hardware_slab_reuse_invisible", ReuseSpec)
        .cases(64)
        .max_ops(40)
        .run();
}

/// The worn store really is exercising reuse: after the pre-churn, its
/// allocations come back on recycled slots with bumped generations,
/// while the fresh store is still handing out generation-zero slots.
#[test]
fn worn_store_actually_recycles_slots() {
    let w = ReuseSpec.new_system();
    for slot in 0..3 {
        let (a, b) = w.ids[slot];
        assert_eq!(a.generation(), 0, "fresh store must be on generation 0");
        assert!(
            b.generation() >= 1,
            "worn store slot {slot} must be recycled (got generation {})",
            b.generation()
        );
        assert_ne!(a.0, b.0, "handles must differ between the stores");
    }
    assert_eq!(w.fresh.len(), w.worn.len());
}
